//! Oversubscribed admission: what happens when applications ask for
//! more than the fabric can guarantee — requests are *rejected at
//! admission time* (and the rest keep their guarantees) instead of
//! degrading everyone, which is the whole point of the arbitration-table
//! frame.
//!
//! Also demonstrates teardown + defragmentation: after connections
//! finish, the freed entries recombine and previously-rejected strict
//! requests become admissible again.
//!
//! ```sh
//! cargo run --example oversubscribed_admission
//! ```

use infiniband_qos::core::Distance;
use infiniband_qos::prelude::*;

fn main() {
    let topo = generate(IrregularConfig::with_switches(2, 5));
    let routing = compute_routing(&topo);
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        SlTable::paper_table1(),
        SimConfig::paper_default(256),
    );

    // Saturate one destination with big DB connections (SL 9).
    let dst = HostId(7);
    let mut ids = Vec::new();
    let mut next = 0u32;
    loop {
        let src = HostId((next % 6) as u16); // hosts 0..5 all target host 7
        let req = ConnectionRequest {
            id: next,
            src,
            dst,
            sl: ServiceLevel::new(9).unwrap(),
            distance: Distance::D64,
            mean_bw_mbps: 120.0,
            packet_bytes: 256,
        };
        match frame.manager.request(&req) {
            Ok(id) => ids.push(id),
            Err(e) => {
                println!(
                    "after {} x 120 Mbps connections the fabric says no: {e}",
                    ids.len()
                );
                break;
            }
        }
        next += 1;
    }
    let (host_res, _) = frame.manager.reservation_summary();
    println!("mean host-link reservation now {host_res:.0} Mbps (cap is 80% of 2500)");

    // A strict low-latency request also fails now: its distance-2
    // sequence needs 32 entries spread over a saturated table.
    let strict = ConnectionRequest {
        id: 9999,
        src: HostId(0),
        dst,
        sl: ServiceLevel::new(0).unwrap(),
        distance: Distance::D2,
        mean_bw_mbps: 2.0,
        packet_bytes: 256,
    };
    match frame.manager.request(&strict) {
        Ok(_) => println!("strict request admitted (fabric had room)"),
        Err(e) => println!("strict request rejected while saturated: {e}"),
    }

    // Tear half the bulk connections down; defragmentation inside each
    // table re-packs the survivors so the freed entries are usable by
    // the strictest requests.
    let n = ids.len();
    for id in ids.drain(..n / 2) {
        frame.manager.teardown(id);
    }
    println!(
        "tore down {} connections; retrying the strict request…",
        n / 2
    );
    match frame.manager.request(&strict) {
        Ok(id) => {
            let conn = frame.manager.connection(id).unwrap();
            println!(
                "admitted: distance {} over {} hops, deadline {} cycles ✓",
                conn.request.distance,
                conn.hop_count(),
                conn.deadline
            );
        }
        Err(e) => panic!("defragmentation should have made room: {e}"),
    }

    // The guarantees of the surviving bulk connections are intact.
    let (mut fabric, mut obs) = frame.build_fabric(11, None);
    fabric.run_until(8_000_000, &mut obs);
    let misses: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
    println!(
        "simulated: {} packets delivered, {misses} deadline misses",
        obs.qos_packets
    );
    assert_eq!(misses, 0);
}
