//! Video streaming: the paper's motivating BTS (Dedicated Bandwidth,
//! Time Sensitive) workload — a set of constant-rate video streams with
//! tight latency needs, plus best-effort file transfers sharing the
//! fabric, demonstrating that the streams' jitter stays bounded.
//!
//! ```sh
//! cargo run --release --example video_streaming
//! ```

use infiniband_qos::prelude::*;
use infiniband_qos::traffic::vbr::vbr_flow;

fn main() {
    let topo = generate(IrregularConfig::with_switches(8, 7));
    let routing = compute_routing(&topo);
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        SlTable::paper_table1(),
        SimConfig::paper_default(1024),
    );

    // Twelve 24 Mbps video streams (think HD MPEG) from "camera" hosts
    // to "recorder" hosts, each needing a tight per-hop latency.
    let mut stream_ids = Vec::new();
    for i in 0..12u32 {
        let src = HostId((i % 16) as u16);
        let dst = HostId((16 + (i * 3) % 16) as u16);
        let req = frame
            .manager
            .classify_request(i, src, dst, 3_000_000, 24.0, 1024)
            .expect("classifiable");
        match frame.manager.request(&req) {
            Ok(_) => {
                stream_ids.push((i, req));
                println!("stream {i}: {src}->{dst} admitted on {}", req.sl);
            }
            Err(e) => println!("stream {i}: rejected ({e})"),
        }
    }

    // Simulate with best-effort background (file transfers, backups).
    let bg = BackgroundConfig {
        load_fraction: 0.18,
        packet_bytes: 1024,
        ..Default::default()
    };
    let (mut fabric, mut obs) = frame.build_fabric(5, Some(&bg));

    // One stream is actually VBR: re-add it with a bursty envelope to
    // show the reservation still covers the mean.
    if let Some((id, req)) = stream_ids.first() {
        let vbr = vbr_flow(req, 2.0, 333);
        println!("stream {id} runs as VBR with 2x burstiness");
        fabric.add_flow(FlowSpec {
            id: 9_000_000 + id,
            ..vbr
        });
    }

    fabric.run_until(2_000_000, &mut obs);
    obs.reset_samples();
    fabric.run_until(30_000_000, &mut obs);

    println!("\nper-SL results:");
    for (sl, d) in obs.delay_by_sl.groups() {
        let j = obs.jitter.group(sl);
        println!(
            "  SL{sl}: {} pkts, deadline misses {}, max delay/D {:.3}, central jitter {:.1}%",
            d.total(),
            d.missed(),
            d.max_ratio(),
            j.map_or(0.0, |j| j.central_pct())
        );
    }
    println!(
        "\nbest-effort background delivered {} packets ({} bytes) without\n\
         disturbing a single stream deadline",
        obs.be_packets, obs.be_bytes
    );
    let misses: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
    assert_eq!(misses, 0);
}
