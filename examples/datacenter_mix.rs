//! Data-centre mix: the full traffic taxonomy of the paper on one
//! fabric — BTS (voice/video), DB (storage replication), PBE (web),
//! BE (mail/ftp) and CH — each class getting exactly the treatment its
//! category prescribes.
//!
//! ```sh
//! cargo run --release --example datacenter_mix
//! ```

use infiniband_qos::prelude::*;

struct App {
    name: &'static str,
    deadline_cycles: u64,
    mbps: f64,
    count: u32,
}

fn main() {
    let topo = generate(IrregularConfig::paper_default(99));
    let routing = compute_routing(&topo);
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        SlTable::paper_table1(),
        SimConfig::paper_default(256),
    );

    // The application portfolio. Deadlines in cycles (3.2 ns each).
    let apps = [
        App {
            name: "voice trunk",
            deadline_cycles: 400_000,
            mbps: 2.0,
            count: 8,
        },
        App {
            name: "video wall",
            deadline_cycles: 2_000_000,
            mbps: 24.0,
            count: 6,
        },
        App {
            name: "storage replication",
            deadline_cycles: 40_000_000,
            mbps: 90.0,
            count: 6,
        },
        App {
            name: "db transaction log",
            deadline_cycles: 8_000_000,
            mbps: 12.0,
            count: 8,
        },
    ];

    let mut next_id = 0u32;
    let mut admitted = 0;
    for app in &apps {
        for k in 0..app.count {
            let src = HostId(((next_id * 7 + k) % 64) as u16);
            let dst = HostId(((next_id * 13 + k * 5 + 31) % 64) as u16);
            if src == dst {
                next_id += 1;
                continue;
            }
            let Some(req) = frame.manager.classify_request(
                next_id,
                src,
                dst,
                app.deadline_cycles,
                app.mbps,
                256,
            ) else {
                println!("{}: unclassifiable deadline", app.name);
                next_id += 1;
                continue;
            };
            match frame.manager.request(&req) {
                Ok(_) => {
                    admitted += 1;
                    if k == 0 {
                        println!(
                            "{:22} -> {} (distance {}, {} Mbps)",
                            app.name, req.sl, req.distance, req.mean_bw_mbps
                        );
                    }
                }
                Err(e) => println!("{}: rejected ({e})", app.name),
            }
            next_id += 1;
        }
    }
    println!("\n{admitted} QoS connections admitted");
    let (host_res, switch_res) = frame.manager.reservation_summary();
    println!("mean reservation: host links {host_res:.0} Mbps, switch links {switch_res:.0} Mbps");

    // Web + mail + challenged background uses the low-priority table.
    let bg = BackgroundConfig {
        load_fraction: 0.2,
        ..Default::default()
    };
    let (mut fabric, mut obs) = frame.build_fabric(3, Some(&bg));
    fabric.run_until(3_000_000, &mut obs);
    obs.reset_samples();
    fabric.reset_stats();
    fabric.run_until(43_000_000, &mut obs);

    let st = fabric.summarize();
    println!("\nsteady state ({} cycles):", st.window);
    println!(
        "  delivered {:.4} bytes/cycle/node; host links {:.1}% busy, switch links {:.1}%",
        st.delivered_per_node(topo.num_hosts()),
        st.host_link_utilization,
        st.switch_link_utilization
    );
    let misses: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
    println!(
        "  QoS: {} packets, {} deadline misses | best-effort: {} packets",
        obs.qos_packets, misses, obs.be_packets
    );
    assert_eq!(misses, 0, "a guaranteed class missed its deadline");
    println!("\nall guaranteed classes met their deadlines while best effort used the leftovers ✓");
}
