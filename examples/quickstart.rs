//! Quickstart: build a fabric, ask for a QoS connection, simulate it,
//! and check the guarantee held.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use infiniband_qos::prelude::*;

fn main() {
    // 1. A random irregular InfiniBand subnet: 4 switches, 16 hosts,
    //    8-port switches (4 hosts + 4 inter-switch links each).
    let topo = generate(IrregularConfig::with_switches(4, 2026));
    let routing = compute_routing(&topo);
    println!(
        "fabric: {} switches / {} hosts, root {}",
        topo.num_switches(),
        topo.num_hosts(),
        routing.root()
    );

    // 2. The paper's QoS frame with its Table 1 service levels.
    let mut frame = QosFrame::new(
        topo,
        routing,
        SlTable::paper_table1(),
        SimConfig::paper_default(256),
    );

    // 3. An application asks for 16 Mbps with a 2 ms deadline
    //    (2 ms = 625_000 cycles at 3.2 ns/cycle). The manager classifies
    //    it into an SL and reserves arbitration-table entries at every
    //    hop.
    let req = frame
        .manager
        .classify_request(0, HostId(0), HostId(13), 4_000_000, 16.0, 256)
        .expect("request classifiable");
    println!(
        "classified: {} distance {} ({} Mbps)",
        req.sl, req.distance, req.mean_bw_mbps
    );
    let id = frame.manager.request(&req).expect("admitted");
    let conn = frame.manager.connection(id).unwrap();
    println!(
        "admitted over {} hops, guaranteed deadline {} cycles ({:.2} ms)",
        conn.hop_count(),
        conn.deadline,
        conn.deadline as f64 * 3.2 / 1e6
    );

    // 4. Simulate and verify.
    let (mut fabric, mut obs) = frame.build_fabric(1, None);
    fabric.run_until(20_000_000, &mut obs);
    let dist = obs
        .delay_by_sl
        .group(req.sl.index())
        .expect("packets delivered");
    println!(
        "delivered {} packets; worst delay/deadline ratio {:.4}; misses {}",
        dist.total(),
        dist.max_ratio(),
        dist.missed()
    );
    assert_eq!(dist.missed(), 0, "guarantee violated");
    println!("every packet met its deadline ✓");
}
