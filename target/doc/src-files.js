createSrcSidebar('[["infiniband_qos",["",[],["lib.rs"]]]]');
//{"start":19,"fragment_lengths":[37]}