window.ALL_CRATES = ["infiniband_qos"];
//{"start":21,"fragment_lengths":[16]}