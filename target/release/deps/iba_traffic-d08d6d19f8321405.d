/root/repo/target/release/deps/iba_traffic-d08d6d19f8321405.d: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

/root/repo/target/release/deps/libiba_traffic-d08d6d19f8321405.rlib: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

/root/repo/target/release/deps/libiba_traffic-d08d6d19f8321405.rmeta: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

crates/traffic/src/lib.rs:
crates/traffic/src/besteffort.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/hotspot.rs:
crates/traffic/src/request.rs:
crates/traffic/src/vbr.rs:
crates/traffic/src/workload.rs:
