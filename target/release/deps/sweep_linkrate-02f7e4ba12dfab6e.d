/root/repo/target/release/deps/sweep_linkrate-02f7e4ba12dfab6e.d: crates/bench/src/bin/sweep_linkrate.rs

/root/repo/target/release/deps/sweep_linkrate-02f7e4ba12dfab6e: crates/bench/src/bin/sweep_linkrate.rs

crates/bench/src/bin/sweep_linkrate.rs:
