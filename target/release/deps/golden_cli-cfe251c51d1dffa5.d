/root/repo/target/release/deps/golden_cli-cfe251c51d1dffa5.d: tests/golden_cli.rs

/root/repo/target/release/deps/golden_cli-cfe251c51d1dffa5: tests/golden_cli.rs

tests/golden_cli.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
