/root/repo/target/release/deps/iba_bench-1b2bd2e3adfbd419.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libiba_bench-1b2bd2e3adfbd419.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libiba_bench-1b2bd2e3adfbd419.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
