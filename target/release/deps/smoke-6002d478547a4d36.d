/root/repo/target/release/deps/smoke-6002d478547a4d36.d: crates/bench/src/bin/smoke.rs

/root/repo/target/release/deps/smoke-6002d478547a4d36: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
