/root/repo/target/release/deps/sweep_size-25f711469fea33d4.d: crates/bench/src/bin/sweep_size.rs

/root/repo/target/release/deps/sweep_size-25f711469fea33d4: crates/bench/src/bin/sweep_size.rs

crates/bench/src/bin/sweep_size.rs:
