/root/repo/target/release/deps/iba_bench-3006a5b9413946cd.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libiba_bench-3006a5b9413946cd.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libiba_bench-3006a5b9413946cd.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
