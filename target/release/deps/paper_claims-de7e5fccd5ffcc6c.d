/root/repo/target/release/deps/paper_claims-de7e5fccd5ffcc6c.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-de7e5fccd5ffcc6c: tests/paper_claims.rs

tests/paper_claims.rs:
