/root/repo/target/release/deps/sweep_mtu-8ca197325d00a115.d: crates/bench/src/bin/sweep_mtu.rs

/root/repo/target/release/deps/sweep_mtu-8ca197325d00a115: crates/bench/src/bin/sweep_mtu.rs

crates/bench/src/bin/sweep_mtu.rs:
