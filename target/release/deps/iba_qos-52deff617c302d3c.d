/root/repo/target/release/deps/iba_qos-52deff617c302d3c.d: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/release/deps/libiba_qos-52deff617c302d3c.rlib: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/release/deps/libiba_qos-52deff617c302d3c.rmeta: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

crates/qos/src/lib.rs:
crates/qos/src/cac.rs:
crates/qos/src/churn.rs:
crates/qos/src/connection.rs:
crates/qos/src/frame.rs:
crates/qos/src/manager.rs:
crates/qos/src/measure.rs:
