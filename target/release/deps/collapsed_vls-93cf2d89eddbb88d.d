/root/repo/target/release/deps/collapsed_vls-93cf2d89eddbb88d.d: tests/collapsed_vls.rs

/root/repo/target/release/deps/collapsed_vls-93cf2d89eddbb88d: tests/collapsed_vls.rs

tests/collapsed_vls.rs:
