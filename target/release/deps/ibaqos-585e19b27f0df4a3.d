/root/repo/target/release/deps/ibaqos-585e19b27f0df4a3.d: crates/cli/src/main.rs

/root/repo/target/release/deps/ibaqos-585e19b27f0df4a3: crates/cli/src/main.rs

crates/cli/src/main.rs:
