/root/repo/target/release/deps/iba_stats-bae56f263d1fbd7f.d: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs

/root/repo/target/release/deps/libiba_stats-bae56f263d1fbd7f.rlib: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs

/root/repo/target/release/deps/libiba_stats-bae56f263d1fbd7f.rmeta: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs

crates/stats/src/lib.rs:
crates/stats/src/delay.rs:
crates/stats/src/jitter.rs:
crates/stats/src/report.rs:
crates/stats/src/series.rs:
crates/stats/src/util.rs:
