/root/repo/target/release/deps/infiniband_qos-310f8cb0f0012374.d: src/lib.rs

/root/repo/target/release/deps/infiniband_qos-310f8cb0f0012374: src/lib.rs

src/lib.rs:
