/root/repo/target/release/deps/smoke-8b11007047d21fd8.d: crates/bench/src/bin/smoke.rs

/root/repo/target/release/deps/smoke-8b11007047d21fd8: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
