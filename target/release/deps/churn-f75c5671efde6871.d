/root/repo/target/release/deps/churn-f75c5671efde6871.d: crates/bench/src/bin/churn.rs

/root/repo/target/release/deps/churn-f75c5671efde6871: crates/bench/src/bin/churn.rs

crates/bench/src/bin/churn.rs:
