/root/repo/target/release/deps/sweep_vls-a322b930f06c4c0d.d: crates/bench/src/bin/sweep_vls.rs

/root/repo/target/release/deps/sweep_vls-a322b930f06c4c0d: crates/bench/src/bin/sweep_vls.rs

crates/bench/src/bin/sweep_vls.rs:
