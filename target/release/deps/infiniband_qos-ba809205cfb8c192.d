/root/repo/target/release/deps/infiniband_qos-ba809205cfb8c192.d: src/lib.rs

/root/repo/target/release/deps/libinfiniband_qos-ba809205cfb8c192.rlib: src/lib.rs

/root/repo/target/release/deps/libinfiniband_qos-ba809205cfb8c192.rmeta: src/lib.rs

src/lib.rs:
