/root/repo/target/release/deps/iba_cli-a2b6036b15d5ba71.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libiba_cli-a2b6036b15d5ba71.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libiba_cli-a2b6036b15d5ba71.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
