/root/repo/target/release/deps/iba_harness-66a842cb5a1deb22.d: crates/harness/src/lib.rs crates/harness/src/engine.rs crates/harness/src/experiment.rs crates/harness/src/sweep.rs

/root/repo/target/release/deps/iba_harness-66a842cb5a1deb22: crates/harness/src/lib.rs crates/harness/src/engine.rs crates/harness/src/experiment.rs crates/harness/src/sweep.rs

crates/harness/src/lib.rs:
crates/harness/src/engine.rs:
crates/harness/src/experiment.rs:
crates/harness/src/sweep.rs:
