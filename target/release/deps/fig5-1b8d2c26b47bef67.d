/root/repo/target/release/deps/fig5-1b8d2c26b47bef67.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-1b8d2c26b47bef67: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
