/root/repo/target/release/deps/iba_qos-ec7932e976603f35.d: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/release/deps/libiba_qos-ec7932e976603f35.rlib: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/release/deps/libiba_qos-ec7932e976603f35.rmeta: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

crates/qos/src/lib.rs:
crates/qos/src/cac.rs:
crates/qos/src/churn.rs:
crates/qos/src/connection.rs:
crates/qos/src/frame.rs:
crates/qos/src/manager.rs:
crates/qos/src/measure.rs:
