/root/repo/target/release/deps/fig4-e2829bba75cea65c.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-e2829bba75cea65c: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
