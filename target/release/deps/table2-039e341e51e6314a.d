/root/repo/target/release/deps/table2-039e341e51e6314a.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-039e341e51e6314a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
