/root/repo/target/release/deps/iba_obs-f8822cecc86ad589.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libiba_obs-f8822cecc86ad589.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libiba_obs-f8822cecc86ad589.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
crates/obs/src/trace.rs:
