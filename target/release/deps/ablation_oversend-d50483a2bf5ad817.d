/root/repo/target/release/deps/ablation_oversend-d50483a2bf5ad817.d: crates/bench/src/bin/ablation_oversend.rs

/root/repo/target/release/deps/ablation_oversend-d50483a2bf5ad817: crates/bench/src/bin/ablation_oversend.rs

crates/bench/src/bin/ablation_oversend.rs:
