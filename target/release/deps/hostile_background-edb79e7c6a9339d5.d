/root/repo/target/release/deps/hostile_background-edb79e7c6a9339d5.d: tests/hostile_background.rs

/root/repo/target/release/deps/hostile_background-edb79e7c6a9339d5: tests/hostile_background.rs

tests/hostile_background.rs:
