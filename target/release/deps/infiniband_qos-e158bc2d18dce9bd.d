/root/repo/target/release/deps/infiniband_qos-e158bc2d18dce9bd.d: src/lib.rs

/root/repo/target/release/deps/libinfiniband_qos-e158bc2d18dce9bd.rlib: src/lib.rs

/root/repo/target/release/deps/libinfiniband_qos-e158bc2d18dce9bd.rmeta: src/lib.rs

src/lib.rs:
