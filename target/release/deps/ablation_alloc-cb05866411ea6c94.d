/root/repo/target/release/deps/ablation_alloc-cb05866411ea6c94.d: crates/bench/src/bin/ablation_alloc.rs

/root/repo/target/release/deps/ablation_alloc-cb05866411ea6c94: crates/bench/src/bin/ablation_alloc.rs

crates/bench/src/bin/ablation_alloc.rs:
