/root/repo/target/release/deps/iba_harness-1f577e63b124cc41.d: crates/harness/src/lib.rs crates/harness/src/engine.rs crates/harness/src/experiment.rs crates/harness/src/sweep.rs

/root/repo/target/release/deps/libiba_harness-1f577e63b124cc41.rlib: crates/harness/src/lib.rs crates/harness/src/engine.rs crates/harness/src/experiment.rs crates/harness/src/sweep.rs

/root/repo/target/release/deps/libiba_harness-1f577e63b124cc41.rmeta: crates/harness/src/lib.rs crates/harness/src/engine.rs crates/harness/src/experiment.rs crates/harness/src/sweep.rs

crates/harness/src/lib.rs:
crates/harness/src/engine.rs:
crates/harness/src/experiment.rs:
crates/harness/src/sweep.rs:
