/root/repo/target/release/deps/iba_topo-9ef6c87f62bbb6d7.d: crates/topo/src/lib.rs crates/topo/src/dot.rs crates/topo/src/graph.rs crates/topo/src/irregular.rs crates/topo/src/regular.rs crates/topo/src/updown.rs crates/topo/src/validate.rs

/root/repo/target/release/deps/libiba_topo-9ef6c87f62bbb6d7.rlib: crates/topo/src/lib.rs crates/topo/src/dot.rs crates/topo/src/graph.rs crates/topo/src/irregular.rs crates/topo/src/regular.rs crates/topo/src/updown.rs crates/topo/src/validate.rs

/root/repo/target/release/deps/libiba_topo-9ef6c87f62bbb6d7.rmeta: crates/topo/src/lib.rs crates/topo/src/dot.rs crates/topo/src/graph.rs crates/topo/src/irregular.rs crates/topo/src/regular.rs crates/topo/src/updown.rs crates/topo/src/validate.rs

crates/topo/src/lib.rs:
crates/topo/src/dot.rs:
crates/topo/src/graph.rs:
crates/topo/src/irregular.rs:
crates/topo/src/regular.rs:
crates/topo/src/updown.rs:
crates/topo/src/validate.rs:
