/root/repo/target/release/deps/table1-ee7a41ce0281d028.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-ee7a41ce0281d028: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
