/root/repo/target/release/deps/infiniband_qos-3612e40435793c1c.d: src/lib.rs

/root/repo/target/release/deps/libinfiniband_qos-3612e40435793c1c.rlib: src/lib.rs

/root/repo/target/release/deps/libinfiniband_qos-3612e40435793c1c.rmeta: src/lib.rs

src/lib.rs:
