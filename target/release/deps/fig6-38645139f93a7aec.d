/root/repo/target/release/deps/fig6-38645139f93a7aec.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-38645139f93a7aec: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
