/root/repo/target/release/deps/iba_sim-fac574bab663db42.d: crates/sim/src/lib.rs crates/sim/src/buffer.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fabric.rs crates/sim/src/invariants.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libiba_sim-fac574bab663db42.rlib: crates/sim/src/lib.rs crates/sim/src/buffer.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fabric.rs crates/sim/src/invariants.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libiba_sim-fac574bab663db42.rmeta: crates/sim/src/lib.rs crates/sim/src/buffer.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fabric.rs crates/sim/src/invariants.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/buffer.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fabric.rs:
crates/sim/src/invariants.rs:
crates/sim/src/packet.rs:
crates/sim/src/port.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
