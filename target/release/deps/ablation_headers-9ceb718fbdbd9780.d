/root/repo/target/release/deps/ablation_headers-9ceb718fbdbd9780.d: crates/bench/src/bin/ablation_headers.rs

/root/repo/target/release/deps/ablation_headers-9ceb718fbdbd9780: crates/bench/src/bin/ablation_headers.rs

crates/bench/src/bin/ablation_headers.rs:
