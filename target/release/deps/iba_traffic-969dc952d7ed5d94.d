/root/repo/target/release/deps/iba_traffic-969dc952d7ed5d94.d: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

/root/repo/target/release/deps/libiba_traffic-969dc952d7ed5d94.rlib: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

/root/repo/target/release/deps/libiba_traffic-969dc952d7ed5d94.rmeta: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

crates/traffic/src/lib.rs:
crates/traffic/src/besteffort.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/hotspot.rs:
crates/traffic/src/request.rs:
crates/traffic/src/vbr.rs:
crates/traffic/src/workload.rs:
