/root/repo/target/release/deps/end_to_end-8cf1840ea81dcc8b.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-8cf1840ea81dcc8b: tests/end_to_end.rs

tests/end_to_end.rs:
