/root/repo/target/release/deps/parallel_determinism-a214744304ffcc29.d: tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-a214744304ffcc29: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
