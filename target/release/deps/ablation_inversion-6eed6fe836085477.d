/root/repo/target/release/deps/ablation_inversion-6eed6fe836085477.d: crates/bench/src/bin/ablation_inversion.rs

/root/repo/target/release/deps/ablation_inversion-6eed6fe836085477: crates/bench/src/bin/ablation_inversion.rs

crates/bench/src/bin/ablation_inversion.rs:
