/root/repo/target/release/deps/dynamic_churn-6b447d9b95e7d81f.d: tests/dynamic_churn.rs

/root/repo/target/release/deps/dynamic_churn-6b447d9b95e7d81f: tests/dynamic_churn.rs

tests/dynamic_churn.rs:
