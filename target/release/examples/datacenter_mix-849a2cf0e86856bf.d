/root/repo/target/release/examples/datacenter_mix-849a2cf0e86856bf.d: examples/datacenter_mix.rs

/root/repo/target/release/examples/datacenter_mix-849a2cf0e86856bf: examples/datacenter_mix.rs

examples/datacenter_mix.rs:
