/root/repo/target/release/examples/oversubscribed_admission-0ac87852c8e403de.d: examples/oversubscribed_admission.rs

/root/repo/target/release/examples/oversubscribed_admission-0ac87852c8e403de: examples/oversubscribed_admission.rs

examples/oversubscribed_admission.rs:
