/root/repo/target/release/examples/video_streaming-5a793a2ea16bc2f5.d: examples/video_streaming.rs

/root/repo/target/release/examples/video_streaming-5a793a2ea16bc2f5: examples/video_streaming.rs

examples/video_streaming.rs:
