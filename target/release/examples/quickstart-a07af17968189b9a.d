/root/repo/target/release/examples/quickstart-a07af17968189b9a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a07af17968189b9a: examples/quickstart.rs

examples/quickstart.rs:
