/root/repo/target/debug/libxtask.rlib: /root/repo/crates/xtask/src/lib.rs
