/root/repo/target/debug/examples/video_streaming-0a114519e9517eba.d: examples/video_streaming.rs Cargo.toml

/root/repo/target/debug/examples/libvideo_streaming-0a114519e9517eba.rmeta: examples/video_streaming.rs Cargo.toml

examples/video_streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
