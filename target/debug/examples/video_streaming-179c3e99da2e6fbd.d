/root/repo/target/debug/examples/video_streaming-179c3e99da2e6fbd.d: examples/video_streaming.rs Cargo.toml

/root/repo/target/debug/examples/libvideo_streaming-179c3e99da2e6fbd.rmeta: examples/video_streaming.rs Cargo.toml

examples/video_streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
