/root/repo/target/debug/examples/quickstart-d064e4619746a236.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d064e4619746a236: examples/quickstart.rs

examples/quickstart.rs:
