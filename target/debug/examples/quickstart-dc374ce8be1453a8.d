/root/repo/target/debug/examples/quickstart-dc374ce8be1453a8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dc374ce8be1453a8: examples/quickstart.rs

examples/quickstart.rs:
