/root/repo/target/debug/examples/quickstart-838d64dde70fcd3b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-838d64dde70fcd3b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
