/root/repo/target/debug/examples/oversubscribed_admission-93c400903614a19a.d: examples/oversubscribed_admission.rs Cargo.toml

/root/repo/target/debug/examples/liboversubscribed_admission-93c400903614a19a.rmeta: examples/oversubscribed_admission.rs Cargo.toml

examples/oversubscribed_admission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
