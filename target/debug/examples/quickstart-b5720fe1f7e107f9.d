/root/repo/target/debug/examples/quickstart-b5720fe1f7e107f9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b5720fe1f7e107f9: examples/quickstart.rs

examples/quickstart.rs:
