/root/repo/target/debug/examples/quickstart-c77e8520efd80fa5.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c77e8520efd80fa5.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
