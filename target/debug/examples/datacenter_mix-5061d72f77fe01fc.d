/root/repo/target/debug/examples/datacenter_mix-5061d72f77fe01fc.d: examples/datacenter_mix.rs

/root/repo/target/debug/examples/datacenter_mix-5061d72f77fe01fc: examples/datacenter_mix.rs

examples/datacenter_mix.rs:
