/root/repo/target/debug/examples/oversubscribed_admission-8314b5272ab63613.d: examples/oversubscribed_admission.rs

/root/repo/target/debug/examples/oversubscribed_admission-8314b5272ab63613: examples/oversubscribed_admission.rs

examples/oversubscribed_admission.rs:
