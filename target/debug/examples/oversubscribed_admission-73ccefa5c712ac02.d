/root/repo/target/debug/examples/oversubscribed_admission-73ccefa5c712ac02.d: examples/oversubscribed_admission.rs

/root/repo/target/debug/examples/oversubscribed_admission-73ccefa5c712ac02: examples/oversubscribed_admission.rs

examples/oversubscribed_admission.rs:
