/root/repo/target/debug/examples/oversubscribed_admission-44e9e01dc2bc8aae.d: examples/oversubscribed_admission.rs

/root/repo/target/debug/examples/oversubscribed_admission-44e9e01dc2bc8aae: examples/oversubscribed_admission.rs

examples/oversubscribed_admission.rs:
