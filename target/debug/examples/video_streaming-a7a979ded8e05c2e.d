/root/repo/target/debug/examples/video_streaming-a7a979ded8e05c2e.d: examples/video_streaming.rs

/root/repo/target/debug/examples/video_streaming-a7a979ded8e05c2e: examples/video_streaming.rs

examples/video_streaming.rs:
