/root/repo/target/debug/examples/video_streaming-4ebd7f2ea538e1a6.d: examples/video_streaming.rs

/root/repo/target/debug/examples/video_streaming-4ebd7f2ea538e1a6: examples/video_streaming.rs

examples/video_streaming.rs:
