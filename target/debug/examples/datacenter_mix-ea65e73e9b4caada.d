/root/repo/target/debug/examples/datacenter_mix-ea65e73e9b4caada.d: examples/datacenter_mix.rs

/root/repo/target/debug/examples/datacenter_mix-ea65e73e9b4caada: examples/datacenter_mix.rs

examples/datacenter_mix.rs:
