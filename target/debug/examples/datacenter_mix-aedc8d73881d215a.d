/root/repo/target/debug/examples/datacenter_mix-aedc8d73881d215a.d: examples/datacenter_mix.rs

/root/repo/target/debug/examples/datacenter_mix-aedc8d73881d215a: examples/datacenter_mix.rs

examples/datacenter_mix.rs:
