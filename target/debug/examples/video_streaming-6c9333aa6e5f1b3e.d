/root/repo/target/debug/examples/video_streaming-6c9333aa6e5f1b3e.d: examples/video_streaming.rs

/root/repo/target/debug/examples/video_streaming-6c9333aa6e5f1b3e: examples/video_streaming.rs

examples/video_streaming.rs:
