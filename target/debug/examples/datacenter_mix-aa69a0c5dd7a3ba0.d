/root/repo/target/debug/examples/datacenter_mix-aa69a0c5dd7a3ba0.d: examples/datacenter_mix.rs Cargo.toml

/root/repo/target/debug/examples/libdatacenter_mix-aa69a0c5dd7a3ba0.rmeta: examples/datacenter_mix.rs Cargo.toml

examples/datacenter_mix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
