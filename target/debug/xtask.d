/root/repo/target/debug/xtask: /root/repo/crates/xtask/src/lib.rs /root/repo/crates/xtask/src/main.rs
