/root/repo/target/debug/deps/iba_obs-ec9695396891bcbe.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libiba_obs-ec9695396891bcbe.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
