/root/repo/target/debug/deps/fig6-629a828161f250a0.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-629a828161f250a0: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
