/root/repo/target/debug/deps/fig6-1e04457ed7120f6d.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-1e04457ed7120f6d: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
