/root/repo/target/debug/deps/iba_cli-6e32889e93c057cb.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/iba_cli-6e32889e93c057cb: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
