/root/repo/target/debug/deps/infiniband_qos-f1139231276aaa33.d: src/lib.rs

/root/repo/target/debug/deps/infiniband_qos-f1139231276aaa33: src/lib.rs

src/lib.rs:
