/root/repo/target/debug/deps/churn-af18c05853ad8b01.d: crates/bench/src/bin/churn.rs

/root/repo/target/debug/deps/churn-af18c05853ad8b01: crates/bench/src/bin/churn.rs

crates/bench/src/bin/churn.rs:
