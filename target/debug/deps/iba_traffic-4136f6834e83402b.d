/root/repo/target/debug/deps/iba_traffic-4136f6834e83402b.d: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libiba_traffic-4136f6834e83402b.rmeta: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/besteffort.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/hotspot.rs:
crates/traffic/src/request.rs:
crates/traffic/src/vbr.rs:
crates/traffic/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
