/root/repo/target/debug/deps/smoke-3d14c00832d92974.d: crates/bench/src/bin/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-3d14c00832d92974.rmeta: crates/bench/src/bin/smoke.rs Cargo.toml

crates/bench/src/bin/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
