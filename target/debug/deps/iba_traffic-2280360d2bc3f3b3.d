/root/repo/target/debug/deps/iba_traffic-2280360d2bc3f3b3.d: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

/root/repo/target/debug/deps/iba_traffic-2280360d2bc3f3b3: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

crates/traffic/src/lib.rs:
crates/traffic/src/besteffort.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/hotspot.rs:
crates/traffic/src/request.rs:
crates/traffic/src/vbr.rs:
crates/traffic/src/workload.rs:
