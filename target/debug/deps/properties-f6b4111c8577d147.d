/root/repo/target/debug/deps/properties-f6b4111c8577d147.d: crates/topo/tests/properties.rs

/root/repo/target/debug/deps/properties-f6b4111c8577d147: crates/topo/tests/properties.rs

crates/topo/tests/properties.rs:
