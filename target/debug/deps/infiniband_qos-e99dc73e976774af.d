/root/repo/target/debug/deps/infiniband_qos-e99dc73e976774af.d: src/lib.rs

/root/repo/target/debug/deps/infiniband_qos-e99dc73e976774af: src/lib.rs

src/lib.rs:
