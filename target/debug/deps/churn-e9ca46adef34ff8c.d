/root/repo/target/debug/deps/churn-e9ca46adef34ff8c.d: crates/bench/src/bin/churn.rs Cargo.toml

/root/repo/target/debug/deps/libchurn-e9ca46adef34ff8c.rmeta: crates/bench/src/bin/churn.rs Cargo.toml

crates/bench/src/bin/churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
