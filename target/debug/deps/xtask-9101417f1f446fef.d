/root/repo/target/debug/deps/xtask-9101417f1f446fef.d: crates/xtask/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-9101417f1f446fef.rmeta: crates/xtask/src/lib.rs Cargo.toml

crates/xtask/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
