/root/repo/target/debug/deps/sweep_size-9f50899d25a1871d.d: crates/bench/src/bin/sweep_size.rs

/root/repo/target/debug/deps/sweep_size-9f50899d25a1871d: crates/bench/src/bin/sweep_size.rs

crates/bench/src/bin/sweep_size.rs:
