/root/repo/target/debug/deps/properties-a5962ab3755b6116.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a5962ab3755b6116.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
