/root/repo/target/debug/deps/properties-e63617cf09f916eb.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-e63617cf09f916eb: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
