/root/repo/target/debug/deps/iba_obs-8fab37055e30d5a5.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/iba_obs-8fab37055e30d5a5: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
crates/obs/src/trace.rs:
