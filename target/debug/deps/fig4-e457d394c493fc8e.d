/root/repo/target/debug/deps/fig4-e457d394c493fc8e.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-e457d394c493fc8e: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
