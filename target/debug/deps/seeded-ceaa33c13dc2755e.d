/root/repo/target/debug/deps/seeded-ceaa33c13dc2755e.d: crates/xtask/tests/seeded.rs Cargo.toml

/root/repo/target/debug/deps/libseeded-ceaa33c13dc2755e.rmeta: crates/xtask/tests/seeded.rs Cargo.toml

crates/xtask/tests/seeded.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
