/root/repo/target/debug/deps/properties-f725a245e572150b.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f725a245e572150b.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
