/root/repo/target/debug/deps/ibaqos-bba74af8321e7590.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ibaqos-bba74af8321e7590: crates/cli/src/main.rs

crates/cli/src/main.rs:
