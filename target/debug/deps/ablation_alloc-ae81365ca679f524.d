/root/repo/target/debug/deps/ablation_alloc-ae81365ca679f524.d: crates/bench/src/bin/ablation_alloc.rs

/root/repo/target/debug/deps/ablation_alloc-ae81365ca679f524: crates/bench/src/bin/ablation_alloc.rs

crates/bench/src/bin/ablation_alloc.rs:
