/root/repo/target/debug/deps/alloc-0fdc015f72970787.d: crates/bench/benches/alloc.rs Cargo.toml

/root/repo/target/debug/deps/liballoc-0fdc015f72970787.rmeta: crates/bench/benches/alloc.rs Cargo.toml

crates/bench/benches/alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
