/root/repo/target/debug/deps/smoke-2b671ac56ddca821.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-2b671ac56ddca821: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
