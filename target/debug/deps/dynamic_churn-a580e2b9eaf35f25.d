/root/repo/target/debug/deps/dynamic_churn-a580e2b9eaf35f25.d: tests/dynamic_churn.rs

/root/repo/target/debug/deps/dynamic_churn-a580e2b9eaf35f25: tests/dynamic_churn.rs

tests/dynamic_churn.rs:
