/root/repo/target/debug/deps/table1-12eaeccd9a8e5ddc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-12eaeccd9a8e5ddc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
