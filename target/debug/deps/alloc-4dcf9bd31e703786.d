/root/repo/target/debug/deps/alloc-4dcf9bd31e703786.d: crates/bench/benches/alloc.rs Cargo.toml

/root/repo/target/debug/deps/liballoc-4dcf9bd31e703786.rmeta: crates/bench/benches/alloc.rs Cargo.toml

crates/bench/benches/alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
