/root/repo/target/debug/deps/infiniband_qos-82de7796dd8ba973.d: src/lib.rs

/root/repo/target/debug/deps/infiniband_qos-82de7796dd8ba973: src/lib.rs

src/lib.rs:
