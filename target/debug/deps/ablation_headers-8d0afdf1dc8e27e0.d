/root/repo/target/debug/deps/ablation_headers-8d0afdf1dc8e27e0.d: crates/bench/src/bin/ablation_headers.rs

/root/repo/target/debug/deps/ablation_headers-8d0afdf1dc8e27e0: crates/bench/src/bin/ablation_headers.rs

crates/bench/src/bin/ablation_headers.rs:
