/root/repo/target/debug/deps/hostile_background-448dbc4bf37ba103.d: tests/hostile_background.rs

/root/repo/target/debug/deps/hostile_background-448dbc4bf37ba103: tests/hostile_background.rs

tests/hostile_background.rs:
