/root/repo/target/debug/deps/properties-302f8e29431b8ff8.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-302f8e29431b8ff8: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
