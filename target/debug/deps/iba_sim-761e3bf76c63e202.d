/root/repo/target/debug/deps/iba_sim-761e3bf76c63e202.d: crates/sim/src/lib.rs crates/sim/src/buffer.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fabric.rs crates/sim/src/invariants.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libiba_sim-761e3bf76c63e202.rmeta: crates/sim/src/lib.rs crates/sim/src/buffer.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fabric.rs crates/sim/src/invariants.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/buffer.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fabric.rs:
crates/sim/src/invariants.rs:
crates/sim/src/packet.rs:
crates/sim/src/port.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
