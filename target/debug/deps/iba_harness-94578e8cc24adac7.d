/root/repo/target/debug/deps/iba_harness-94578e8cc24adac7.d: crates/harness/src/lib.rs crates/harness/src/engine.rs crates/harness/src/experiment.rs crates/harness/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libiba_harness-94578e8cc24adac7.rmeta: crates/harness/src/lib.rs crates/harness/src/engine.rs crates/harness/src/experiment.rs crates/harness/src/sweep.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/engine.rs:
crates/harness/src/experiment.rs:
crates/harness/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
