/root/repo/target/debug/deps/iba_verify-d67c151133c9551b.d: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs

/root/repo/target/debug/deps/libiba_verify-d67c151133c9551b.rlib: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs

/root/repo/target/debug/deps/libiba_verify-d67c151133c9551b.rmeta: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs

crates/verify/src/lib.rs:
crates/verify/src/concrete.rs:
crates/verify/src/crossval.rs:
crates/verify/src/quotient.rs:
crates/verify/src/sweep.rs:
