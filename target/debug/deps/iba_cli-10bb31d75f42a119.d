/root/repo/target/debug/deps/iba_cli-10bb31d75f42a119.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libiba_cli-10bb31d75f42a119.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libiba_cli-10bb31d75f42a119.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
