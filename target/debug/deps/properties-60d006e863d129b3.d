/root/repo/target/debug/deps/properties-60d006e863d129b3.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-60d006e863d129b3: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
