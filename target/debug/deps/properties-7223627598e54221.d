/root/repo/target/debug/deps/properties-7223627598e54221.d: crates/topo/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7223627598e54221.rmeta: crates/topo/tests/properties.rs Cargo.toml

crates/topo/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
