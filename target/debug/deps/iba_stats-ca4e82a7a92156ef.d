/root/repo/target/debug/deps/iba_stats-ca4e82a7a92156ef.d: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs

/root/repo/target/debug/deps/libiba_stats-ca4e82a7a92156ef.rlib: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs

/root/repo/target/debug/deps/libiba_stats-ca4e82a7a92156ef.rmeta: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs

crates/stats/src/lib.rs:
crates/stats/src/delay.rs:
crates/stats/src/jitter.rs:
crates/stats/src/report.rs:
crates/stats/src/series.rs:
crates/stats/src/util.rs:
