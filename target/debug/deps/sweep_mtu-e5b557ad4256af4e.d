/root/repo/target/debug/deps/sweep_mtu-e5b557ad4256af4e.d: crates/bench/src/bin/sweep_mtu.rs

/root/repo/target/debug/deps/sweep_mtu-e5b557ad4256af4e: crates/bench/src/bin/sweep_mtu.rs

crates/bench/src/bin/sweep_mtu.rs:
