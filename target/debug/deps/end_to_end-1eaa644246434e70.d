/root/repo/target/debug/deps/end_to_end-1eaa644246434e70.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-1eaa644246434e70.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
