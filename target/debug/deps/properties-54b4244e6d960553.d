/root/repo/target/debug/deps/properties-54b4244e6d960553.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-54b4244e6d960553: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
