/root/repo/target/debug/deps/properties-182c17922f78dc7c.d: crates/topo/tests/properties.rs

/root/repo/target/debug/deps/properties-182c17922f78dc7c: crates/topo/tests/properties.rs

crates/topo/tests/properties.rs:
