/root/repo/target/debug/deps/iba_topo-233b5549cd6ca9a8.d: crates/topo/src/lib.rs crates/topo/src/dot.rs crates/topo/src/graph.rs crates/topo/src/irregular.rs crates/topo/src/regular.rs crates/topo/src/updown.rs crates/topo/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libiba_topo-233b5549cd6ca9a8.rmeta: crates/topo/src/lib.rs crates/topo/src/dot.rs crates/topo/src/graph.rs crates/topo/src/irregular.rs crates/topo/src/regular.rs crates/topo/src/updown.rs crates/topo/src/validate.rs Cargo.toml

crates/topo/src/lib.rs:
crates/topo/src/dot.rs:
crates/topo/src/graph.rs:
crates/topo/src/irregular.rs:
crates/topo/src/regular.rs:
crates/topo/src/updown.rs:
crates/topo/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
