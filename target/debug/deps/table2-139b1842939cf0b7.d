/root/repo/target/debug/deps/table2-139b1842939cf0b7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-139b1842939cf0b7: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
