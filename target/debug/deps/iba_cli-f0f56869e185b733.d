/root/repo/target/debug/deps/iba_cli-f0f56869e185b733.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/iba_cli-f0f56869e185b733: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
