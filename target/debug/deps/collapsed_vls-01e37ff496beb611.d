/root/repo/target/debug/deps/collapsed_vls-01e37ff496beb611.d: tests/collapsed_vls.rs

/root/repo/target/debug/deps/collapsed_vls-01e37ff496beb611: tests/collapsed_vls.rs

tests/collapsed_vls.rs:
