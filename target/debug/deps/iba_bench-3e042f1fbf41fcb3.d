/root/repo/target/debug/deps/iba_bench-3e042f1fbf41fcb3.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/iba_bench-3e042f1fbf41fcb3: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
