/root/repo/target/debug/deps/sweep_size-f4ec40fff409b21c.d: crates/bench/src/bin/sweep_size.rs

/root/repo/target/debug/deps/sweep_size-f4ec40fff409b21c: crates/bench/src/bin/sweep_size.rs

crates/bench/src/bin/sweep_size.rs:
