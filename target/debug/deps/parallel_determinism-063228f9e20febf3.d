/root/repo/target/debug/deps/parallel_determinism-063228f9e20febf3.d: tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-063228f9e20febf3.rmeta: tests/parallel_determinism.rs Cargo.toml

tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
