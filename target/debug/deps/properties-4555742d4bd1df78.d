/root/repo/target/debug/deps/properties-4555742d4bd1df78.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4555742d4bd1df78.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
