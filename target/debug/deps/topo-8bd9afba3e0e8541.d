/root/repo/target/debug/deps/topo-8bd9afba3e0e8541.d: crates/bench/benches/topo.rs Cargo.toml

/root/repo/target/debug/deps/libtopo-8bd9afba3e0e8541.rmeta: crates/bench/benches/topo.rs Cargo.toml

crates/bench/benches/topo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
