/root/repo/target/debug/deps/end_to_end-1ec8bdd9adf38edf.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1ec8bdd9adf38edf: tests/end_to_end.rs

tests/end_to_end.rs:
