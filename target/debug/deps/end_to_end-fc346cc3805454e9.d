/root/repo/target/debug/deps/end_to_end-fc346cc3805454e9.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-fc346cc3805454e9: tests/end_to_end.rs

tests/end_to_end.rs:
