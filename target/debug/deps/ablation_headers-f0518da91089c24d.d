/root/repo/target/debug/deps/ablation_headers-f0518da91089c24d.d: crates/bench/src/bin/ablation_headers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_headers-f0518da91089c24d.rmeta: crates/bench/src/bin/ablation_headers.rs Cargo.toml

crates/bench/src/bin/ablation_headers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
