/root/repo/target/debug/deps/iba_cli-af2aed8322112ada.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libiba_cli-af2aed8322112ada.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
