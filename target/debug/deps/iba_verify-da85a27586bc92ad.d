/root/repo/target/debug/deps/iba_verify-da85a27586bc92ad.d: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs

/root/repo/target/debug/deps/iba_verify-da85a27586bc92ad: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs

crates/verify/src/lib.rs:
crates/verify/src/concrete.rs:
crates/verify/src/crossval.rs:
crates/verify/src/quotient.rs:
crates/verify/src/sweep.rs:
