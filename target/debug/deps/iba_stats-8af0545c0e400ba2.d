/root/repo/target/debug/deps/iba_stats-8af0545c0e400ba2.d: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libiba_stats-8af0545c0e400ba2.rmeta: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/delay.rs:
crates/stats/src/jitter.rs:
crates/stats/src/report.rs:
crates/stats/src/series.rs:
crates/stats/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
