/root/repo/target/debug/deps/golden_cli-cafe101c61aa01ae.d: tests/golden_cli.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_cli-cafe101c61aa01ae.rmeta: tests/golden_cli.rs Cargo.toml

tests/golden_cli.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
