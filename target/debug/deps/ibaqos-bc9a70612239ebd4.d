/root/repo/target/debug/deps/ibaqos-bc9a70612239ebd4.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ibaqos-bc9a70612239ebd4: crates/cli/src/main.rs

crates/cli/src/main.rs:
