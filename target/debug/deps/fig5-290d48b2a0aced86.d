/root/repo/target/debug/deps/fig5-290d48b2a0aced86.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-290d48b2a0aced86: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
