/root/repo/target/debug/deps/sweep_vls-72b4ac9bd71e09e1.d: crates/bench/src/bin/sweep_vls.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_vls-72b4ac9bd71e09e1.rmeta: crates/bench/src/bin/sweep_vls.rs Cargo.toml

crates/bench/src/bin/sweep_vls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
