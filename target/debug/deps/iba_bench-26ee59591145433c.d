/root/repo/target/debug/deps/iba_bench-26ee59591145433c.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/iba_bench-26ee59591145433c: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
