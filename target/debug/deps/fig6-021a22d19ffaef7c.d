/root/repo/target/debug/deps/fig6-021a22d19ffaef7c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-021a22d19ffaef7c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
