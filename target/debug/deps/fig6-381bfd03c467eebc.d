/root/repo/target/debug/deps/fig6-381bfd03c467eebc.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-381bfd03c467eebc: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
