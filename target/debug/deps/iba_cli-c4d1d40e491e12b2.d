/root/repo/target/debug/deps/iba_cli-c4d1d40e491e12b2.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libiba_cli-c4d1d40e491e12b2.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libiba_cli-c4d1d40e491e12b2.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
