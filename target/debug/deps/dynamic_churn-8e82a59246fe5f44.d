/root/repo/target/debug/deps/dynamic_churn-8e82a59246fe5f44.d: tests/dynamic_churn.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_churn-8e82a59246fe5f44.rmeta: tests/dynamic_churn.rs Cargo.toml

tests/dynamic_churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
