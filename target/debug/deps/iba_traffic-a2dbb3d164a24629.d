/root/repo/target/debug/deps/iba_traffic-a2dbb3d164a24629.d: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

/root/repo/target/debug/deps/libiba_traffic-a2dbb3d164a24629.rmeta: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

crates/traffic/src/lib.rs:
crates/traffic/src/besteffort.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/hotspot.rs:
crates/traffic/src/request.rs:
crates/traffic/src/vbr.rs:
crates/traffic/src/workload.rs:
