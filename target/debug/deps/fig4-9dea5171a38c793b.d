/root/repo/target/debug/deps/fig4-9dea5171a38c793b.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-9dea5171a38c793b.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
