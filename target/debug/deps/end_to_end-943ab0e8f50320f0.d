/root/repo/target/debug/deps/end_to_end-943ab0e8f50320f0.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-943ab0e8f50320f0.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
