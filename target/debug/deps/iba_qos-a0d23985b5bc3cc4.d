/root/repo/target/debug/deps/iba_qos-a0d23985b5bc3cc4.d: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/debug/deps/libiba_qos-a0d23985b5bc3cc4.rlib: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/debug/deps/libiba_qos-a0d23985b5bc3cc4.rmeta: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

crates/qos/src/lib.rs:
crates/qos/src/cac.rs:
crates/qos/src/churn.rs:
crates/qos/src/connection.rs:
crates/qos/src/frame.rs:
crates/qos/src/manager.rs:
crates/qos/src/measure.rs:
