/root/repo/target/debug/deps/iba_verify-3bb74bc988e8a374.d: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs

/root/repo/target/debug/deps/iba_verify-3bb74bc988e8a374: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs

crates/verify/src/lib.rs:
crates/verify/src/concrete.rs:
crates/verify/src/crossval.rs:
crates/verify/src/quotient.rs:
crates/verify/src/sweep.rs:
