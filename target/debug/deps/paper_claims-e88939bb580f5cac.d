/root/repo/target/debug/deps/paper_claims-e88939bb580f5cac.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-e88939bb580f5cac: tests/paper_claims.rs

tests/paper_claims.rs:
