/root/repo/target/debug/deps/iba_stats-2c988bae3e3b4739.d: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs

/root/repo/target/debug/deps/iba_stats-2c988bae3e3b4739: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs

crates/stats/src/lib.rs:
crates/stats/src/delay.rs:
crates/stats/src/jitter.rs:
crates/stats/src/report.rs:
crates/stats/src/series.rs:
crates/stats/src/util.rs:
