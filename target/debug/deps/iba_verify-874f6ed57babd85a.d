/root/repo/target/debug/deps/iba_verify-874f6ed57babd85a.d: crates/verify/src/main.rs

/root/repo/target/debug/deps/iba_verify-874f6ed57babd85a: crates/verify/src/main.rs

crates/verify/src/main.rs:
