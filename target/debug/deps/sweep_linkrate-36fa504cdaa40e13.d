/root/repo/target/debug/deps/sweep_linkrate-36fa504cdaa40e13.d: crates/bench/src/bin/sweep_linkrate.rs

/root/repo/target/debug/deps/sweep_linkrate-36fa504cdaa40e13: crates/bench/src/bin/sweep_linkrate.rs

crates/bench/src/bin/sweep_linkrate.rs:
