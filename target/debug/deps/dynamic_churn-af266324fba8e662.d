/root/repo/target/debug/deps/dynamic_churn-af266324fba8e662.d: tests/dynamic_churn.rs

/root/repo/target/debug/deps/dynamic_churn-af266324fba8e662: tests/dynamic_churn.rs

tests/dynamic_churn.rs:
