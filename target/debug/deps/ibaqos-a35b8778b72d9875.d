/root/repo/target/debug/deps/ibaqos-a35b8778b72d9875.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ibaqos-a35b8778b72d9875: crates/cli/src/main.rs

crates/cli/src/main.rs:
