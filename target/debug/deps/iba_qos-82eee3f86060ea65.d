/root/repo/target/debug/deps/iba_qos-82eee3f86060ea65.d: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/debug/deps/libiba_qos-82eee3f86060ea65.rlib: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/debug/deps/libiba_qos-82eee3f86060ea65.rmeta: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

crates/qos/src/lib.rs:
crates/qos/src/cac.rs:
crates/qos/src/churn.rs:
crates/qos/src/connection.rs:
crates/qos/src/frame.rs:
crates/qos/src/manager.rs:
crates/qos/src/measure.rs:
