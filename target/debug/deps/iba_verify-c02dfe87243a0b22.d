/root/repo/target/debug/deps/iba_verify-c02dfe87243a0b22.d: crates/verify/src/main.rs

/root/repo/target/debug/deps/iba_verify-c02dfe87243a0b22: crates/verify/src/main.rs

crates/verify/src/main.rs:
