/root/repo/target/debug/deps/infiniband_qos-2e47563ac967bbd2.d: src/lib.rs

/root/repo/target/debug/deps/libinfiniband_qos-2e47563ac967bbd2.rlib: src/lib.rs

/root/repo/target/debug/deps/libinfiniband_qos-2e47563ac967bbd2.rmeta: src/lib.rs

src/lib.rs:
