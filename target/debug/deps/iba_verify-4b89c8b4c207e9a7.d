/root/repo/target/debug/deps/iba_verify-4b89c8b4c207e9a7.d: crates/verify/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libiba_verify-4b89c8b4c207e9a7.rmeta: crates/verify/src/main.rs Cargo.toml

crates/verify/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
