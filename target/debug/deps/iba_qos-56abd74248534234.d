/root/repo/target/debug/deps/iba_qos-56abd74248534234.d: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs Cargo.toml

/root/repo/target/debug/deps/libiba_qos-56abd74248534234.rmeta: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs Cargo.toml

crates/qos/src/lib.rs:
crates/qos/src/cac.rs:
crates/qos/src/churn.rs:
crates/qos/src/connection.rs:
crates/qos/src/frame.rs:
crates/qos/src/manager.rs:
crates/qos/src/measure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
