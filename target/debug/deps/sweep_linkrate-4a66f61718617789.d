/root/repo/target/debug/deps/sweep_linkrate-4a66f61718617789.d: crates/bench/src/bin/sweep_linkrate.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_linkrate-4a66f61718617789.rmeta: crates/bench/src/bin/sweep_linkrate.rs Cargo.toml

crates/bench/src/bin/sweep_linkrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
