/root/repo/target/debug/deps/sweep_linkrate-b747084edf08d0a8.d: crates/bench/src/bin/sweep_linkrate.rs

/root/repo/target/debug/deps/sweep_linkrate-b747084edf08d0a8: crates/bench/src/bin/sweep_linkrate.rs

crates/bench/src/bin/sweep_linkrate.rs:
