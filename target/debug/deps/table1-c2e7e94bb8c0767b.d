/root/repo/target/debug/deps/table1-c2e7e94bb8c0767b.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c2e7e94bb8c0767b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
