/root/repo/target/debug/deps/iba_bench-f72244000bb17cc5.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libiba_bench-f72244000bb17cc5.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
