/root/repo/target/debug/deps/iba_traffic-27ae0d85891ab0f9.d: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

/root/repo/target/debug/deps/iba_traffic-27ae0d85891ab0f9: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

crates/traffic/src/lib.rs:
crates/traffic/src/besteffort.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/hotspot.rs:
crates/traffic/src/request.rs:
crates/traffic/src/vbr.rs:
crates/traffic/src/workload.rs:
