/root/repo/target/debug/deps/iba_stats-f9052676b6021718.d: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs

/root/repo/target/debug/deps/libiba_stats-f9052676b6021718.rmeta: crates/stats/src/lib.rs crates/stats/src/delay.rs crates/stats/src/jitter.rs crates/stats/src/report.rs crates/stats/src/series.rs crates/stats/src/util.rs

crates/stats/src/lib.rs:
crates/stats/src/delay.rs:
crates/stats/src/jitter.rs:
crates/stats/src/report.rs:
crates/stats/src/series.rs:
crates/stats/src/util.rs:
