/root/repo/target/debug/deps/sweep_linkrate-6fd18209f70c96e3.d: crates/bench/src/bin/sweep_linkrate.rs

/root/repo/target/debug/deps/sweep_linkrate-6fd18209f70c96e3: crates/bench/src/bin/sweep_linkrate.rs

crates/bench/src/bin/sweep_linkrate.rs:
