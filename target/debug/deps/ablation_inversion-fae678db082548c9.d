/root/repo/target/debug/deps/ablation_inversion-fae678db082548c9.d: crates/bench/src/bin/ablation_inversion.rs

/root/repo/target/debug/deps/ablation_inversion-fae678db082548c9: crates/bench/src/bin/ablation_inversion.rs

crates/bench/src/bin/ablation_inversion.rs:
