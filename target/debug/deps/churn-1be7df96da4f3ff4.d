/root/repo/target/debug/deps/churn-1be7df96da4f3ff4.d: crates/bench/src/bin/churn.rs

/root/repo/target/debug/deps/churn-1be7df96da4f3ff4: crates/bench/src/bin/churn.rs

crates/bench/src/bin/churn.rs:
