/root/repo/target/debug/deps/sweep_vls-5dbf2ab551cac840.d: crates/bench/src/bin/sweep_vls.rs

/root/repo/target/debug/deps/sweep_vls-5dbf2ab551cac840: crates/bench/src/bin/sweep_vls.rs

crates/bench/src/bin/sweep_vls.rs:
