/root/repo/target/debug/deps/table2-c6db0587c4ac29ca.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-c6db0587c4ac29ca: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
