/root/repo/target/debug/deps/ablation_alloc-67929a32fa6e7bd9.d: crates/bench/src/bin/ablation_alloc.rs

/root/repo/target/debug/deps/ablation_alloc-67929a32fa6e7bd9: crates/bench/src/bin/ablation_alloc.rs

crates/bench/src/bin/ablation_alloc.rs:
