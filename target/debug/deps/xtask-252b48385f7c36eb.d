/root/repo/target/debug/deps/xtask-252b48385f7c36eb.d: crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-252b48385f7c36eb.rmeta: crates/xtask/src/main.rs Cargo.toml

crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
