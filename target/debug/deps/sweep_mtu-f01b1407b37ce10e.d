/root/repo/target/debug/deps/sweep_mtu-f01b1407b37ce10e.d: crates/bench/src/bin/sweep_mtu.rs

/root/repo/target/debug/deps/sweep_mtu-f01b1407b37ce10e: crates/bench/src/bin/sweep_mtu.rs

crates/bench/src/bin/sweep_mtu.rs:
