/root/repo/target/debug/deps/fig5-61f6c949ff5eacb9.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-61f6c949ff5eacb9.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
