/root/repo/target/debug/deps/fig4-8b2f4c9f1fc7d4f9.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-8b2f4c9f1fc7d4f9: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
