/root/repo/target/debug/deps/fig5-48dd541b767ccf4d.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-48dd541b767ccf4d: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
