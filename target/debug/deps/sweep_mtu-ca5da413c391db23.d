/root/repo/target/debug/deps/sweep_mtu-ca5da413c391db23.d: crates/bench/src/bin/sweep_mtu.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_mtu-ca5da413c391db23.rmeta: crates/bench/src/bin/sweep_mtu.rs Cargo.toml

crates/bench/src/bin/sweep_mtu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
