/root/repo/target/debug/deps/sweep_linkrate-72165acc4127a083.d: crates/bench/src/bin/sweep_linkrate.rs

/root/repo/target/debug/deps/sweep_linkrate-72165acc4127a083: crates/bench/src/bin/sweep_linkrate.rs

crates/bench/src/bin/sweep_linkrate.rs:
