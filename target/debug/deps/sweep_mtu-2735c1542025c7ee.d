/root/repo/target/debug/deps/sweep_mtu-2735c1542025c7ee.d: crates/bench/src/bin/sweep_mtu.rs

/root/repo/target/debug/deps/sweep_mtu-2735c1542025c7ee: crates/bench/src/bin/sweep_mtu.rs

crates/bench/src/bin/sweep_mtu.rs:
