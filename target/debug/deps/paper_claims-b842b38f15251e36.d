/root/repo/target/debug/deps/paper_claims-b842b38f15251e36.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-b842b38f15251e36: tests/paper_claims.rs

tests/paper_claims.rs:
