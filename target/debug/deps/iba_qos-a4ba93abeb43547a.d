/root/repo/target/debug/deps/iba_qos-a4ba93abeb43547a.d: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/debug/deps/libiba_qos-a4ba93abeb43547a.rmeta: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

crates/qos/src/lib.rs:
crates/qos/src/cac.rs:
crates/qos/src/churn.rs:
crates/qos/src/connection.rs:
crates/qos/src/frame.rs:
crates/qos/src/manager.rs:
crates/qos/src/measure.rs:
