/root/repo/target/debug/deps/hostile_background-61d8fc9a49f8c263.d: tests/hostile_background.rs

/root/repo/target/debug/deps/hostile_background-61d8fc9a49f8c263: tests/hostile_background.rs

tests/hostile_background.rs:
