/root/repo/target/debug/deps/properties-2b0c08d3ebc2fa57.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2b0c08d3ebc2fa57.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
