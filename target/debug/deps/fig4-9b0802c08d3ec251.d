/root/repo/target/debug/deps/fig4-9b0802c08d3ec251.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-9b0802c08d3ec251: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
