/root/repo/target/debug/deps/table2-eb7fb59d347be98d.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-eb7fb59d347be98d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
