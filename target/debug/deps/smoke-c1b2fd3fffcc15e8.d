/root/repo/target/debug/deps/smoke-c1b2fd3fffcc15e8.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-c1b2fd3fffcc15e8: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
