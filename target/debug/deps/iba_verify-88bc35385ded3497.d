/root/repo/target/debug/deps/iba_verify-88bc35385ded3497.d: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs

/root/repo/target/debug/deps/libiba_verify-88bc35385ded3497.rlib: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs

/root/repo/target/debug/deps/libiba_verify-88bc35385ded3497.rmeta: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs

crates/verify/src/lib.rs:
crates/verify/src/concrete.rs:
crates/verify/src/crossval.rs:
crates/verify/src/quotient.rs:
crates/verify/src/sweep.rs:
