/root/repo/target/debug/deps/churn-b21f45c8e9d31fa9.d: crates/bench/src/bin/churn.rs

/root/repo/target/debug/deps/churn-b21f45c8e9d31fa9: crates/bench/src/bin/churn.rs

crates/bench/src/bin/churn.rs:
