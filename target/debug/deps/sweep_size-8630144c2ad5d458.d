/root/repo/target/debug/deps/sweep_size-8630144c2ad5d458.d: crates/bench/src/bin/sweep_size.rs

/root/repo/target/debug/deps/sweep_size-8630144c2ad5d458: crates/bench/src/bin/sweep_size.rs

crates/bench/src/bin/sweep_size.rs:
