/root/repo/target/debug/deps/ablation_oversend-4316440ba30ebda7.d: crates/bench/src/bin/ablation_oversend.rs

/root/repo/target/debug/deps/ablation_oversend-4316440ba30ebda7: crates/bench/src/bin/ablation_oversend.rs

crates/bench/src/bin/ablation_oversend.rs:
