/root/repo/target/debug/deps/iba_obs-986879e5c2497e80.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libiba_obs-986879e5c2497e80.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libiba_obs-986879e5c2497e80.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
crates/obs/src/trace.rs:
