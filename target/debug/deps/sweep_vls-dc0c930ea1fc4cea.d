/root/repo/target/debug/deps/sweep_vls-dc0c930ea1fc4cea.d: crates/bench/src/bin/sweep_vls.rs

/root/repo/target/debug/deps/sweep_vls-dc0c930ea1fc4cea: crates/bench/src/bin/sweep_vls.rs

crates/bench/src/bin/sweep_vls.rs:
