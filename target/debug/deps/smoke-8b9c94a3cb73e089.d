/root/repo/target/debug/deps/smoke-8b9c94a3cb73e089.d: crates/bench/src/bin/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-8b9c94a3cb73e089.rmeta: crates/bench/src/bin/smoke.rs Cargo.toml

crates/bench/src/bin/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
