/root/repo/target/debug/deps/ablation_alloc-8ccdb0064fd21b57.d: crates/bench/src/bin/ablation_alloc.rs

/root/repo/target/debug/deps/ablation_alloc-8ccdb0064fd21b57: crates/bench/src/bin/ablation_alloc.rs

crates/bench/src/bin/ablation_alloc.rs:
