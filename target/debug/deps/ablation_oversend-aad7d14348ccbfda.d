/root/repo/target/debug/deps/ablation_oversend-aad7d14348ccbfda.d: crates/bench/src/bin/ablation_oversend.rs

/root/repo/target/debug/deps/ablation_oversend-aad7d14348ccbfda: crates/bench/src/bin/ablation_oversend.rs

crates/bench/src/bin/ablation_oversend.rs:
