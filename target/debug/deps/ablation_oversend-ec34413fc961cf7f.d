/root/repo/target/debug/deps/ablation_oversend-ec34413fc961cf7f.d: crates/bench/src/bin/ablation_oversend.rs

/root/repo/target/debug/deps/ablation_oversend-ec34413fc961cf7f: crates/bench/src/bin/ablation_oversend.rs

crates/bench/src/bin/ablation_oversend.rs:
