/root/repo/target/debug/deps/paper_claims-83d8389aa8fd0180.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-83d8389aa8fd0180.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
