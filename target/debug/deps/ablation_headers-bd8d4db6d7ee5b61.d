/root/repo/target/debug/deps/ablation_headers-bd8d4db6d7ee5b61.d: crates/bench/src/bin/ablation_headers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_headers-bd8d4db6d7ee5b61.rmeta: crates/bench/src/bin/ablation_headers.rs Cargo.toml

crates/bench/src/bin/ablation_headers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
