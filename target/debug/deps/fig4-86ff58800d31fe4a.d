/root/repo/target/debug/deps/fig4-86ff58800d31fe4a.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-86ff58800d31fe4a: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
