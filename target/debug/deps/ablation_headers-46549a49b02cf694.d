/root/repo/target/debug/deps/ablation_headers-46549a49b02cf694.d: crates/bench/src/bin/ablation_headers.rs

/root/repo/target/debug/deps/ablation_headers-46549a49b02cf694: crates/bench/src/bin/ablation_headers.rs

crates/bench/src/bin/ablation_headers.rs:
