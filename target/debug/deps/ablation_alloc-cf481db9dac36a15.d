/root/repo/target/debug/deps/ablation_alloc-cf481db9dac36a15.d: crates/bench/src/bin/ablation_alloc.rs

/root/repo/target/debug/deps/ablation_alloc-cf481db9dac36a15: crates/bench/src/bin/ablation_alloc.rs

crates/bench/src/bin/ablation_alloc.rs:
