/root/repo/target/debug/deps/iba_bench-b76d8be9cb1c242b.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libiba_bench-b76d8be9cb1c242b.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libiba_bench-b76d8be9cb1c242b.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
