/root/repo/target/debug/deps/table1-6d4b344b2490c042.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-6d4b344b2490c042: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
