/root/repo/target/debug/deps/fig4-f7255e7a3d5d947c.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-f7255e7a3d5d947c: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
