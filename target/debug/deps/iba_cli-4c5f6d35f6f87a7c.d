/root/repo/target/debug/deps/iba_cli-4c5f6d35f6f87a7c.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/iba_cli-4c5f6d35f6f87a7c: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
