/root/repo/target/debug/deps/ablation_headers-62a45ea759e730bc.d: crates/bench/src/bin/ablation_headers.rs

/root/repo/target/debug/deps/ablation_headers-62a45ea759e730bc: crates/bench/src/bin/ablation_headers.rs

crates/bench/src/bin/ablation_headers.rs:
