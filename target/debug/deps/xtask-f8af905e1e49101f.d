/root/repo/target/debug/deps/xtask-f8af905e1e49101f.d: crates/xtask/src/lib.rs

/root/repo/target/debug/deps/xtask-f8af905e1e49101f: crates/xtask/src/lib.rs

crates/xtask/src/lib.rs:
