/root/repo/target/debug/deps/table1-af1d3cd4f65d039a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-af1d3cd4f65d039a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
