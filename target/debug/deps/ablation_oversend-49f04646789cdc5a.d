/root/repo/target/debug/deps/ablation_oversend-49f04646789cdc5a.d: crates/bench/src/bin/ablation_oversend.rs Cargo.toml

/root/repo/target/debug/deps/libablation_oversend-49f04646789cdc5a.rmeta: crates/bench/src/bin/ablation_oversend.rs Cargo.toml

crates/bench/src/bin/ablation_oversend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
