/root/repo/target/debug/deps/infiniband_qos-5a191488ffd9e948.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libinfiniband_qos-5a191488ffd9e948.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
