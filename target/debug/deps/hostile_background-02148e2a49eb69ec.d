/root/repo/target/debug/deps/hostile_background-02148e2a49eb69ec.d: tests/hostile_background.rs

/root/repo/target/debug/deps/hostile_background-02148e2a49eb69ec: tests/hostile_background.rs

tests/hostile_background.rs:
