/root/repo/target/debug/deps/iba_sim-8836b12bc14200ee.d: crates/sim/src/lib.rs crates/sim/src/buffer.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fabric.rs crates/sim/src/invariants.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libiba_sim-8836b12bc14200ee.rmeta: crates/sim/src/lib.rs crates/sim/src/buffer.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fabric.rs crates/sim/src/invariants.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/buffer.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fabric.rs:
crates/sim/src/invariants.rs:
crates/sim/src/packet.rs:
crates/sim/src/port.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
