/root/repo/target/debug/deps/iba_harness-2e75b47544785cab.d: crates/harness/src/lib.rs crates/harness/src/engine.rs crates/harness/src/experiment.rs crates/harness/src/sweep.rs

/root/repo/target/debug/deps/libiba_harness-2e75b47544785cab.rlib: crates/harness/src/lib.rs crates/harness/src/engine.rs crates/harness/src/experiment.rs crates/harness/src/sweep.rs

/root/repo/target/debug/deps/libiba_harness-2e75b47544785cab.rmeta: crates/harness/src/lib.rs crates/harness/src/engine.rs crates/harness/src/experiment.rs crates/harness/src/sweep.rs

crates/harness/src/lib.rs:
crates/harness/src/engine.rs:
crates/harness/src/experiment.rs:
crates/harness/src/sweep.rs:
