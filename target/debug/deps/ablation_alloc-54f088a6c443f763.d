/root/repo/target/debug/deps/ablation_alloc-54f088a6c443f763.d: crates/bench/src/bin/ablation_alloc.rs

/root/repo/target/debug/deps/ablation_alloc-54f088a6c443f763: crates/bench/src/bin/ablation_alloc.rs

crates/bench/src/bin/ablation_alloc.rs:
