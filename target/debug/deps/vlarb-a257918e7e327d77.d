/root/repo/target/debug/deps/vlarb-a257918e7e327d77.d: crates/bench/benches/vlarb.rs Cargo.toml

/root/repo/target/debug/deps/libvlarb-a257918e7e327d77.rmeta: crates/bench/benches/vlarb.rs Cargo.toml

crates/bench/benches/vlarb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
