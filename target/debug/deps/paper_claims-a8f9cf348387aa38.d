/root/repo/target/debug/deps/paper_claims-a8f9cf348387aa38.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-a8f9cf348387aa38: tests/paper_claims.rs

tests/paper_claims.rs:
