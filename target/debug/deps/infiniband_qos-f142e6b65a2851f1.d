/root/repo/target/debug/deps/infiniband_qos-f142e6b65a2851f1.d: src/lib.rs

/root/repo/target/debug/deps/libinfiniband_qos-f142e6b65a2851f1.rlib: src/lib.rs

/root/repo/target/debug/deps/libinfiniband_qos-f142e6b65a2851f1.rmeta: src/lib.rs

src/lib.rs:
