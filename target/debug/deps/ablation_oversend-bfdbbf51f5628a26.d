/root/repo/target/debug/deps/ablation_oversend-bfdbbf51f5628a26.d: crates/bench/src/bin/ablation_oversend.rs

/root/repo/target/debug/deps/ablation_oversend-bfdbbf51f5628a26: crates/bench/src/bin/ablation_oversend.rs

crates/bench/src/bin/ablation_oversend.rs:
