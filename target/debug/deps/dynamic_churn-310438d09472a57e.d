/root/repo/target/debug/deps/dynamic_churn-310438d09472a57e.d: tests/dynamic_churn.rs

/root/repo/target/debug/deps/dynamic_churn-310438d09472a57e: tests/dynamic_churn.rs

tests/dynamic_churn.rs:
