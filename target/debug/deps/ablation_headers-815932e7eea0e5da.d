/root/repo/target/debug/deps/ablation_headers-815932e7eea0e5da.d: crates/bench/src/bin/ablation_headers.rs

/root/repo/target/debug/deps/ablation_headers-815932e7eea0e5da: crates/bench/src/bin/ablation_headers.rs

crates/bench/src/bin/ablation_headers.rs:
