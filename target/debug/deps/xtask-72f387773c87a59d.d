/root/repo/target/debug/deps/xtask-72f387773c87a59d.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/xtask-72f387773c87a59d: crates/xtask/src/main.rs

crates/xtask/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
