/root/repo/target/debug/deps/sweep_size-0641d2c084fd62bb.d: crates/bench/src/bin/sweep_size.rs

/root/repo/target/debug/deps/sweep_size-0641d2c084fd62bb: crates/bench/src/bin/sweep_size.rs

crates/bench/src/bin/sweep_size.rs:
