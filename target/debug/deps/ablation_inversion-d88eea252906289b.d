/root/repo/target/debug/deps/ablation_inversion-d88eea252906289b.d: crates/bench/src/bin/ablation_inversion.rs

/root/repo/target/debug/deps/ablation_inversion-d88eea252906289b: crates/bench/src/bin/ablation_inversion.rs

crates/bench/src/bin/ablation_inversion.rs:
