/root/repo/target/debug/deps/table2-f6ab35d1a075cc0d.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-f6ab35d1a075cc0d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
