/root/repo/target/debug/deps/end_to_end-14d0d3e1ad4a32ee.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-14d0d3e1ad4a32ee.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
