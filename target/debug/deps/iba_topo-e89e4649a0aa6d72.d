/root/repo/target/debug/deps/iba_topo-e89e4649a0aa6d72.d: crates/topo/src/lib.rs crates/topo/src/dot.rs crates/topo/src/graph.rs crates/topo/src/irregular.rs crates/topo/src/regular.rs crates/topo/src/updown.rs crates/topo/src/validate.rs

/root/repo/target/debug/deps/libiba_topo-e89e4649a0aa6d72.rlib: crates/topo/src/lib.rs crates/topo/src/dot.rs crates/topo/src/graph.rs crates/topo/src/irregular.rs crates/topo/src/regular.rs crates/topo/src/updown.rs crates/topo/src/validate.rs

/root/repo/target/debug/deps/libiba_topo-e89e4649a0aa6d72.rmeta: crates/topo/src/lib.rs crates/topo/src/dot.rs crates/topo/src/graph.rs crates/topo/src/irregular.rs crates/topo/src/regular.rs crates/topo/src/updown.rs crates/topo/src/validate.rs

crates/topo/src/lib.rs:
crates/topo/src/dot.rs:
crates/topo/src/graph.rs:
crates/topo/src/irregular.rs:
crates/topo/src/regular.rs:
crates/topo/src/updown.rs:
crates/topo/src/validate.rs:
