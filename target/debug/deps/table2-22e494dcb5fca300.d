/root/repo/target/debug/deps/table2-22e494dcb5fca300.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-22e494dcb5fca300: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
