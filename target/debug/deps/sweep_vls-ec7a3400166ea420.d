/root/repo/target/debug/deps/sweep_vls-ec7a3400166ea420.d: crates/bench/src/bin/sweep_vls.rs

/root/repo/target/debug/deps/sweep_vls-ec7a3400166ea420: crates/bench/src/bin/sweep_vls.rs

crates/bench/src/bin/sweep_vls.rs:
