/root/repo/target/debug/deps/hostile_background-71c9883d7871637e.d: tests/hostile_background.rs Cargo.toml

/root/repo/target/debug/deps/libhostile_background-71c9883d7871637e.rmeta: tests/hostile_background.rs Cargo.toml

tests/hostile_background.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
