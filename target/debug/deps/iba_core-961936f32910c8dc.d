/root/repo/target/debug/deps/iba_core-961936f32910c8dc.d: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/bitrev.rs crates/core/src/defrag.rs crates/core/src/distance.rs crates/core/src/entry.rs crates/core/src/eset.rs crates/core/src/invariants.rs crates/core/src/model.rs crates/core/src/rng.rs crates/core/src/sequence.rs crates/core/src/sl.rs crates/core/src/table.rs crates/core/src/vlarb.rs crates/core/src/weight.rs crates/core/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libiba_core-961936f32910c8dc.rmeta: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/bitrev.rs crates/core/src/defrag.rs crates/core/src/distance.rs crates/core/src/entry.rs crates/core/src/eset.rs crates/core/src/invariants.rs crates/core/src/model.rs crates/core/src/rng.rs crates/core/src/sequence.rs crates/core/src/sl.rs crates/core/src/table.rs crates/core/src/vlarb.rs crates/core/src/weight.rs crates/core/src/wire.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/alloc.rs:
crates/core/src/bitrev.rs:
crates/core/src/defrag.rs:
crates/core/src/distance.rs:
crates/core/src/entry.rs:
crates/core/src/eset.rs:
crates/core/src/invariants.rs:
crates/core/src/model.rs:
crates/core/src/rng.rs:
crates/core/src/sequence.rs:
crates/core/src/sl.rs:
crates/core/src/table.rs:
crates/core/src/vlarb.rs:
crates/core/src/weight.rs:
crates/core/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
