/root/repo/target/debug/deps/churn-8f9ef5eda3c3d072.d: crates/bench/src/bin/churn.rs

/root/repo/target/debug/deps/churn-8f9ef5eda3c3d072: crates/bench/src/bin/churn.rs

crates/bench/src/bin/churn.rs:
