/root/repo/target/debug/deps/sweep_size-fc1b176f6876ddbc.d: crates/bench/src/bin/sweep_size.rs

/root/repo/target/debug/deps/sweep_size-fc1b176f6876ddbc: crates/bench/src/bin/sweep_size.rs

crates/bench/src/bin/sweep_size.rs:
