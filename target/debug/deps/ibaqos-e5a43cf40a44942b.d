/root/repo/target/debug/deps/ibaqos-e5a43cf40a44942b.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ibaqos-e5a43cf40a44942b: crates/cli/src/main.rs

crates/cli/src/main.rs:
