/root/repo/target/debug/deps/iba_bench-1155236a2635f196.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libiba_bench-1155236a2635f196.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libiba_bench-1155236a2635f196.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
