/root/repo/target/debug/deps/smoke-c4827be9bf41002d.d: crates/bench/src/bin/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-c4827be9bf41002d.rmeta: crates/bench/src/bin/smoke.rs Cargo.toml

crates/bench/src/bin/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
