/root/repo/target/debug/deps/ablation_oversend-162813eea96ffe2b.d: crates/bench/src/bin/ablation_oversend.rs

/root/repo/target/debug/deps/ablation_oversend-162813eea96ffe2b: crates/bench/src/bin/ablation_oversend.rs

crates/bench/src/bin/ablation_oversend.rs:
