/root/repo/target/debug/deps/iba_topo-410398eb9527d702.d: crates/topo/src/lib.rs crates/topo/src/dot.rs crates/topo/src/graph.rs crates/topo/src/irregular.rs crates/topo/src/regular.rs crates/topo/src/updown.rs crates/topo/src/validate.rs

/root/repo/target/debug/deps/libiba_topo-410398eb9527d702.rmeta: crates/topo/src/lib.rs crates/topo/src/dot.rs crates/topo/src/graph.rs crates/topo/src/irregular.rs crates/topo/src/regular.rs crates/topo/src/updown.rs crates/topo/src/validate.rs

crates/topo/src/lib.rs:
crates/topo/src/dot.rs:
crates/topo/src/graph.rs:
crates/topo/src/irregular.rs:
crates/topo/src/regular.rs:
crates/topo/src/updown.rs:
crates/topo/src/validate.rs:
