/root/repo/target/debug/deps/iba_qos-de50679753c42b52.d: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/debug/deps/libiba_qos-de50679753c42b52.rlib: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

/root/repo/target/debug/deps/libiba_qos-de50679753c42b52.rmeta: crates/qos/src/lib.rs crates/qos/src/cac.rs crates/qos/src/churn.rs crates/qos/src/connection.rs crates/qos/src/frame.rs crates/qos/src/manager.rs crates/qos/src/measure.rs

crates/qos/src/lib.rs:
crates/qos/src/cac.rs:
crates/qos/src/churn.rs:
crates/qos/src/connection.rs:
crates/qos/src/frame.rs:
crates/qos/src/manager.rs:
crates/qos/src/measure.rs:
