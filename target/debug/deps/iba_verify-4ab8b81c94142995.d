/root/repo/target/debug/deps/iba_verify-4ab8b81c94142995.d: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libiba_verify-4ab8b81c94142995.rmeta: crates/verify/src/lib.rs crates/verify/src/concrete.rs crates/verify/src/crossval.rs crates/verify/src/quotient.rs crates/verify/src/sweep.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/concrete.rs:
crates/verify/src/crossval.rs:
crates/verify/src/quotient.rs:
crates/verify/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
