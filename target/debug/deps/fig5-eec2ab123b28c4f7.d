/root/repo/target/debug/deps/fig5-eec2ab123b28c4f7.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-eec2ab123b28c4f7: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
