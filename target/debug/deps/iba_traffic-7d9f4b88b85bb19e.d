/root/repo/target/debug/deps/iba_traffic-7d9f4b88b85bb19e.d: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

/root/repo/target/debug/deps/libiba_traffic-7d9f4b88b85bb19e.rlib: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

/root/repo/target/debug/deps/libiba_traffic-7d9f4b88b85bb19e.rmeta: crates/traffic/src/lib.rs crates/traffic/src/besteffort.rs crates/traffic/src/cbr.rs crates/traffic/src/hotspot.rs crates/traffic/src/request.rs crates/traffic/src/vbr.rs crates/traffic/src/workload.rs

crates/traffic/src/lib.rs:
crates/traffic/src/besteffort.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/hotspot.rs:
crates/traffic/src/request.rs:
crates/traffic/src/vbr.rs:
crates/traffic/src/workload.rs:
