/root/repo/target/debug/deps/infiniband_qos-75791882b1a3fc32.d: src/lib.rs

/root/repo/target/debug/deps/libinfiniband_qos-75791882b1a3fc32.rlib: src/lib.rs

/root/repo/target/debug/deps/libinfiniband_qos-75791882b1a3fc32.rmeta: src/lib.rs

src/lib.rs:
