/root/repo/target/debug/deps/iba_verify-77087bc61a663922.d: crates/verify/src/main.rs

/root/repo/target/debug/deps/iba_verify-77087bc61a663922: crates/verify/src/main.rs

crates/verify/src/main.rs:
