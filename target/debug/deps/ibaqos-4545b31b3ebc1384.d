/root/repo/target/debug/deps/ibaqos-4545b31b3ebc1384.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libibaqos-4545b31b3ebc1384.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
