/root/repo/target/debug/deps/ablation_headers-89348dfcd99337ff.d: crates/bench/src/bin/ablation_headers.rs

/root/repo/target/debug/deps/ablation_headers-89348dfcd99337ff: crates/bench/src/bin/ablation_headers.rs

crates/bench/src/bin/ablation_headers.rs:
