/root/repo/target/debug/deps/fig6-2ffaa8d02c715885.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-2ffaa8d02c715885.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
