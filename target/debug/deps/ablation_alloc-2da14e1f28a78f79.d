/root/repo/target/debug/deps/ablation_alloc-2da14e1f28a78f79.d: crates/bench/src/bin/ablation_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libablation_alloc-2da14e1f28a78f79.rmeta: crates/bench/src/bin/ablation_alloc.rs Cargo.toml

crates/bench/src/bin/ablation_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
