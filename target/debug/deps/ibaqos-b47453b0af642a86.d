/root/repo/target/debug/deps/ibaqos-b47453b0af642a86.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libibaqos-b47453b0af642a86.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
