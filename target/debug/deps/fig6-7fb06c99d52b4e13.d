/root/repo/target/debug/deps/fig6-7fb06c99d52b4e13.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-7fb06c99d52b4e13: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
