/root/repo/target/debug/deps/collapsed_vls-758dce4ff2964230.d: tests/collapsed_vls.rs Cargo.toml

/root/repo/target/debug/deps/libcollapsed_vls-758dce4ff2964230.rmeta: tests/collapsed_vls.rs Cargo.toml

tests/collapsed_vls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
