/root/repo/target/debug/deps/dynamic_churn-f91f90984a95b671.d: tests/dynamic_churn.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_churn-f91f90984a95b671.rmeta: tests/dynamic_churn.rs Cargo.toml

tests/dynamic_churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
