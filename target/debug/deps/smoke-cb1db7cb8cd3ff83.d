/root/repo/target/debug/deps/smoke-cb1db7cb8cd3ff83.d: crates/bench/src/bin/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-cb1db7cb8cd3ff83.rmeta: crates/bench/src/bin/smoke.rs Cargo.toml

crates/bench/src/bin/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
