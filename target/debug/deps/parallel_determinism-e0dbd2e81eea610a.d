/root/repo/target/debug/deps/parallel_determinism-e0dbd2e81eea610a.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-e0dbd2e81eea610a: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
