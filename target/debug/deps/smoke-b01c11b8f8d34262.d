/root/repo/target/debug/deps/smoke-b01c11b8f8d34262.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-b01c11b8f8d34262: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
