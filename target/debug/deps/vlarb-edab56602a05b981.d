/root/repo/target/debug/deps/vlarb-edab56602a05b981.d: crates/bench/benches/vlarb.rs Cargo.toml

/root/repo/target/debug/deps/libvlarb-edab56602a05b981.rmeta: crates/bench/benches/vlarb.rs Cargo.toml

crates/bench/benches/vlarb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
