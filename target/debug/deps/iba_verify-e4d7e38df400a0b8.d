/root/repo/target/debug/deps/iba_verify-e4d7e38df400a0b8.d: crates/verify/src/main.rs

/root/repo/target/debug/deps/iba_verify-e4d7e38df400a0b8: crates/verify/src/main.rs

crates/verify/src/main.rs:
