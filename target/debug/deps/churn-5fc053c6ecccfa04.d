/root/repo/target/debug/deps/churn-5fc053c6ecccfa04.d: crates/bench/src/bin/churn.rs

/root/repo/target/debug/deps/churn-5fc053c6ecccfa04: crates/bench/src/bin/churn.rs

crates/bench/src/bin/churn.rs:
