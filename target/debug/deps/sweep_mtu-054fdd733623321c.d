/root/repo/target/debug/deps/sweep_mtu-054fdd733623321c.d: crates/bench/src/bin/sweep_mtu.rs

/root/repo/target/debug/deps/sweep_mtu-054fdd733623321c: crates/bench/src/bin/sweep_mtu.rs

crates/bench/src/bin/sweep_mtu.rs:
