/root/repo/target/debug/deps/ablation_inversion-c16dd8c2f56d9c8e.d: crates/bench/src/bin/ablation_inversion.rs

/root/repo/target/debug/deps/ablation_inversion-c16dd8c2f56d9c8e: crates/bench/src/bin/ablation_inversion.rs

crates/bench/src/bin/ablation_inversion.rs:
