/root/repo/target/debug/deps/fig5-f99070f775df697b.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-f99070f775df697b: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
