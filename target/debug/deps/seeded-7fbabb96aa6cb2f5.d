/root/repo/target/debug/deps/seeded-7fbabb96aa6cb2f5.d: crates/xtask/tests/seeded.rs

/root/repo/target/debug/deps/seeded-7fbabb96aa6cb2f5: crates/xtask/tests/seeded.rs

crates/xtask/tests/seeded.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
