/root/repo/target/debug/deps/hostile_background-e8904bfe7fc0bd4e.d: tests/hostile_background.rs Cargo.toml

/root/repo/target/debug/deps/libhostile_background-e8904bfe7fc0bd4e.rmeta: tests/hostile_background.rs Cargo.toml

tests/hostile_background.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
