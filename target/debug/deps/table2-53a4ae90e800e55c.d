/root/repo/target/debug/deps/table2-53a4ae90e800e55c.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-53a4ae90e800e55c.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
