/root/repo/target/debug/deps/ibaqos-9b9296db147e960f.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ibaqos-9b9296db147e960f: crates/cli/src/main.rs

crates/cli/src/main.rs:
