/root/repo/target/debug/deps/ibaqos-31034ae80f477e25.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ibaqos-31034ae80f477e25: crates/cli/src/main.rs

crates/cli/src/main.rs:
