/root/repo/target/debug/deps/iba_obs-779c0b58979a759f.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libiba_obs-779c0b58979a759f.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
crates/obs/src/trace.rs:
