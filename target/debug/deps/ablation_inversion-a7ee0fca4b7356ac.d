/root/repo/target/debug/deps/ablation_inversion-a7ee0fca4b7356ac.d: crates/bench/src/bin/ablation_inversion.rs

/root/repo/target/debug/deps/ablation_inversion-a7ee0fca4b7356ac: crates/bench/src/bin/ablation_inversion.rs

crates/bench/src/bin/ablation_inversion.rs:
