/root/repo/target/debug/deps/sweep_vls-6436a7193c90c2c4.d: crates/bench/src/bin/sweep_vls.rs

/root/repo/target/debug/deps/sweep_vls-6436a7193c90c2c4: crates/bench/src/bin/sweep_vls.rs

crates/bench/src/bin/sweep_vls.rs:
