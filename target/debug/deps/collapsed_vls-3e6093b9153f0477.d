/root/repo/target/debug/deps/collapsed_vls-3e6093b9153f0477.d: tests/collapsed_vls.rs

/root/repo/target/debug/deps/collapsed_vls-3e6093b9153f0477: tests/collapsed_vls.rs

tests/collapsed_vls.rs:
