/root/repo/target/debug/deps/sweep_vls-7a604aa6b7787bb5.d: crates/bench/src/bin/sweep_vls.rs

/root/repo/target/debug/deps/sweep_vls-7a604aa6b7787bb5: crates/bench/src/bin/sweep_vls.rs

crates/bench/src/bin/sweep_vls.rs:
