/root/repo/target/debug/deps/sweep_linkrate-f182e0b733b6b363.d: crates/bench/src/bin/sweep_linkrate.rs

/root/repo/target/debug/deps/sweep_linkrate-f182e0b733b6b363: crates/bench/src/bin/sweep_linkrate.rs

crates/bench/src/bin/sweep_linkrate.rs:
