/root/repo/target/debug/deps/iba_cli-769b3f49105be787.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libiba_cli-769b3f49105be787.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libiba_cli-769b3f49105be787.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
