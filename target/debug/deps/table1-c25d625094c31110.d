/root/repo/target/debug/deps/table1-c25d625094c31110.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-c25d625094c31110.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
