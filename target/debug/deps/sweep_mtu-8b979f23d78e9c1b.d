/root/repo/target/debug/deps/sweep_mtu-8b979f23d78e9c1b.d: crates/bench/src/bin/sweep_mtu.rs

/root/repo/target/debug/deps/sweep_mtu-8b979f23d78e9c1b: crates/bench/src/bin/sweep_mtu.rs

crates/bench/src/bin/sweep_mtu.rs:
