/root/repo/target/debug/deps/sim-dfc25256671c99a3.d: crates/bench/benches/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsim-dfc25256671c99a3.rmeta: crates/bench/benches/sim.rs Cargo.toml

crates/bench/benches/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
