/root/repo/target/debug/deps/collapsed_vls-ddb3d4f0946c350e.d: tests/collapsed_vls.rs

/root/repo/target/debug/deps/collapsed_vls-ddb3d4f0946c350e: tests/collapsed_vls.rs

tests/collapsed_vls.rs:
