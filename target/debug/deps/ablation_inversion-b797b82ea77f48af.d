/root/repo/target/debug/deps/ablation_inversion-b797b82ea77f48af.d: crates/bench/src/bin/ablation_inversion.rs

/root/repo/target/debug/deps/ablation_inversion-b797b82ea77f48af: crates/bench/src/bin/ablation_inversion.rs

crates/bench/src/bin/ablation_inversion.rs:
