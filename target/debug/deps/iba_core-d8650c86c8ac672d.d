/root/repo/target/debug/deps/iba_core-d8650c86c8ac672d.d: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/bitrev.rs crates/core/src/defrag.rs crates/core/src/distance.rs crates/core/src/entry.rs crates/core/src/eset.rs crates/core/src/invariants.rs crates/core/src/model.rs crates/core/src/rng.rs crates/core/src/sequence.rs crates/core/src/sl.rs crates/core/src/table.rs crates/core/src/vlarb.rs crates/core/src/weight.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libiba_core-d8650c86c8ac672d.rlib: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/bitrev.rs crates/core/src/defrag.rs crates/core/src/distance.rs crates/core/src/entry.rs crates/core/src/eset.rs crates/core/src/invariants.rs crates/core/src/model.rs crates/core/src/rng.rs crates/core/src/sequence.rs crates/core/src/sl.rs crates/core/src/table.rs crates/core/src/vlarb.rs crates/core/src/weight.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libiba_core-d8650c86c8ac672d.rmeta: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/bitrev.rs crates/core/src/defrag.rs crates/core/src/distance.rs crates/core/src/entry.rs crates/core/src/eset.rs crates/core/src/invariants.rs crates/core/src/model.rs crates/core/src/rng.rs crates/core/src/sequence.rs crates/core/src/sl.rs crates/core/src/table.rs crates/core/src/vlarb.rs crates/core/src/weight.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/alloc.rs:
crates/core/src/bitrev.rs:
crates/core/src/defrag.rs:
crates/core/src/distance.rs:
crates/core/src/entry.rs:
crates/core/src/eset.rs:
crates/core/src/invariants.rs:
crates/core/src/model.rs:
crates/core/src/rng.rs:
crates/core/src/sequence.rs:
crates/core/src/sl.rs:
crates/core/src/table.rs:
crates/core/src/vlarb.rs:
crates/core/src/weight.rs:
crates/core/src/wire.rs:
