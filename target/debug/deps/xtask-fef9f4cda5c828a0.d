/root/repo/target/debug/deps/xtask-fef9f4cda5c828a0.d: crates/xtask/src/lib.rs

/root/repo/target/debug/deps/libxtask-fef9f4cda5c828a0.rlib: crates/xtask/src/lib.rs

/root/repo/target/debug/deps/libxtask-fef9f4cda5c828a0.rmeta: crates/xtask/src/lib.rs

crates/xtask/src/lib.rs:
