/root/repo/target/debug/deps/fig5-694ee95c8fbc490c.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-694ee95c8fbc490c: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
