/root/repo/target/debug/deps/xtask-6ec48d51be2dc9da.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/xtask-6ec48d51be2dc9da: crates/xtask/src/main.rs

crates/xtask/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
