/root/repo/target/debug/deps/iba_bench-77917909f7ef7057.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libiba_bench-77917909f7ef7057.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libiba_bench-77917909f7ef7057.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
