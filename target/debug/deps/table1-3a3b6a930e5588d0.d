/root/repo/target/debug/deps/table1-3a3b6a930e5588d0.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3a3b6a930e5588d0: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
