/root/repo/target/debug/deps/end_to_end-980b6a8d20d0d474.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-980b6a8d20d0d474: tests/end_to_end.rs

tests/end_to_end.rs:
