/root/repo/target/debug/deps/paper_claims-d1b78027976411a2.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-d1b78027976411a2.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-Dwarnings__CLIPPY_HACKERY__-Dclippy::dbg_macro__CLIPPY_HACKERY__-Dclippy::todo__CLIPPY_HACKERY__-Dclippy::unimplemented__CLIPPY_HACKERY__-Dclippy::mem_forget__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
