/root/repo/target/debug/deps/golden_cli-5836dcda4af8b4bc.d: tests/golden_cli.rs

/root/repo/target/debug/deps/golden_cli-5836dcda4af8b4bc: tests/golden_cli.rs

tests/golden_cli.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
