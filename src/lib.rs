//! # infiniband-qos
//!
//! A complete reproduction of *Alfaro, Sánchez, Duato — "A New Proposal
//! to Fill in the InfiniBand Arbitration Tables" (ICPP 2003)*: the
//! bit-reversal arbitration-table filling algorithm, a full InfiniBand
//! fabric simulator, and the end-to-end QoS provisioning frame the
//! paper evaluates.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] (`iba-core`) — arbitration tables, the filling and
//!   defragmentation algorithms, service levels, the WRR engine;
//! * [`topo`] (`iba-topo`) — random irregular topologies and
//!   deadlock-free up*/down* routing;
//! * [`sim`] (`iba-sim`) — the discrete-event fabric simulator;
//! * [`traffic`] (`iba-traffic`) — CBR/VBR sources and workloads;
//! * [`qos`] (`iba-qos`) — admission control and the global QoS frame;
//! * [`stats`] (`iba-stats`) — delay/jitter/utilisation measurement;
//! * [`harness`] (`iba-harness`) — the deterministic parallel
//!   experiment engine behind the sweeps and bench binaries.
//!
//! ## Quickstart
//!
//! ```
//! use infiniband_qos::prelude::*;
//!
//! // A random irregular fabric: 4 switches, 16 hosts.
//! let topo = generate(IrregularConfig::with_switches(4, 7));
//! let routing = compute_routing(&topo);
//!
//! // The paper's QoS frame with its Table 1 service levels.
//! let mut frame = QosFrame::new(
//!     topo,
//!     routing,
//!     SlTable::paper_table1(),
//!     SimConfig::paper_default(256),
//! );
//!
//! // Ask for a connection: 8 Mbps with a latency guarantee.
//! let req = frame
//!     .manager
//!     .classify_request(0, HostId(0), HostId(9), 2_000_000, 8.0, 256)
//!     .expect("classifiable");
//! let id = frame.manager.request(&req).expect("admitted");
//! assert!(frame.manager.connection(id).unwrap().deadline > 0);
//!
//! // Simulate it.
//! let (mut fabric, mut obs) = frame.build_fabric(1, None);
//! fabric.run_until(3_000_000, &mut obs);
//! assert!(obs.qos_packets > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use iba_core as core;
pub use iba_harness as harness;
pub use iba_qos as qos;
pub use iba_sim as sim;
pub use iba_stats as stats;
pub use iba_topo as topo;
pub use iba_traffic as traffic;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use iba_core::{
        AllocatorKind, Distance, HighPriorityTable, ServiceLevel, SlTable, SlToVlMap, TrafficClass,
        VirtualLane, VlArbConfig, VlArbEngine,
    };
    pub use iba_qos::{QosFrame, QosManager, QosObserver, RejectReason};
    pub use iba_sim::{Arrival, Fabric, FlowSpec, NodeId, SimConfig};
    pub use iba_stats::{DelayCollector, JitterCollector, Table};
    pub use iba_topo::irregular::generate;
    pub use iba_topo::{HostId, IrregularConfig, SwitchId, Topology};
    pub use iba_traffic::besteffort::BackgroundConfig;
    pub use iba_traffic::{ConnectionRequest, RequestGenerator, WorkloadConfig};

    /// Computes up*/down* routing (alias of `iba_topo::updown::compute`).
    #[must_use]
    pub fn compute_routing(topo: &Topology) -> iba_topo::RoutingTable {
        iba_topo::updown::compute(topo)
    }
}
