//! # iba-traffic — traffic models for the QoS evaluation
//!
//! Generates the workloads of the paper's evaluation:
//!
//! * QoS **connection requests** drawn per service level from Table 1's
//!   distance / bandwidth strata ([`request`], [`workload`]);
//! * **CBR** packet flows for accepted connections ([`cbr`]);
//! * a periodic-envelope **VBR** extension ([`vbr`]) — the authors
//!   evaluated VBR traffic in their CCECE'02 companion paper;
//! * **best-effort background** (PBE/BE/CH) flows that live in the
//!   low-priority table ([`besteffort`]).
//!
//! This crate only *describes* traffic; admission is decided by
//! `iba-qos` and packet movement by `iba-sim`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod besteffort;
pub mod cbr;
pub mod hotspot;
pub mod request;
pub mod vbr;
pub mod workload;

pub use cbr::flow_for_connection;
pub use request::{deadline_for, ConnectionRequest, SERVICE_QUANTUM_CYCLES};
pub use workload::{RequestGenerator, WorkloadConfig};
