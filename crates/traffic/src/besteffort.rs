//! Best-effort background traffic (PBE / BE / CH), served from the
//! low-priority table. The paper reserves 20% of link bandwidth for
//! these classes and gives them no guarantees.

use iba_core::rng::SplitMix64;
use iba_core::{sl, ServiceLevel};
use iba_sim::{Arrival, FlowSpec};
use iba_topo::{HostId, Topology};

/// Configuration of the best-effort background.
#[derive(Clone, Copy, Debug)]
pub struct BackgroundConfig {
    /// Aggregate offered load per host, as a fraction of link capacity
    /// (the paper leaves 20% of capacity for these classes).
    pub load_fraction: f64,
    /// Packet size (bytes).
    pub packet_bytes: u32,
    /// Split between PBE : BE : CH (weights, normalised internally).
    pub class_mix: [f64; 3],
    /// RNG seed for destinations and phases.
    pub seed: u64,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            load_fraction: 0.15,
            packet_bytes: 256,
            class_mix: [2.0, 1.5, 0.5],
            seed: 0xBE57,
        }
    }
}

/// Builds one background flow per host and class: uniform random
/// destination, CBR at the class's share of the background load.
///
/// Flow ids start at `first_id` and increase densely.
#[must_use]
pub fn background_flows(
    topo: &Topology,
    config: &BackgroundConfig,
    first_id: u32,
) -> Vec<FlowSpec> {
    let mut rng = SplitMix64::seed_from_u64(config.seed);
    let n = topo.num_hosts();
    assert!(n >= 2, "background traffic needs at least two hosts");
    let mix_total: f64 = config.class_mix.iter().sum();
    let classes = [
        ServiceLevel::new(sl::SL_PBE).unwrap(),
        ServiceLevel::new(sl::SL_BE).unwrap(),
        ServiceLevel::new(sl::SL_CH).unwrap(),
    ];

    let mut flows = Vec::with_capacity(n * classes.len());
    let mut id = first_id;
    for src in topo.host_ids() {
        for (ci, &sl_id) in classes.iter().enumerate() {
            let share = config.load_fraction * config.class_mix[ci] / mix_total;
            if share <= 0.0 {
                continue;
            }
            // bytes/cycle -> interarrival in cycles.
            let interval = (f64::from(config.packet_bytes) / share).round().max(1.0) as u64;
            let dst = loop {
                let d = HostId(rng.gen_range(0..n as u16));
                if d != src {
                    break d;
                }
            };
            flows.push(FlowSpec {
                id,
                src,
                dst,
                sl: sl_id,
                packet_bytes: config.packet_bytes,
                arrival: Arrival::Cbr { interval },
                start: rng.gen_range(0..interval),
                stop: None,
            });
            id += 1;
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topo::irregular::{generate, IrregularConfig};

    #[test]
    fn one_flow_per_host_per_class() {
        let topo = generate(IrregularConfig::paper_default(1));
        let flows = background_flows(&topo, &BackgroundConfig::default(), 1000);
        assert_eq!(flows.len(), 64 * 3);
        assert_eq!(flows[0].id, 1000);
        assert_eq!(flows.last().unwrap().id, 1000 + 64 * 3 - 1);
    }

    #[test]
    fn aggregate_load_matches_fraction() {
        let topo = generate(IrregularConfig::paper_default(2));
        let cfg = BackgroundConfig {
            load_fraction: 0.2,
            ..Default::default()
        };
        let flows = background_flows(&topo, &cfg, 0);
        for src in topo.host_ids() {
            let load: f64 = flows
                .iter()
                .filter(|f| f.src == src)
                .map(FlowSpec::offered_load)
                .sum();
            assert!(
                (load - 0.2).abs() < 0.01,
                "host {src} offers {load} bytes/cycle"
            );
        }
    }

    #[test]
    fn never_self_addressed() {
        let topo = generate(IrregularConfig::paper_default(3));
        for f in background_flows(&topo, &BackgroundConfig::default(), 0) {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn classes_use_best_effort_sls() {
        let topo = generate(IrregularConfig::paper_default(4));
        for f in background_flows(&topo, &BackgroundConfig::default(), 0) {
            assert!(matches!(f.sl.raw(), 10..=12));
        }
    }
}
