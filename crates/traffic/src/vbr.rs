//! VBR traffic: a periodic-envelope variable bit rate source.
//!
//! The authors evaluated VBR (MPEG-like) traffic over their tables in a
//! companion paper (CCECE'02); this module provides the equivalent
//! generator: the flow's instantaneous rate follows a repeating envelope
//! around the declared mean, so the *mean* reservation still holds while
//! packets burst.

use crate::request::ConnectionRequest;
use iba_sim::{Arrival, FlowSpec};

/// Builds a VBR [`FlowSpec`]: the inter-packet gap cycles through a
/// pattern whose mean equals the CBR gap of the declared bandwidth,
/// with peak rate `burstiness ×` the mean (`burstiness >= 1`).
///
/// The envelope alternates a burst phase (gap / burstiness) and a quiet
/// phase chosen so the long-run mean gap is preserved.
#[must_use]
pub fn vbr_flow(req: &ConnectionRequest, burstiness: f64, phase: u64) -> FlowSpec {
    assert!(burstiness >= 1.0, "burstiness is a peak-to-mean ratio");
    let mean_gap = req.interarrival() as f64;
    // `n` packets at the peak rate, one long gap to restore the mean:
    // n*g_peak + g_quiet = (n+1)*mean_gap.
    let n = 4usize;
    let g_peak = (mean_gap / burstiness).round().max(1.0);
    let g_quiet = ((n as f64 + 1.0) * mean_gap - n as f64 * g_peak)
        .round()
        .max(1.0);
    let mut intervals = vec![g_peak as u64; n];
    intervals.push(g_quiet as u64);
    FlowSpec {
        id: req.id,
        src: req.src,
        dst: req.dst,
        sl: req.sl,
        packet_bytes: req.packet_bytes,
        arrival: Arrival::Pattern { intervals },
        start: phase % (mean_gap as u64).max(1),
        stop: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::{Distance, ServiceLevel};
    use iba_topo::HostId;

    fn req(mbps: f64) -> ConnectionRequest {
        ConnectionRequest {
            id: 1,
            src: HostId(0),
            dst: HostId(3),
            sl: ServiceLevel::new(5).unwrap(),
            distance: Distance::D32,
            mean_bw_mbps: mbps,
            packet_bytes: 256,
        }
    }

    #[test]
    fn mean_rate_is_preserved() {
        for burst in [1.0, 1.5, 2.0, 4.0] {
            let f = vbr_flow(&req(16.0), burst, 0);
            let cbr_gap = req(16.0).interarrival() as f64;
            let err = (f.arrival.mean_gap() - cbr_gap).abs() / cbr_gap;
            assert!(err < 0.01, "burst {burst}: mean gap off by {err}");
        }
    }

    #[test]
    fn burstiness_one_is_cbr_like() {
        let f = vbr_flow(&req(16.0), 1.0, 0);
        let Arrival::Pattern { intervals } = &f.arrival else {
            panic!()
        };
        let first = intervals[0];
        assert!(intervals.iter().all(|&i| i.abs_diff(first) <= 1));
    }

    #[test]
    fn peak_rate_scales() {
        let f = vbr_flow(&req(16.0), 4.0, 0);
        let Arrival::Pattern { intervals } = &f.arrival else {
            panic!()
        };
        let cbr_gap = req(16.0).interarrival();
        // Burst gaps are a quarter of the mean gap.
        assert_eq!(intervals[0], cbr_gap / 4);
        // The quiet gap restores the mean.
        assert!(*intervals.last().unwrap() > cbr_gap);
    }

    #[test]
    #[should_panic(expected = "peak-to-mean")]
    fn burstiness_below_one_rejected() {
        let _ = vbr_flow(&req(16.0), 0.5, 0);
    }
}
