//! Stress patterns beyond the paper's uniform workload: hotspot (all
//! hosts hammer one destination) and permutation traffic. Used by the
//! robustness tests — QoS guarantees must survive hostile best-effort
//! patterns.

use iba_core::rng::SplitMix64;
use iba_core::ServiceLevel;
use iba_sim::{Arrival, FlowSpec};
use iba_topo::{HostId, Topology};

/// One flow from every other host towards `target`, each offering
/// `load_fraction` of a link (so the hotspot port is oversubscribed
/// `(hosts-1) · load_fraction` times).
#[must_use]
pub fn hotspot_flows(
    topo: &Topology,
    target: HostId,
    sl: ServiceLevel,
    load_fraction: f64,
    packet_bytes: u32,
    first_id: u32,
) -> Vec<FlowSpec> {
    assert!(load_fraction > 0.0 && load_fraction <= 1.0);
    let interval = (f64::from(packet_bytes) / load_fraction).round().max(1.0) as u64;
    topo.host_ids()
        .filter(|&h| h != target)
        .enumerate()
        .map(|(k, src)| FlowSpec {
            id: first_id + k as u32,
            src,
            dst: target,
            sl,
            packet_bytes,
            arrival: Arrival::Cbr { interval },
            start: (k as u64 * 97) % interval,
            stop: None,
        })
        .collect()
}

/// A random permutation pattern: every host sends to exactly one other
/// host and receives from exactly one (no convergence anywhere).
#[must_use]
pub fn permutation_flows(
    topo: &Topology,
    sl: ServiceLevel,
    load_fraction: f64,
    packet_bytes: u32,
    seed: u64,
    first_id: u32,
) -> Vec<FlowSpec> {
    assert!(load_fraction > 0.0 && load_fraction <= 1.0);
    let n = topo.num_hosts();
    assert!(n >= 2);
    let mut rng = SplitMix64::seed_from_u64(seed);
    // A derangement-ish permutation: shuffle until no fixed points
    // (guaranteed to terminate quickly for n >= 2).
    let mut perm: Vec<u16> = (0..n as u16).collect();
    loop {
        rng.shuffle(&mut perm);
        if perm.iter().enumerate().all(|(i, &p)| i as u16 != p) {
            break;
        }
    }
    let interval = (f64::from(packet_bytes) / load_fraction).round().max(1.0) as u64;
    perm.into_iter()
        .enumerate()
        .map(|(src, dst)| FlowSpec {
            id: first_id + src as u32,
            src: HostId(src as u16),
            dst: HostId(dst),
            sl,
            packet_bytes,
            arrival: Arrival::Cbr { interval },
            start: (src as u64 * 131) % interval,
            stop: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topo::irregular::{generate, IrregularConfig};

    fn sl(i: u8) -> ServiceLevel {
        ServiceLevel::new(i).unwrap()
    }

    #[test]
    fn hotspot_covers_all_other_hosts() {
        let topo = generate(IrregularConfig::with_switches(4, 1));
        let flows = hotspot_flows(&topo, HostId(3), sl(11), 0.5, 256, 100);
        assert_eq!(flows.len(), topo.num_hosts() - 1);
        assert!(flows
            .iter()
            .all(|f| f.dst == HostId(3) && f.src != HostId(3)));
        // Aggregate oversubscription of the hotspot link.
        let total: f64 = flows.iter().map(FlowSpec::offered_load).sum();
        assert!(total > 7.0, "{total}");
    }

    #[test]
    fn permutation_is_a_derangement() {
        let topo = generate(IrregularConfig::with_switches(4, 2));
        let flows = permutation_flows(&topo, sl(11), 0.3, 256, 9, 0);
        assert_eq!(flows.len(), topo.num_hosts());
        let mut dst_seen = vec![false; topo.num_hosts()];
        for f in &flows {
            assert_ne!(f.src, f.dst, "fixed point");
            assert!(!std::mem::replace(&mut dst_seen[f.dst.index()], true));
        }
        assert!(dst_seen.iter().all(|&b| b), "not a permutation");
    }

    #[test]
    fn permutation_deterministic_by_seed() {
        let topo = generate(IrregularConfig::with_switches(4, 3));
        let a = permutation_flows(&topo, sl(10), 0.2, 256, 7, 0);
        let b = permutation_flows(&topo, sl(10), 0.2, 256, 7, 0);
        let pairs = |v: &[FlowSpec]| v.iter().map(|f| (f.src, f.dst)).collect::<Vec<_>>();
        assert_eq!(pairs(&a), pairs(&b));
    }

    #[test]
    fn load_fraction_sets_interval() {
        let topo = generate(IrregularConfig::with_switches(2, 4));
        let flows = hotspot_flows(&topo, HostId(0), sl(12), 0.25, 256, 0);
        for f in &flows {
            assert!((f.offered_load() - 0.25).abs() < 0.01);
        }
    }
}
