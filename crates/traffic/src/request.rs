//! Connection requests: what an application asks of the fabric.

use iba_core::{weight_for_bandwidth, Distance, ServiceLevel, Weight};
use iba_topo::HostId;

/// Worst-case cycles one high-priority table entry can consume before
/// the next entry is reached: maximum weight (255) times 64 bytes at one
/// byte per cycle.
pub const SERVICE_QUANTUM_CYCLES: u64 = 255 * 64;

/// The deadline (cycles) guaranteed to a connection of entry distance
/// `d` crossing `hops` arbitration stages: each stage serves the
/// connection's VL at least once every `d` entries, and an entry takes
/// at most [`SERVICE_QUANTUM_CYCLES`] to drain.
///
/// This is the inverse of the paper's "to request a maximum latency is
/// equivalent to requesting a sequence with a maximum distance between
/// two consecutive entries".
#[must_use]
pub fn deadline_for(distance: Distance, hops: usize) -> u64 {
    hops as u64 * distance.slots() as u64 * SERVICE_QUANTUM_CYCLES
}

/// The tightest permitted distance whose per-hop guarantee still meets a
/// requested end-to-end `deadline` over `hops` stages — the classifier
/// applications use when they think in time units rather than table
/// distances.
#[must_use]
pub fn distance_for_deadline(deadline: u64, hops: usize) -> Option<Distance> {
    let per_hop = deadline / (hops as u64 * SERVICE_QUANTUM_CYCLES);
    Distance::round_down(per_hop as usize)
}

/// The full guaranteed deadline, adding to the `d · quantum` spacing
/// bound the terms that come from whole-packet arbitration:
///
/// * every intervening table entry may overdraw its weight by one whole
///   packet ("always rounded up as a whole packet") — `d · packet` per
///   stage;
/// * at each stage the packet may find one non-preemptable packet in
///   service and must itself be transmitted — `2 · packet` per stage.
#[must_use]
pub fn deadline_with_transmission(distance: Distance, hops: usize, packet_bytes: u32) -> u64 {
    let per_stage = distance.slots() as u64 * (SERVICE_QUANTUM_CYCLES + u64::from(packet_bytes))
        + 2 * u64::from(packet_bytes);
    hops as u64 * per_stage
}

/// [`deadline_for`] on a faster link: a `bytes_per_cycle`-wide link
/// drains a maximum-weight table entry `bytes_per_cycle×` faster, so the
/// guaranteed deadline shrinks accordingly (4x and 12x links).
#[must_use]
pub fn deadline_for_speed(distance: Distance, hops: usize, bytes_per_cycle: u64) -> u64 {
    assert!(bytes_per_cycle > 0);
    (hops as u64 * distance.slots() as u64 * SERVICE_QUANTUM_CYCLES).div_ceil(bytes_per_cycle)
}

/// A QoS connection request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConnectionRequest {
    /// Unique id (becomes the flow id once admitted).
    pub id: u32,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Service level (classifies distance and bandwidth stratum).
    pub sl: ServiceLevel,
    /// Required entry distance in every arbitration table on the path.
    pub distance: Distance,
    /// Requested mean bandwidth (Mbps).
    pub mean_bw_mbps: f64,
    /// Packet size the connection will use (bytes).
    pub packet_bytes: u32,
}

impl ConnectionRequest {
    /// The table weight this request reserves at every hop on a link of
    /// `link_mbps` capacity.
    #[must_use]
    pub fn weight(&self, link_mbps: f64) -> Option<Weight> {
        weight_for_bandwidth(self.mean_bw_mbps, link_mbps)
    }

    /// Nominal interarrival time of the CBR source (cycles).
    #[must_use]
    pub fn interarrival(&self) -> u64 {
        iba_sim::interval_for_rate(u64::from(self.packet_bytes), self.mean_bw_mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_scales_with_distance_and_hops() {
        assert_eq!(deadline_for(Distance::D2, 1), 2 * 16320);
        assert_eq!(deadline_for(Distance::D64, 4), 4 * 64 * 16320);
        assert!(deadline_for(Distance::D2, 3) < deadline_for(Distance::D64, 3));
    }

    #[test]
    fn distance_for_deadline_inverts() {
        for d in Distance::ALL {
            for hops in 1..6 {
                let deadline = deadline_for(d, hops);
                let back = distance_for_deadline(deadline, hops).unwrap();
                assert_eq!(back, d, "d={d} hops={hops}");
            }
        }
    }

    #[test]
    fn too_tight_deadline_unsatisfiable() {
        // Less than two quanta per hop cannot be guaranteed.
        assert_eq!(distance_for_deadline(16320, 1), None);
        assert_eq!(distance_for_deadline(2 * 16320 - 1, 1), None);
        assert_eq!(distance_for_deadline(2 * 16320, 1), Some(Distance::D2));
    }

    #[test]
    fn weight_derives_from_bandwidth() {
        let r = ConnectionRequest {
            id: 0,
            src: HostId(0),
            dst: HostId(1),
            sl: ServiceLevel::new(0).unwrap(),
            distance: Distance::D2,
            mean_bw_mbps: 128.0,
            packet_bytes: 256,
        };
        assert_eq!(r.weight(2500.0), Some(836));
        assert!(r.weight(100.0).is_none(), "over link capacity");
    }

    #[test]
    fn interarrival_matches_rate() {
        let r = ConnectionRequest {
            id: 0,
            src: HostId(0),
            dst: HostId(1),
            sl: ServiceLevel::new(6).unwrap(),
            distance: Distance::D64,
            mean_bw_mbps: 2.5,
            packet_bytes: 256,
        };
        assert_eq!(r.interarrival(), 256_000);
    }
}
