//! CBR flow construction for admitted connections.

use crate::request::ConnectionRequest;
use iba_sim::{Arrival, FlowSpec};

/// Builds the CBR [`FlowSpec`] of an admitted connection.
///
/// The `phase` offsets the first packet so that independently admitted
/// connections do not all fire on the same cycle (the workload generator
/// draws it uniformly from the interarrival interval).
#[must_use]
pub fn flow_for_connection(req: &ConnectionRequest, phase: u64) -> FlowSpec {
    let interval = req.interarrival();
    FlowSpec {
        id: req.id,
        src: req.src,
        dst: req.dst,
        sl: req.sl,
        packet_bytes: req.packet_bytes,
        arrival: Arrival::Cbr { interval },
        start: phase % interval.max(1),
        stop: None,
    }
}

/// Scales a flow's offered rate by `factor` (used by the over-sending
/// ablation: a misbehaving source transmits `factor ×` what it
/// reserved).
#[must_use]
pub fn scale_rate(flow: &FlowSpec, factor: f64) -> FlowSpec {
    assert!(factor > 0.0);
    let arrival = match &flow.arrival {
        Arrival::Cbr { interval } => Arrival::Cbr {
            interval: ((*interval as f64 / factor).round() as u64).max(1),
        },
        Arrival::Pattern { intervals } => Arrival::Pattern {
            intervals: intervals
                .iter()
                .map(|&i| ((i as f64 / factor).round() as u64).max(1))
                .collect(),
        },
    };
    FlowSpec {
        arrival,
        ..flow.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::{Distance, ServiceLevel};
    use iba_topo::HostId;

    fn req() -> ConnectionRequest {
        ConnectionRequest {
            id: 9,
            src: HostId(2),
            dst: HostId(5),
            sl: ServiceLevel::new(4).unwrap(),
            distance: Distance::D32,
            mean_bw_mbps: 25.0,
            packet_bytes: 256,
        }
    }

    #[test]
    fn flow_mirrors_request() {
        let f = flow_for_connection(&req(), 100);
        assert_eq!(f.id, 9);
        assert_eq!(f.src, HostId(2));
        assert_eq!(f.dst, HostId(5));
        assert_eq!(f.packet_bytes, 256);
        let Arrival::Cbr { interval } = f.arrival else {
            panic!("CBR expected")
        };
        assert_eq!(interval, 25600); // 256B at 25 Mbps
        assert_eq!(f.start, 100);
    }

    #[test]
    fn phase_wraps_into_interval() {
        let f = flow_for_connection(&req(), 25600 * 3 + 17);
        assert_eq!(f.start, 17);
    }

    #[test]
    fn offered_load_matches_reservation() {
        let f = flow_for_connection(&req(), 0);
        // 25 Mbps on the 2500 Mbps time base = 0.01 bytes/cycle.
        assert!((f.offered_load() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn scale_rate_doubles() {
        let f = flow_for_connection(&req(), 0);
        let g = scale_rate(&f, 2.0);
        assert!((g.offered_load() - 0.02).abs() < 1e-4);
    }
}
