//! The QoS workload generator: an endless stream of connection requests
//! drawn from the SL table, which the admission control consumes until
//! the fabric is "quasi-fully loaded" (the paper establishes connections
//! until no more fit under the 80% reservation cap).

use crate::request::ConnectionRequest;
use iba_core::rng::SplitMix64;
use iba_core::{SlProfile, SlTable};
use iba_topo::{HostId, Topology};

/// Parameters of the request stream.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Packet size every connection uses (the paper runs the whole
    /// evaluation twice: small and large packets).
    pub packet_bytes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Workload with the given packet size and seed.
    #[must_use]
    pub fn new(packet_bytes: u32, seed: u64) -> Self {
        WorkloadConfig { packet_bytes, seed }
    }
}

/// Infinite iterator of connection requests: cycles over the QoS SLs
/// round-robin (so every SL gets admission attempts), drawing uniform
/// random (src, dst) pairs and a uniform bandwidth within the SL's
/// stratum — the paper: "CBR traffic, randomly generated among the
/// bandwidth range of each SL".
pub struct RequestGenerator {
    profiles: Vec<SlProfile>,
    hosts: u16,
    packet_bytes: u32,
    rng: SplitMix64,
    next_id: u32,
    next_profile: usize,
}

impl RequestGenerator {
    /// Builds a generator over the QoS profiles of `sl_table`.
    #[must_use]
    pub fn new(topo: &Topology, sl_table: &SlTable, config: &WorkloadConfig) -> Self {
        let profiles: Vec<SlProfile> = sl_table.qos_profiles().copied().collect();
        assert!(!profiles.is_empty(), "no QoS service levels configured");
        assert!(topo.num_hosts() >= 2, "need at least two hosts");
        RequestGenerator {
            profiles,
            hosts: topo.num_hosts() as u16,
            packet_bytes: config.packet_bytes,
            rng: SplitMix64::seed_from_u64(config.seed),
            next_id: 0,
            next_profile: 0,
        }
    }

    /// Ids handed out so far.
    #[must_use]
    pub fn issued(&self) -> u32 {
        self.next_id
    }

    /// Draws the next request (always succeeds; admission may reject it).
    pub fn next_request(&mut self) -> ConnectionRequest {
        let profile = self.profiles[self.next_profile];
        self.next_profile = (self.next_profile + 1) % self.profiles.len();

        let src = HostId(self.rng.gen_range(0..self.hosts));
        let dst = loop {
            let d = HostId(self.rng.gen_range(0..self.hosts));
            if d != src {
                break d;
            }
        };
        let (lo, hi) = profile.bandwidth_mbps;
        let mean_bw_mbps = if (hi - lo).abs() < f64::EPSILON {
            lo
        } else {
            self.rng.gen_range(lo..hi)
        };
        let id = self.next_id;
        self.next_id += 1;
        ConnectionRequest {
            id,
            src,
            dst,
            sl: profile.sl,
            distance: profile
                .distance
                .expect("QoS profiles always carry a distance"),
            mean_bw_mbps,
            packet_bytes: self.packet_bytes,
        }
    }

    /// Draws a request for one specific SL index within the QoS profile
    /// list (used by targeted tests and the oversend ablation).
    pub fn request_for_profile(&mut self, profile_idx: usize) -> ConnectionRequest {
        let save = self.next_profile;
        self.next_profile = profile_idx % self.profiles.len();
        let r = self.next_request();
        self.next_profile = save;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topo::irregular::{generate, IrregularConfig};

    fn gen() -> RequestGenerator {
        let topo = generate(IrregularConfig::paper_default(0));
        RequestGenerator::new(
            &topo,
            &SlTable::paper_table1(),
            &WorkloadConfig::new(256, 7),
        )
    }

    #[test]
    fn round_robins_over_all_sls() {
        let mut g = gen();
        let sls: Vec<u8> = (0..20).map(|_| g.next_request().sl.raw()).collect();
        assert_eq!(&sls[..10], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(&sls[10..], &sls[..10]);
    }

    #[test]
    fn bandwidth_stays_in_stratum() {
        let topo = generate(IrregularConfig::paper_default(0));
        let table = SlTable::paper_table1();
        let mut g = RequestGenerator::new(&topo, &table, &WorkloadConfig::new(256, 3));
        for _ in 0..200 {
            let r = g.next_request();
            let p = table.profile(r.sl).unwrap();
            assert!(
                p.bandwidth_in_range(r.mean_bw_mbps),
                "{} got {} Mbps",
                r.sl,
                r.mean_bw_mbps
            );
            assert_eq!(Some(r.distance), p.distance);
        }
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let mut g = gen();
        for i in 0..50 {
            assert_eq!(g.next_request().id, i);
        }
        assert_eq!(g.issued(), 50);
    }

    #[test]
    fn src_and_dst_differ() {
        let mut g = gen();
        for _ in 0..200 {
            let r = g.next_request();
            assert_ne!(r.src, r.dst);
        }
    }

    #[test]
    fn deterministic_stream() {
        let a: Vec<_> = {
            let mut g = gen();
            (0..30).map(|_| g.next_request()).collect()
        };
        let b: Vec<_> = {
            let mut g = gen();
            (0..30).map(|_| g.next_request()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn targeted_profile_requests() {
        let mut g = gen();
        let r = g.request_for_profile(3);
        assert_eq!(r.sl.raw(), 3);
        // Round-robin state is preserved.
        assert_eq!(g.next_request().sl.raw(), 0);
    }
}
