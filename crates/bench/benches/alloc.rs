//! Micro-benchmarks of the paper's core algorithms: sequence
//! allocation, release + defragmentation, and the canonical-plan
//! computation.

use iba_bench::microbench::{black_box, Harness};
use iba_core::alloc::AllocatorKind;
use iba_core::defrag::canonical_plan;
use iba_core::{Distance, ESet, HighPriorityTable, SequenceId, ServiceLevel, VirtualLane};

fn sl(i: u8) -> ServiceLevel {
    ServiceLevel::new(i).unwrap()
}

fn vl(i: u8) -> VirtualLane {
    VirtualLane::data(i)
}

fn bench_admit_release(h: &mut Harness) {
    for kind in [AllocatorKind::BitReversal, AllocatorKind::FirstFit] {
        h.bench(
            &format!("table/admit_release_cycle/{}", kind.name()),
            || {
                let mut t = HighPriorityTable::with_allocator(kind);
                let mut ids = Vec::with_capacity(16);
                // 10 singles + a d8 + a d2, then tear down. Rejections
                // are tolerated — the weaker policies reject feasible
                // requests by design; that is what the ablation shows.
                for i in 0..10u8 {
                    if let Ok(adm) = t.admit(sl(i % 10), vl(i % 10), Distance::D64, 100) {
                        ids.push((adm.sequence, 100));
                    }
                }
                if let Ok(adm) = t.admit(sl(2), vl(2), Distance::D8, 50) {
                    ids.push((adm.sequence, 50));
                }
                if let Ok(adm) = t.admit(sl(0), vl(0), Distance::D2, 64) {
                    ids.push((adm.sequence, 64));
                }
                for (id, w) in ids {
                    t.release(id, w).unwrap();
                }
                black_box(t.free_entries())
            },
        );
    }
}

fn bench_single_admit(h: &mut Harness) {
    // Pre-load a table, measure one admission + release.
    let mut t = HighPriorityTable::new();
    for i in 0..8u8 {
        t.admit(sl(i), vl(i), Distance::D64, 255).unwrap();
    }
    h.bench("table/single_admit_on_loaded", || {
        let adm = t.admit(sl(9), vl(9), Distance::D16, 30).unwrap();
        t.release(adm.sequence, 30).unwrap();
        black_box(adm.sequence)
    });
}

fn bench_defrag(h: &mut Harness) {
    // A representative fragmented layout.
    let mut occ = 0u64;
    let mut live = Vec::new();
    let picks = [
        (Distance::D64, 5),
        (Distance::D64, 9),
        (Distance::D32, 3),
        (Distance::D64, 20),
        (Distance::D16, 2),
        (Distance::D64, 33),
        (Distance::D8, 1),
        (Distance::D64, 40),
        (Distance::D64, 51),
        (Distance::D32, 11),
        (Distance::D64, 60),
        (Distance::D64, 62),
    ];
    for (i, (d, j)) in picks.iter().enumerate() {
        let e = ESet::new(*d, j % d.slots());
        if e.is_free_in(occ) {
            occ = e.occupy(occ);
            live.push((SequenceId::new(i as u32), e));
        }
    }
    h.bench("defrag/canonical_plan_12_sequences", || {
        black_box(canonical_plan(black_box(&live)))
    });
}

fn bench_bit_reversal_select(h: &mut Harness) {
    // Nearly full table: the probe scans most offsets.
    let mut t = HighPriorityTable::new();
    for i in 0..31u8 {
        t.admit(sl(i % 10), vl(i % 10), Distance::D64, 255).unwrap();
    }
    let occ = t.occupancy();
    h.bench("alloc/bitrev_select_worst_case", || {
        black_box(AllocatorKind::BitReversal.select(black_box(occ), Distance::D2))
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_admit_release(&mut h);
    bench_single_admit(&mut h);
    bench_defrag(&mut h);
    bench_bit_reversal_select(&mut h);
    h.finish();
}
