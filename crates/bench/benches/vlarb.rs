//! Micro-benchmark of the weighted-round-robin arbitration engine: the
//! per-packet `select` cost that every output port pays.

use iba_bench::microbench::{black_box, Harness};
use iba_core::{ArbEntry, VirtualLane, VlArbConfig, VlArbEngine};

fn config(high_entries: usize) -> VlArbConfig {
    let high = (0..high_entries)
        .map(|i| ArbEntry {
            vl: VirtualLane::data((i % 10) as u8),
            weight: 100,
        })
        .collect();
    VlArbConfig {
        high,
        low: vec![
            ArbEntry {
                vl: VirtualLane::data(10),
                weight: 64,
            },
            ArbEntry {
                vl: VirtualLane::data(11),
                weight: 16,
            },
        ],
        limit_of_high_priority: 100,
    }
}

fn main() {
    let mut h = Harness::from_env();
    for entries in [4usize, 16, 64] {
        {
            let mut e = VlArbEngine::new(config(entries));
            h.bench(&format!("vlarb/select_all_ready/{entries}_entries"), || {
                black_box(e.select(|_| Some(256)))
            });
        }
        {
            // Only VL7 ever ready: the scan walks the table.
            let mut e = VlArbEngine::new(config(entries));
            h.bench(&format!("vlarb/select_one_ready/{entries}_entries"), || {
                black_box(e.select(|vl| (vl.raw() == 7).then_some(256)))
            });
        }
        {
            let mut e = VlArbEngine::new(config(entries));
            h.bench(
                &format!("vlarb/select_none_ready/{entries}_entries"),
                || black_box(e.select(|_| None)),
            );
        }
    }
    h.finish();
}
