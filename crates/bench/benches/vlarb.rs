//! Micro-benchmark of the weighted-round-robin arbitration engine: the
//! per-packet `select` cost that every output port pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iba_core::{ArbEntry, VirtualLane, VlArbConfig, VlArbEngine};

fn config(high_entries: usize) -> VlArbConfig {
    let high = (0..high_entries)
        .map(|i| ArbEntry {
            vl: VirtualLane::data((i % 10) as u8),
            weight: 100,
        })
        .collect();
    VlArbConfig {
        high,
        low: vec![
            ArbEntry { vl: VirtualLane::data(10), weight: 64 },
            ArbEntry { vl: VirtualLane::data(11), weight: 16 },
        ],
        limit_of_high_priority: 100,
    }
}

fn bench_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("vlarb");
    for entries in [4usize, 16, 64] {
        g.bench_function(format!("select_all_ready/{entries}_entries"), |b| {
            let mut e = VlArbEngine::new(config(entries));
            b.iter(|| black_box(e.select(|_| Some(256))))
        });
        g.bench_function(format!("select_one_ready/{entries}_entries"), |b| {
            // Only VL7 ever ready: the scan walks the table.
            let mut e = VlArbEngine::new(config(entries));
            b.iter(|| black_box(e.select(|vl| (vl.raw() == 7).then_some(256))))
        });
        g.bench_function(format!("select_none_ready/{entries}_entries"), |b| {
            let mut e = VlArbEngine::new(config(entries));
            b.iter(|| black_box(e.select(|_| None)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_select
}
criterion_main!(benches);
