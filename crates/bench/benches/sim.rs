//! Simulator throughput benchmark: events per second on a loaded
//! 4-switch fabric (the knob that bounds how long the paper's
//! experiments take to regenerate).

use iba_bench::microbench::{black_box, Harness};
use iba_core::{ServiceLevel, SlTable};
use iba_qos::QosFrame;
use iba_sim::{Arrival, Fabric, FlowSpec, NullObserver, SimConfig};
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::{updown, HostId};
use iba_traffic::{RequestGenerator, WorkloadConfig};

fn bench_raw_fabric(h: &mut Harness) {
    let topo = generate(IrregularConfig::with_switches(4, 7));
    let routing = updown::compute(&topo);
    h.bench("sim/raw_fabric_100k_cycles", || {
        let mut fabric = Fabric::new(topo.clone(), routing.clone(), SimConfig::paper_default(256));
        for i in 0..16u16 {
            fabric.add_flow(FlowSpec {
                id: u32::from(i),
                src: HostId(i),
                dst: HostId((i + 7) % 16),
                sl: ServiceLevel::new((i % 10) as u8).unwrap(),
                packet_bytes: 256,
                arrival: Arrival::Cbr { interval: 1024 },
                start: u64::from(i) * 64,
                stop: None,
            });
        }
        let mut obs = NullObserver;
        fabric.run_until(100_000, &mut obs);
        black_box(fabric.events_processed())
    });
}

fn bench_qos_pipeline(h: &mut Harness) {
    let topo = generate(IrregularConfig::with_switches(4, 3));
    let routing = updown::compute(&topo);
    h.bench("sim/qos_frame_fill_and_short_run", || {
        let mut frame = QosFrame::new(
            topo.clone(),
            routing.clone(),
            SlTable::paper_table1(),
            SimConfig::paper_default(256),
        );
        let mut gen = RequestGenerator::new(
            &topo,
            &SlTable::paper_table1(),
            &WorkloadConfig::new(256, 5),
        );
        frame.fill(&mut gen, 20, 500);
        let (mut fabric, mut obs) = frame.build_fabric(1, None);
        fabric.run_until(200_000, &mut obs);
        black_box(obs.qos_packets)
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_raw_fabric(&mut h);
    bench_qos_pipeline(&mut h);
    h.finish();
}
