//! Micro-benchmarks of topology generation and up*/down* routing
//! computation across the paper's network sizes.

use iba_bench::microbench::{black_box, Harness};
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::updown;

fn main() {
    let mut h = Harness::from_env();
    for switches in [8usize, 16, 64] {
        let mut seed = 0u64;
        h.bench(&format!("topo_generate/{switches}_switches"), || {
            seed += 1;
            black_box(generate(IrregularConfig::with_switches(switches, seed)))
        });
    }
    for switches in [8usize, 16, 64] {
        let topo = generate(IrregularConfig::with_switches(switches, 42));
        h.bench(&format!("updown_compute/{switches}_switches"), || {
            black_box(updown::compute(black_box(&topo)))
        });
    }
    h.finish();
}
