//! Micro-benchmarks of topology generation and up*/down* routing
//! computation across the paper's network sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::updown;

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("topo_generate");
    for switches in [8usize, 16, 64] {
        g.bench_function(format!("{switches}_switches"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(generate(IrregularConfig::with_switches(switches, seed)))
            })
        });
    }
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("updown_compute");
    for switches in [8usize, 16, 64] {
        let topo = generate(IrregularConfig::with_switches(switches, 42));
        g.bench_function(format!("{switches}_switches"), |b| {
            b.iter(|| black_box(updown::compute(black_box(&topo))))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_generate, bench_routing
}
criterion_main!(benches);
