//! **Table 2** — Traffic and utilization for different packet sizes.
//!
//! Regenerates the paper's Table 2: injected and delivered traffic
//! (bytes/cycle/node), average utilization (%) and average bandwidth
//! reservation (Mbps) for host interfaces and switch ports, for small
//! (256 B) and large (4 KB) packets.
//!
//! The two packet sizes are independent runs, so they execute on the
//! parallel harness (`IBA_THREADS` workers); the merged output is
//! identical at any thread count.

#![forbid(unsafe_code)]

use iba_bench::{build_experiment, pct, rate, run_measured};
use iba_harness::{run_sweep, threads_from_env};
use iba_stats::Table;

fn main() {
    let mut t = Table::new(
        "Table 2. Traffic and utilization for different packet sizes.",
        &["Packet size", "Small", "Large"],
    );

    let threads = threads_from_env();
    let mtus = [256u32, 4096];
    let started = std::time::Instant::now();
    let cols: Vec<(Vec<String>, String)> = run_sweep(&mtus, threads, |_, &mtu| {
        let exp = build_experiment(mtu);
        let mut log = format!(
            "== MTU {mtu} ==\n   fill: {} accepted / {} attempted, offered {:.3} bytes/cycle total\n",
            exp.fill.accepted, exp.fill.attempted, exp.fill.offered_load
        );
        let m = run_measured(&exp, true);
        let (host_res, switch_res) = exp.frame.manager.reservation_summary();
        // The paper accounts QoS traffic only: its "maximum utilization
        // reachable is 80%, because the other 20% is reserved for BE and
        // CH traffic".
        let injected = m.obs.qos_generated_bytes as f64 / m.window as f64 / m.hosts as f64;
        let delivered = m.obs.qos_bytes as f64 / m.window as f64 / m.hosts as f64;
        let col = vec![
            rate(injected),
            rate(delivered),
            pct(m.stats.host_link_qos_utilization),
            pct(m.stats.switch_link_qos_utilization),
            format!("{host_res:.1}"),
            format!("{switch_res:.1}"),
        ];
        log.push_str(&format!(
            "   steady window {} cycles, {} QoS packets, {} BE packets\n",
            m.window, m.obs.qos_packets, m.obs.be_packets
        ));
        log.push_str(&format!(
            "   incl. best-effort: injected {} delivered {} B/cyc/node; total util host {:.2}% switch {:.2}%",
            rate(m.stats.injected_per_node(m.hosts)),
            rate(m.stats.delivered_per_node(m.hosts)),
            m.stats.host_link_utilization,
            m.stats.switch_link_utilization
        ));
        (col, log)
    });
    let wall = started.elapsed();
    for (_, log) in &cols {
        eprintln!("{log}");
    }
    eprintln!(
        "== sweep: {} points on {threads} thread(s) in {:.2}s ==",
        mtus.len(),
        wall.as_secs_f64()
    );

    let rows = [
        "Injected traffic (Bytes/Cycle/Node)",
        "Delivered traffic (Bytes/Cycle/Node)",
        "Av. utilization for host interfaces (%)",
        "Av. utilization for switch ports (%)",
        "Av. reservation for host interfaces (Mbps)",
        "Av. reservation for switch ports (Mbps)",
    ];
    for (i, label) in rows.iter().enumerate() {
        t.row(vec![
            label.to_string(),
            cols[0].0[i].clone(),
            cols[1].0[i].clone(),
        ]);
    }
    println!("{}", t.render());
}
