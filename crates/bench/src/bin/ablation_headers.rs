//! **Ablation A3** — explicit IBA header overhead (LRH+BTH+CRCs,
//! 26 bytes/packet).
//!
//! The paper explains its Table 2 small-vs-large difference as header
//! overhead: "the overhead introduced by packet headers is more
//! important for small packet size and more packets must be
//! transmitted." This run enables explicit headers and reports wire
//! throughput vs goodput per MTU, reproducing that effect: small
//! packets put more total bytes on the wire for the same goodput.

#![forbid(unsafe_code)]

use iba_bench::env_u64;
use iba_core::SlTable;
use iba_qos::{QosFrame, QosManager};
use iba_sim::config::IBA_HEADER_BYTES;
use iba_sim::SimConfig;
use iba_stats::Table;
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::updown;
use iba_traffic::{RequestGenerator, WorkloadConfig};

fn main() {
    let seed = env_u64("IBA_SEED", 42);
    let switches = env_u64("IBA_SWITCHES", 16) as usize;
    let steady_packets = env_u64("IBA_STEADY_PACKETS", 10);
    let topo = generate(IrregularConfig::with_switches(switches, seed));
    let routing = updown::compute(&topo);
    let sl_table = SlTable::paper_table1();

    let mut t = Table::new(
        &format!("Ablation A3: explicit {IBA_HEADER_BYTES}-byte packet headers (wire vs goodput)"),
        &[
            "MTU (B)",
            "Header overhead (%)",
            "Wire delivered (B/cyc/node)",
            "Goodput (B/cyc/node)",
            "Deadline misses",
        ],
    );

    for mtu in [256u32, 4096] {
        eprintln!("== MTU {mtu}, headers on ==");
        let config = SimConfig::with_headers(mtu);
        let mut manager = QosManager::new(topo.clone(), routing.clone(), sl_table.clone());
        manager.set_header_bytes(IBA_HEADER_BYTES);
        let mut frame = QosFrame::with_manager(manager, config);
        let mut gen =
            RequestGenerator::new(&topo, &sl_table, &WorkloadConfig::new(mtu, seed ^ 0xF00D));
        frame.fill(&mut gen, 120, 100_000);

        let (mut fabric, mut obs) = frame.build_fabric(seed, None);
        let transient = frame.steady_state_cycles(2);
        fabric.run_until(transient, &mut obs);
        obs.reset_samples();
        fabric.run_until(
            transient + frame.steady_state_cycles(steady_packets),
            &mut obs,
        );

        let hosts = topo.num_hosts() as f64;
        let window = frame.steady_state_cycles(steady_packets) as f64;
        let wire = obs.qos_bytes as f64 / window / hosts;
        // Goodput: wire bytes minus per-packet headers.
        let goodput =
            (obs.qos_bytes - obs.qos_packets * u64::from(IBA_HEADER_BYTES)) as f64 / window / hosts;
        let misses: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
        t.row(vec![
            mtu.to_string(),
            format!(
                "{:.2}",
                100.0 * f64::from(IBA_HEADER_BYTES) / f64::from(mtu + IBA_HEADER_BYTES)
            ),
            format!("{wire:.4}"),
            format!("{goodput:.4}"),
            format!("{misses} / {}", obs.qos_packets),
        ]);
    }
    println!("{}", t.render());
    println!(
        "For the same reserved goodput, small packets put ~{:.0}% more bytes on\n\
         the wire — the paper's 'slightly higher throughput' for small packets.",
        100.0 * f64::from(IBA_HEADER_BYTES) / 256.0
    );
}
