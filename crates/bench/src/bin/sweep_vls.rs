//! **Sweep S2** — fewer virtual lanes (§3.2 of the paper).
//!
//! When a port implements fewer than 16 VLs, several SLs must share a
//! VL and the manager "enforces more restrictive requirements" — every
//! connection in a shared lane is reserved at the most restrictive
//! distance among the SLs mapped there. This sweep shows the trade-off:
//! fewer lanes ⇒ stricter (more entry-hungry) reservations ⇒ fewer
//! admitted connections, while the guarantees continue to hold.

#![forbid(unsafe_code)]

use iba_bench::env_u64;
use iba_core::{SlTable, SlToVlMap};
use iba_qos::{QosFrame, QosManager};
use iba_sim::SimConfig;
use iba_stats::Table;
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::updown;
use iba_traffic::{RequestGenerator, WorkloadConfig};

fn main() {
    let seed = env_u64("IBA_SEED", 42);
    let switches = env_u64("IBA_SWITCHES", 16) as usize;
    let steady_packets = env_u64("IBA_STEADY_PACKETS", 10);
    let topo = generate(IrregularConfig::with_switches(switches, seed));
    let routing = updown::compute(&topo);
    let sl_table = SlTable::paper_table1();

    let mut t = Table::new(
        "Sweep S2: SLs sharing VLs on ports with fewer lanes (small packets)",
        &[
            "QoS VLs",
            "Data VLs used",
            "Connections",
            "Offered (B/cyc total)",
            "QoS packets",
            "Deadline misses",
        ],
    );

    for n_qos in [10u8, 6, 4, 2] {
        eprintln!("== {n_qos} QoS lanes ==");
        let map = if n_qos == 10 {
            SlToVlMap::identity()
        } else {
            SlToVlMap::collapsed_qos(n_qos)
        };
        let mut config = SimConfig::paper_default(256);
        config.sl_to_vl = map.clone();
        let mut manager = QosManager::new(topo.clone(), routing.clone(), sl_table.clone());
        manager.set_sl_to_vl(map);
        let mut frame = QosFrame::with_manager(manager, config);

        let mut gen =
            RequestGenerator::new(&topo, &sl_table, &WorkloadConfig::new(256, seed ^ 0xF00D));
        let fill = frame.fill(&mut gen, 120, 100_000);

        let (mut fabric, mut obs) = frame.build_fabric(seed, None);
        let transient = frame.steady_state_cycles(2);
        fabric.run_until(transient, &mut obs);
        obs.reset_samples();
        fabric.run_until(
            transient + frame.steady_state_cycles(steady_packets),
            &mut obs,
        );

        let misses: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
        t.row(vec![
            n_qos.to_string(),
            if n_qos == 10 { 13 } else { n_qos + 3 }.to_string(),
            fill.accepted.to_string(),
            format!("{:.2}", fill.offered_load),
            obs.qos_packets.to_string(),
            misses.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Fewer lanes force stricter shared reservations (more table entries per\n\
         connection), so fewer connections fit — but every admitted one still\n\
         meets its deadline."
    );
}
