//! **Figure 6** — The best and the worst connection for the SLs with
//! the strictest latency requirements (SLs 0–3, small packets).
//!
//! For each of those SLs, selects the connections that delivered the
//! lowest and the highest percentage of packets before the tight
//! threshold (D/30) and prints both delay CDFs.

#![forbid(unsafe_code)]

use iba_bench::{build_experiment, run_measured, threshold_label};
use iba_stats::Table;

fn main() {
    let exp = build_experiment(256);
    let m = run_measured(&exp, false);

    let thresholds = iba_stats::DEFAULT_THRESHOLDS;
    for sl in 0u8..4 {
        // Connections of this SL.
        let conns: Vec<u32> = exp
            .frame
            .manager
            .connections()
            .filter(|(_, c)| c.request.sl.raw() == sl)
            .map(|(_, c)| c.request.id)
            .collect();
        if conns.is_empty() {
            println!("SL {sl}: no connections admitted\n");
            continue;
        }
        // Rank by % before the tightest threshold.
        let pct_at = |flow: u32, idx: usize| -> Option<f64> {
            m.obs
                .delay_by_conn
                .group(flow as usize)
                .map(|d| d.percentages()[idx])
        };
        let mut ranked: Vec<(u32, f64)> = conns
            .iter()
            .filter_map(|&f| pct_at(f, 0).map(|p| (f, p)))
            .collect();
        if ranked.is_empty() {
            println!("SL {sl}: no packets measured\n");
            continue;
        }
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        let worst = ranked.first().unwrap().0;
        let best = ranked.last().unwrap().0;

        let mut header: Vec<String> = vec!["Connection".to_string()];
        header.extend(thresholds.iter().map(|t| threshold_label(*t)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            &format!("Figure 6, SL {sl}: % of packets received before threshold"),
            &header_refs,
        );
        for (label, flow) in [("The Best", best), ("The Worst", worst)] {
            let d = m.obs.delay_by_conn.group(flow as usize).unwrap();
            let mut row = vec![format!("{label} (conn {flow})")];
            row.extend(d.percentages().iter().map(|p| format!("{p:.2}")));
            t.row(row);
        }
        println!("{}", t.render());
        let worst_d = m.obs.delay_by_conn.group(worst as usize).unwrap();
        println!(
            "  worst connection still meets deadline: {} misses, max delay/D = {:.3}\n",
            worst_d.missed(),
            worst_d.max_ratio()
        );
    }
}
