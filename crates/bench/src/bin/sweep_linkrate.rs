//! **Sweep S4** — link rates 1x / 4x / 12x.
//!
//! The paper: "only results for the link rate of 2.5 Gbps will be
//! shown" — implying the other IBA rates were also evaluated. This
//! sweep runs the pipeline at 1x (2.5 Gbps), 4x (10 Gbps) and 12x
//! (30 Gbps). Faster links admit proportionally more bandwidth at the
//! same table weights and drain entries faster, so the (conservative,
//! 1x-derived) deadlines hold with growing headroom.

#![forbid(unsafe_code)]

use iba_bench::env_u64;
use iba_core::SlTable;
use iba_qos::{QosFrame, QosManager};
use iba_sim::{SimConfig, LINK_1X_MBPS};
use iba_stats::Table;
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::updown;
use iba_traffic::{RequestGenerator, WorkloadConfig};

fn main() {
    let seed = env_u64("IBA_SEED", 42);
    let switches = env_u64("IBA_SWITCHES", 16) as usize;
    let steady_packets = env_u64("IBA_STEADY_PACKETS", 10);
    let topo = generate(IrregularConfig::with_switches(switches, seed));
    let routing = updown::compute(&topo);
    let sl_table = SlTable::paper_table1();

    let mut t = Table::new(
        "Sweep S4: link rates (small packets)",
        &[
            "Rate",
            "Link (Mbps)",
            "Connections",
            "Offered (B/cyc total)",
            "Worst delay/D",
            "Deadline misses",
        ],
    );

    for (name, bytes_per_cycle) in [("1x", 1u64), ("4x", 4), ("12x", 12)] {
        eprintln!("== {name} ==");
        let link_mbps = LINK_1X_MBPS * bytes_per_cycle as f64;
        let mut config = SimConfig::paper_default(256);
        config.link_bytes_per_cycle = bytes_per_cycle;
        let mut manager = QosManager::new(topo.clone(), routing.clone(), sl_table.clone());
        manager.set_link_mbps(link_mbps);
        let mut frame = QosFrame::with_manager(manager, config);

        let mut gen =
            RequestGenerator::new(&topo, &sl_table, &WorkloadConfig::new(256, seed ^ 0xF00D));
        let fill = frame.fill(&mut gen, 120, 200_000);

        let (mut fabric, mut obs) = frame.build_fabric(seed, None);
        let transient = frame.steady_state_cycles(2);
        fabric.run_until(transient, &mut obs);
        obs.reset_samples();
        fabric.run_until(
            transient + frame.steady_state_cycles(steady_packets),
            &mut obs,
        );

        let misses: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
        let worst = obs
            .delay_by_sl
            .groups()
            .map(|(_, d)| d.max_ratio())
            .fold(0.0f64, f64::max);
        t.row(vec![
            name.to_string(),
            format!("{link_mbps:.0}"),
            fill.accepted.to_string(),
            format!("{:.2}", fill.offered_load),
            format!("{worst:.3}"),
            format!("{misses} / {}", obs.qos_packets),
        ]);
    }
    println!("{}", t.render());
}
