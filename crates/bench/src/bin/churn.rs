//! **Dynamic scenario D1** — connections arriving and departing while
//! traffic flows ("the meeting and release of sequences in an optimal
//! and dynamical way").
//!
//! Random arrivals and departures churn a running fabric; after every
//! event the tables are re-downloaded (and defragmented on release).
//! The run reports admission statistics and verifies no live connection
//! ever misses a deadline.

#![forbid(unsafe_code)]

use iba_bench::env_u64;
use iba_core::SlTable;
use iba_qos::{ChurnEvent, ChurnRunner, QosFrame};
use iba_sim::SimConfig;
use iba_stats::Table;
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::updown;
use iba_traffic::{RequestGenerator, WorkloadConfig};

fn main() {
    let seed = env_u64("IBA_SEED", 42);
    let switches = env_u64("IBA_SWITCHES", 16) as usize;
    let topo = generate(IrregularConfig::with_switches(switches, seed));
    let routing = updown::compute(&topo);
    let sl_table = SlTable::paper_table1();
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        sl_table.clone(),
        SimConfig::paper_default(256),
    );

    // Schedule: an arrival every 50k cycles; from half-time on, a
    // departure follows every arrival (steady churn).
    let mut gen = RequestGenerator::new(&topo, &sl_table, &WorkloadConfig::new(256, seed ^ 0xD1));
    let n_events = env_u64("IBA_CHURN_EVENTS", 800);
    let mut events = Vec::new();
    for k in 0..n_events {
        let at = k * 50_000;
        events.push(ChurnEvent::Arrive {
            at,
            request: gen.next_request(),
        });
        if k > n_events / 2 {
            events.push(ChurnEvent::DepartOldest { at: at + 25_000 });
        }
    }
    let horizon = n_events * 50_000 + 10_000_000;

    let (mut fabric, mut obs) = frame.build_fabric(seed, None);
    let stats = ChurnRunner::new(events).run(&mut frame, &mut fabric, &mut obs, horizon);

    let mut t = Table::new("Dynamic churn on a running fabric", &["Metric", "Value"]);
    t.row(vec!["arrivals admitted".into(), stats.admitted.to_string()]);
    t.row(vec!["arrivals rejected".into(), stats.rejected.to_string()]);
    t.row(vec!["departures".into(), stats.departed.to_string()]);
    t.row(vec![
        "connections live at end".into(),
        frame.manager.live_connections().to_string(),
    ]);
    t.row(vec![
        "QoS packets delivered".into(),
        obs.qos_packets.to_string(),
    ]);
    let misses: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
    t.row(vec!["deadline misses".into(), misses.to_string()]);
    let worst = obs
        .delay_by_sl
        .groups()
        .map(|(_, d)| d.max_ratio())
        .fold(0.0f64, f64::max);
    t.row(vec!["worst delay/D".into(), format!("{worst:.3}")]);
    println!("{}", t.render());

    frame
        .manager
        .port_tables()
        .check_all()
        .expect("tables consistent");
    println!("all tables internally consistent after churn ✓");
}
