//! **Ablation A1** — the bit-reversal allocator vs baselines.
//!
//! Replays identical random request traces against tables driven by the
//! paper's bit-reversal allocator, natural-order first fit, and
//! highest-offset-first fit, and reports:
//!
//! * how many requests each policy accepts before the trace ends,
//! * how often the table violates the canonical property (free entries
//!   can no longer serve the most restrictive feasible request),
//! * the effect of disabling defragmentation.

#![forbid(unsafe_code)]

use iba_core::alloc::AllocatorKind;
use iba_core::defrag::is_canonical;
use iba_core::rng::SplitMix64;
use iba_core::{Distance, HighPriorityTable, ServiceLevel, VirtualLane};
use iba_stats::Table;

struct Trace {
    ops: Vec<Op>,
}

enum Op {
    Admit {
        sl: u8,
        distance: Distance,
        weight: u32,
    },
    Release {
        victim: usize,
    },
}

fn make_trace(seed: u64, len: usize) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let distances = Distance::ALL;
    let ops = (0..len)
        .map(|_| {
            if rng.gen_bool(0.6) {
                Op::Admit {
                    sl: rng.gen_range(0..10),
                    distance: distances[rng.gen_range(0..distances.len())],
                    weight: rng.gen_range(1..=510),
                }
            } else {
                Op::Release {
                    victim: rng.gen_range(0..1024),
                }
            }
        })
        .collect();
    Trace { ops }
}

struct Outcome {
    accepted: u64,
    rejected: u64,
    feasible_rejections: u64,
    canonical_violations: u64,
    checks: u64,
}

fn replay(trace: &Trace, kind: AllocatorKind, defrag: bool) -> Outcome {
    let mut table = HighPriorityTable::with_allocator(kind);
    table.set_auto_defrag(defrag);
    let mut live: Vec<(iba_core::SequenceId, u32)> = Vec::new();
    let mut out = Outcome {
        accepted: 0,
        rejected: 0,
        feasible_rejections: 0,
        canonical_violations: 0,
        checks: 0,
    };
    for op in &trace.ops {
        match op {
            Op::Admit {
                sl,
                distance,
                weight,
            } => {
                let sl = ServiceLevel::new(*sl).unwrap();
                let vl = VirtualLane::data(sl.raw());
                match table.admit(sl, vl, *distance, *weight) {
                    Ok(adm) => {
                        out.accepted += 1;
                        live.push((adm.sequence, *weight));
                    }
                    Err(iba_core::TableError::NoFreeSequence) => {
                        out.rejected += 1;
                        // Feasible = enough free entries existed.
                        if let Some((_, n)) = iba_core::effective_request(*distance, *weight) {
                            if table.free_entries() >= n {
                                out.feasible_rejections += 1;
                            }
                        }
                    }
                    Err(_) => out.rejected += 1,
                }
            }
            Op::Release { victim } => {
                if !live.is_empty() {
                    let (id, w) = live.swap_remove(victim % live.len());
                    table.release(id, w).unwrap();
                }
            }
        }
        out.checks += 1;
        if !is_canonical(table.occupancy()) {
            out.canonical_violations += 1;
        }
    }
    out
}

fn main() {
    let seeds = 20u64;
    let len = 400usize;
    let mut t = Table::new(
        &format!("Ablation A1: allocator comparison ({seeds} traces x {len} ops, weights 1-510)"),
        &[
            "Policy",
            "Accepted",
            "Rejected",
            "Feasible-but-rejected",
            "Canonical violations (% of states)",
        ],
    );

    let configs: [(&str, AllocatorKind, bool); 4] = [
        (
            "bit-reversal + defrag (paper)",
            AllocatorKind::BitReversal,
            true,
        ),
        ("bit-reversal, no defrag", AllocatorKind::BitReversal, false),
        ("first-fit, no defrag", AllocatorKind::FirstFit, false),
        ("reverse-fit, no defrag", AllocatorKind::ReverseFit, false),
    ];
    for (name, kind, defrag) in configs {
        let mut total = Outcome {
            accepted: 0,
            rejected: 0,
            feasible_rejections: 0,
            canonical_violations: 0,
            checks: 0,
        };
        for seed in 0..seeds {
            let trace = make_trace(seed, len);
            let o = replay(&trace, kind, defrag);
            total.accepted += o.accepted;
            total.rejected += o.rejected;
            total.feasible_rejections += o.feasible_rejections;
            total.canonical_violations += o.canonical_violations;
            total.checks += o.checks;
        }
        t.row(vec![
            name.to_string(),
            total.accepted.to_string(),
            total.rejected.to_string(),
            total.feasible_rejections.to_string(),
            format!(
                "{:.2}",
                100.0 * total.canonical_violations as f64 / total.checks as f64
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The paper's policy never rejects a feasible request and never leaves\n\
         the table in a non-canonical state; the baselines do."
    );
}
