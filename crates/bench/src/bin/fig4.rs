//! **Figure 4** — Distribution of packet delay for (a) small and (b)
//! large packet size.
//!
//! For every SL, the percentage of packets received before a threshold,
//! where thresholds are fractions of each connection's own guaranteed
//! deadline D (from D/30 up to D).

#![forbid(unsafe_code)]

use iba_bench::{build_experiment, run_measured, threshold_label};
use iba_stats::Table;

fn main() {
    for (fig, mtu) in [
        ("(a) small packets (256B)", 256u32),
        ("(b) large packets (4KB)", 4096),
    ] {
        eprintln!("== Figure 4 {fig} ==");
        let exp = build_experiment(mtu);
        let m = run_measured(&exp, false);

        let thresholds = iba_stats::DEFAULT_THRESHOLDS;
        let mut header: Vec<String> = vec!["SL".to_string()];
        header.extend(thresholds.iter().map(|t| threshold_label(*t)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            &format!("Figure 4{fig}: % of packets received before threshold"),
            &header_refs,
        );
        for (sl, dist) in m.obs.delay_by_sl.groups() {
            let mut row = vec![format!("SL {sl}")];
            row.extend(dist.percentages().iter().map(|p| format!("{p:.2}")));
            t.row(row);
        }
        println!("{}", t.render());

        // The paper's claim: everything arrives by the deadline.
        let misses: u64 = m.obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
        println!(
            "deadline misses: {misses} of {} packets\n",
            m.obs.qos_packets
        );
    }
}
