//! Micro-benchmark smoke tier: a fast pass over the allocator and
//! simulator hot paths that emits machine-readable `BENCH_alloc.json`,
//! `BENCH_sim.json`, `BENCH_schedule.json`, `BENCH_audit.json`,
//! `BENCH_chaos.json` and `BENCH_cac.json` reports (schema documented
//! in `EXPERIMENTS.md`, metric semantics in `METRICS.md`).
//!
//! The JSON goes to `IBA_BENCH_OUT` (directory, default: the current
//! working directory). Intended for CI artifact upload:
//!
//! ```text
//! IBA_BENCH_SAMPLES=5 cargo run --release -p iba-bench --bin smoke
//! ```

#![forbid(unsafe_code)]

use iba_bench::microbench::{black_box, Harness, Summary};
use iba_core::{
    AllocatorKind, ArbEntry, CompiledVlArb, Distance, ServiceLevel, VirtualLane, VlArbConfig,
    VlArbEngine,
};
use iba_harness::{run_audit, run_chaos, run_points, AuditConfig, ChaosConfig, SimPoint};
use iba_obs::{bench_json, vl_shares, BenchRecord, ObsRecorder, VlShare};
use iba_sim::{Arrival, Event, EventQueue, Fabric, FlowSpec, SimConfig};
use iba_topo::{updown, HostId, SwitchId, Topology};

/// Converts harness summaries into the JSON report records.
fn records(results: &[Summary]) -> Vec<BenchRecord> {
    results
        .iter()
        .map(|s| BenchRecord {
            name: s.name.clone(),
            iters: s.iters_per_sample,
            ns_per_op: s.median_ns,
            p50_ns: s.p50_ns,
            p99_ns: s.p99_ns,
        })
        .collect()
}

fn write_report(file: &str, json: &str) {
    let dir = std::env::var("IBA_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(file);
    std::fs::write(&path, json).expect("write bench report");
    println!("wrote {}", path.display());
}

/// Allocator tier: select/admit cycles over every policy.
fn bench_alloc(h: &mut Harness) {
    for kind in AllocatorKind::ALL {
        // Steady-state probe cost on a half-full table.
        let mut occ = 0u64;
        for _ in 0..16 {
            if let Some(e) = kind.select(occ, Distance::D32) {
                occ |= e.mask();
            }
        }
        h.bench(&format!("alloc/select_half_full/{}", kind.name()), || {
            let mut found = 0u32;
            for d in Distance::ALL {
                if kind.select(black_box(occ), d).is_some() {
                    found += 1;
                }
            }
            found
        });
    }
    // Full admit/release round-trip through the table layer.
    h.bench("alloc/admit_release_roundtrip", || {
        let mut t = iba_core::HighPriorityTable::new();
        let adm = t
            .admit(
                ServiceLevel::new(3).unwrap(),
                VirtualLane::data(3),
                Distance::D16,
                40,
            )
            .unwrap();
        t.release(adm.sequence, 40).unwrap();
        t.free_entries()
    });
}

/// The 12:4 two-VL table shared by the grant benches.
fn two_vl_config() -> VlArbConfig {
    VlArbConfig {
        high: vec![
            ArbEntry {
                vl: VirtualLane::data(1),
                weight: 12,
            },
            ArbEntry {
                vl: VirtualLane::data(2),
                weight: 4,
            },
        ],
        low: vec![],
        limit_of_high_priority: 255,
    }
}

/// Arbiter tier: one WRR grant at the heart of every output port,
/// streaming through the compiled schedule the fabric uses in
/// production. The schedule is compiled once per table download and
/// amortised over every grant until the next mutation invalidates it,
/// so the steady-state op is a single `select` — the baseline row
/// measured the interpreted engine re-walking (and rebuilding) its
/// table per grant batch. Loop-shaped comparisons of the two engines
/// live in the `schedule/` tier.
fn bench_sim(h: &mut Harness) {
    let mut arb = CompiledVlArb::new(two_vl_config());
    let bytes = [256u64; 16];
    h.bench("sim/vlarb_grant_2vl", || {
        arb.select(black_box(0b0110), &bytes).is_some()
    });
    h.bench("sim/fabric_short_run", || {
        let mut f = shares_fabric();
        f.run_until(256 * 64, &mut iba_sim::NullObserver);
        f.summarize().delivered_packets
    });
    // The calendar queue under the fabric's access pattern: monotone
    // time, a small burst of pushes per pop.
    h.bench("sim/event_queue_push_pop", || {
        let mut q = EventQueue::new();
        let mut now = 0u64;
        let mut popped = 0u32;
        for round in 0..256u32 {
            q.push(now + 256, Event::Generate { flow: round });
            q.push(now + 512, Event::Complete { node: 0, port: 0 });
            if let Some((t, _)) = q.pop() {
                now = t;
                popped += 1;
            }
        }
        while q.pop().is_some() {
            popped += 1;
        }
        black_box(popped)
    });
}

/// Schedule tier: the compiler itself. Compile cost (paid once per
/// table download) and the compiled-vs-interpreted 64-grant loop with
/// construction hoisted out of both bodies, so the two rows isolate
/// the per-grant cost difference the fabric sees.
fn bench_schedule(h: &mut Harness) {
    // Recompile cost for the small production table: this is the price
    // of one invalidation (admit / teardown / repair / fault).
    let small = two_vl_config();
    let mut arb = CompiledVlArb::new(small.clone());
    h.bench("schedule/compile_2vl", || {
        arb.reconfigure(black_box(small.clone()));
        arb.high_stream().len()
    });
    // Worst-case table: 64 high entries at the maximum weight.
    let full = VlArbConfig {
        high: (0..64)
            .map(|i| ArbEntry {
                vl: VirtualLane::data(1 + (i % 8)),
                weight: 255,
            })
            .collect(),
        low: vec![],
        limit_of_high_priority: 255,
    };
    let mut arb_full = CompiledVlArb::new(full.clone());
    h.bench("schedule/compile_64entry", || {
        arb_full.reconfigure(black_box(full.clone()));
        arb_full.high_stream().len()
    });
    // Per-grant cost, compiled stream vs interpreted WRR walk.
    let bytes = [256u64; 16];
    let mut compiled = CompiledVlArb::new(two_vl_config());
    h.bench("schedule/select_compiled_64", || {
        let mut served = 0u32;
        for _ in 0..64 {
            if compiled.select(black_box(0b0110), &bytes).is_some() {
                served += 1;
            }
        }
        served
    });
    let mut interpreted = VlArbEngine::new(two_vl_config());
    let ready = [VirtualLane::data(1), VirtualLane::data(2)];
    h.bench("schedule/select_interpreted_64", || {
        let mut served = 0u32;
        for _ in 0..64 {
            let grant = interpreted.select(|vl| ready.contains(&vl).then_some(256));
            if grant.is_some() {
                served += 1;
            }
        }
        served
    });
}

/// Wall-clock rows for the parallel sweep engine at fixed thread
/// counts: `harness/sweep_4pt/threads=N` with `ns_per_op` = wall time
/// per point. Also cross-checks that the merged outcomes are identical
/// at every thread count (the engine's determinism guarantee).
fn bench_harness_sweep() -> Vec<BenchRecord> {
    let points: Vec<SimPoint> = (0..4)
        .map(|i| SimPoint {
            switches: 4,
            seed: 1000 + i,
            mtu: 256,
            background: false,
            steady_packets: 4,
            reject_limit: 40,
        })
        .collect();
    let mut records = Vec::new();
    let mut reference: Option<Vec<String>> = None;
    for threads in [1usize, 2, 4] {
        let started = std::time::Instant::now();
        let (outcomes, merged) = run_points(&points, threads);
        let wall = started.elapsed();
        let rendered: Vec<String> = outcomes.iter().map(|o| o.render()).collect();
        match &reference {
            None => reference = Some(rendered),
            Some(r) => assert_eq!(*r, rendered, "sweep output diverged at {threads} threads"),
        }
        assert_eq!(merged.metrics.harness_runs.get(), points.len() as u64);
        let per_point = wall.as_nanos() as f64 / points.len() as f64;
        records.push(BenchRecord {
            name: format!("harness/sweep_4pt/threads={threads}"),
            iters: points.len() as u64,
            ns_per_op: per_point,
            p50_ns: per_point,
            p99_ns: per_point,
        });
        println!(
            "harness sweep: 4 points, {threads} thread(s), {:.3}s wall",
            wall.as_secs_f64()
        );
    }
    records
}

/// Audit tier: wall time of the service-guarantee audit drive per
/// allocator, plus a cross-check of the paper's claim — bit reversal
/// must audit clean; the strawmen report their violation counts.
fn bench_audit() -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for kind in AllocatorKind::ALL {
        let cfg = AuditConfig::new(kind, 4096, 42);
        let started = std::time::Instant::now();
        let out = run_audit(&cfg);
        let wall = started.elapsed();
        if kind == AllocatorKind::BitReversal {
            assert!(
                out.passed(),
                "bit-reversal audit failed:\n{}",
                out.render_report()
            );
        }
        println!(
            "audit {}: {} violation(s), {} fallback install(s), {:.3}s wall",
            kind.name(),
            out.violations(),
            out.fallback_installs,
            wall.as_secs_f64()
        );
        let per_grant = wall.as_nanos() as f64 / cfg.grants.max(1) as f64;
        records.push(BenchRecord {
            name: format!("audit/drive/{}", kind.name()),
            iters: cfg.grants,
            ns_per_op: per_grant,
            p50_ns: per_grant,
            p99_ns: per_grant,
        });
    }
    records
}

/// Chaos tier: wall time of the fault-injection + recovery drive, plus
/// a cross-check of the recovery claim — bit-reversal must recover
/// with zero post-repair violations; first-fit is the negative control
/// and must stay in violation.
fn bench_chaos() -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for kind in [AllocatorKind::BitReversal, AllocatorKind::FirstFit] {
        let mut cfg = ChaosConfig::new(kind, 4096, 42);
        cfg.sweep_points = 2;
        let started = std::time::Instant::now();
        let out = run_chaos(&cfg, 2);
        let wall = started.elapsed();
        if kind == AllocatorKind::BitReversal {
            assert!(
                out.passed(),
                "bit-reversal chaos recovery failed:\n{}",
                out.render_report()
            );
        } else {
            assert!(
                !out.passed(),
                "first-fit negative control unexpectedly recovered clean"
            );
        }
        println!(
            "chaos {}: {} post-repair violation(s), {} evicted, {} reinstalled, \
             {} fault(s) injected, {:.3}s wall",
            kind.name(),
            out.violations(),
            out.recovery.evicted,
            out.recovery.reinstalled,
            out.faults_injected,
            wall.as_secs_f64()
        );
        let rounds = u64::from(cfg.rounds.max(1));
        let per_round = wall.as_nanos() as f64 / rounds as f64;
        records.push(BenchRecord {
            name: format!("chaos/recover/{}", kind.name()),
            iters: rounds,
            ns_per_op: per_round,
            p50_ns: per_round,
            p99_ns: per_round,
        });
    }
    records
}

/// The 2-VL weighted fabric used both as a benchmark body and as the
/// instrumented run behind `per_vl_shares` (weights 12:4 = 3:1).
fn shares_fabric() -> Fabric {
    let mut t = Topology::new(1, 4);
    t.attach_host(SwitchId(0), 0);
    t.attach_host(SwitchId(0), 1);
    t.attach_host(SwitchId(0), 2);
    let r = updown::compute(&t);
    let mut f = Fabric::new(t, r, SimConfig::paper_default(256));
    f.set_uniform_tables(&VlArbConfig {
        high: vec![
            ArbEntry {
                vl: VirtualLane::data(1),
                weight: 12,
            },
            ArbEntry {
                vl: VirtualLane::data(2),
                weight: 4,
            },
        ],
        low: vec![],
        limit_of_high_priority: 255,
    });
    for (id, src, sl) in [(1u32, 0u16, 1u8), (2, 1, 2)] {
        f.add_flow(FlowSpec {
            id,
            src: HostId(src),
            dst: HostId(2),
            sl: ServiceLevel::new(sl).unwrap(),
            packet_bytes: 256,
            arrival: Arrival::Cbr { interval: 256 },
            start: 0,
            stop: None,
        });
    }
    f
}

/// Measured per-VL serviced-bytes shares from an instrumented run.
fn measured_shares() -> Vec<VlShare> {
    let mut f = shares_fabric();
    let mut rec = ObsRecorder::new();
    f.run_until_recorded(256 * 2000, &mut iba_sim::NullObserver, &mut rec);
    vl_shares(&rec.metrics)
}

/// CAC tier: sustained end-to-end admissions through the sharded
/// admission service at 1, 2 and 8 shards over a repair-free
/// admit/teardown trace. Each row reports the per-admission cost
/// (`ns_per_op`, i.e. `1e9 / ns` admissions per second sustained) with
/// p50/p99 over the per-segment admit latencies. Every segment's
/// outcome vector is asserted byte-identical across shard counts — a
/// bench run doubles as a determinism check.
fn bench_cac() -> Vec<BenchRecord> {
    use iba_qos::service::{generate_trace, run_trace, TraceConfig};
    use iba_qos::QosManager;

    const SEGMENTS: usize = 8;
    const TRACE_LEN: usize = 256;

    let build = || {
        let topo = iba_topo::irregular::generate(
            iba_topo::irregular::IrregularConfig::with_switches(4, 42),
        );
        let hosts = topo.num_hosts() as u16;
        let routing = updown::compute(&topo);
        (
            QosManager::new(topo, routing, iba_core::SlTable::paper_table1()),
            hosts,
        )
    };
    let (_, hosts) = build();
    let traces: Vec<_> = (0..SEGMENTS)
        .map(|s| {
            generate_trace(&TraceConfig {
                repair_pct: 0,
                ..TraceConfig::new(hosts, 42 + s as u64, TRACE_LEN)
            })
        })
        .collect();

    let mut reference: Vec<Vec<iba_qos::TraceOutcome>> = Vec::new();
    let mut records = Vec::new();
    for shards in [1usize, 2, 8] {
        let mut samples_ns: Vec<f64> = Vec::with_capacity(SEGMENTS);
        let mut admissions = 0u64;
        let mut wall_ns = 0f64;
        for (s, ops) in traces.iter().enumerate() {
            let (planner, _) = build();
            let mut rec = ObsRecorder::new();
            let started = std::time::Instant::now();
            let report = run_trace(&planner, ops, shards, &mut rec);
            let ns = started.elapsed().as_nanos() as f64;
            if shards == 1 {
                reference.push(report.outcomes.clone());
            } else {
                assert_eq!(
                    report.outcomes, reference[s],
                    "serve outcomes diverge at {shards} shards (segment {s})"
                );
            }
            samples_ns.push(ns / report.accepted.max(1) as f64);
            admissions += report.accepted;
            wall_ns += ns;
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let pct = |q: f64| samples_ns[((samples_ns.len() - 1) as f64 * q).round() as usize];
        let ns_per_op = wall_ns / admissions.max(1) as f64;
        println!(
            "cac serve shards={shards}: {admissions} admissions, {:.0} admissions/s \
             sustained, p99 admit {:.0} ns",
            1e9 / ns_per_op,
            pct(0.99),
        );
        records.push(BenchRecord {
            name: format!("cac/serve/shards={shards}"),
            iters: admissions,
            ns_per_op,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
        });
    }
    records
}

fn main() {
    let mut h = Harness::from_env();
    bench_alloc(&mut h);
    let alloc_results = records(h.results());
    write_report(
        "BENCH_alloc.json",
        &bench_json("alloc", &alloc_results, &[]),
    );

    let mut h2 = Harness::from_env();
    bench_sim(&mut h2);
    let mut sim_results = records(h2.results());
    sim_results.extend(bench_harness_sweep());
    let shares = measured_shares();
    write_report("BENCH_sim.json", &bench_json("sim", &sim_results, &shares));

    let mut h3 = Harness::from_env();
    bench_schedule(&mut h3);
    let schedule_results = records(h3.results());
    write_report(
        "BENCH_schedule.json",
        &bench_json("schedule", &schedule_results, &[]),
    );

    write_report(
        "BENCH_audit.json",
        &bench_json("audit", &bench_audit(), &[]),
    );

    write_report(
        "BENCH_chaos.json",
        &bench_json("chaos", &bench_chaos(), &[]),
    );

    write_report("BENCH_cac.json", &bench_json("cac", &bench_cac(), &[]));

    h.finish();
    h2.finish();
    h3.finish();
}
