//! **Ablation A4** — crossbar priority inversion under best-effort
//! saturation, and the priority-aware input-claiming extension.
//!
//! With the plain multiplexed crossbar, a low-priority transfer can hold
//! an input port while a high-priority packet at that input waits for
//! another output; under sustained, phase-locked best-effort saturation
//! the race repeats and a small fraction of guaranteed packets miss
//! their deadlines. The extension reserves inputs that hold
//! transmittable high-priority work, eliminating the effect.

#![forbid(unsafe_code)]

use iba_bench::env_u64;
use iba_core::{ServiceLevel, SlTable};
use iba_qos::QosFrame;
use iba_sim::SimConfig;
use iba_stats::Table;
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::updown;
use iba_traffic::hotspot::permutation_flows;
use iba_traffic::{RequestGenerator, WorkloadConfig};

fn run(priority_claiming: bool, seed: u64, switches: usize) -> (u64, u64, u64) {
    let topo = generate(IrregularConfig::with_switches(switches, seed));
    let routing = updown::compute(&topo);
    let mut config = SimConfig::paper_default(256);
    config.priority_input_claiming = priority_claiming;
    let mut frame = QosFrame::new(topo.clone(), routing, SlTable::paper_table1(), config);
    let mut gen = RequestGenerator::new(
        &topo,
        &SlTable::paper_table1(),
        &WorkloadConfig::new(256, seed ^ 2),
    );
    frame.fill(&mut gen, 30, 1500);

    let (mut fabric, mut obs) = frame.build_fabric(2, None);
    for f in permutation_flows(
        frame.manager.topology(),
        ServiceLevel::new(10).unwrap(),
        1.0, // full-link best-effort saturation from every host
        256,
        7,
        3_000_000,
    ) {
        fabric.add_flow(f);
    }
    fabric.run_until(2_000_000, &mut obs);
    obs.reset_samples();
    fabric.run_until(12_000_000, &mut obs);

    let missed: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
    (missed, obs.qos_packets, obs.be_packets)
}

fn main() {
    let seed = env_u64("IBA_SEED", 43);
    let switches = env_u64("IBA_SWITCHES", 8) as usize;
    let mut t = Table::new(
        "Ablation A4: priority inversion under best-effort saturation\n\
         (every host also offers a full link of phase-locked PBE traffic)",
        &[
            "Crossbar input claiming",
            "QoS packets",
            "Deadline misses",
            "BE packets",
        ],
    );
    for (name, on) in [
        ("plain (paper's model)", false),
        ("priority-aware (extension)", true),
    ] {
        let (missed, qos, be) = run(on, seed, switches);
        t.row(vec![
            name.to_string(),
            qos.to_string(),
            missed.to_string(),
            be.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Inside the provisioned envelope (BE <= 20%) both variants deliver every\n\
         packet on time; the inversion only appears beyond it."
    );
}
