//! **Sweep S1** — network sizes 8 to 64 switches.
//!
//! The paper: "We have evaluated networks with sizes ranging from 8 to
//! 64 switches (with 32 to 256 hosts, respectively), and, for all
//! cases, the results are similar." This sweep verifies the claim:
//! every size fills to a comparable per-node load and misses no
//! deadline.
//!
//! The four sizes run on the parallel harness (`IBA_THREADS` workers);
//! rows come back in size order regardless of thread count.

#![forbid(unsafe_code)]

use iba_bench::{build_experiment_sized, env_u64, rate, run_measured};
use iba_harness::{run_sweep, threads_from_env};
use iba_stats::Table;

fn main() {
    let seed = env_u64("IBA_SEED", 42);
    let mut t = Table::new(
        "Sweep S1: the proposal across network sizes (small packets)",
        &[
            "Switches",
            "Hosts",
            "Connections",
            "Delivered (B/cyc/node)",
            "Host util (%)",
            "Switch util (%)",
            "Deadline misses",
        ],
    );
    let sizes = [8usize, 16, 32, 64];
    let threads = threads_from_env();
    let started = std::time::Instant::now();
    let rows: Vec<Vec<String>> = run_sweep(&sizes, threads, |_, &switches| {
        let exp = build_experiment_sized(256, switches, seed);
        let m = run_measured(&exp, false);
        let misses: u64 = m.obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
        vec![
            switches.to_string(),
            (switches * 4).to_string(),
            exp.fill.accepted.to_string(),
            rate(m.stats.delivered_per_node(m.hosts)),
            format!("{:.2}", m.stats.host_link_utilization),
            format!("{:.2}", m.stats.switch_link_utilization),
            format!("{misses} / {}", m.obs.qos_packets),
        ]
    });
    eprintln!(
        "== sweep: {} sizes on {threads} thread(s) in {:.2}s ==",
        sizes.len(),
        started.elapsed().as_secs_f64()
    );
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
}
