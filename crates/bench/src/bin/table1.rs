//! **Table 1** — Features of the SLs used.
//!
//! Prints the service-level configuration of the evaluation: maximum
//! distance between consecutive high-priority entries and the mean-
//! bandwidth stratum of each SL (values reconstructed; see DESIGN.md §4).

#![forbid(unsafe_code)]

use iba_core::SlTable;
use iba_stats::Table;

fn main() {
    let sl_table = SlTable::paper_table1();
    let mut t = Table::new(
        "Table 1. Features of the SLs used.",
        &["SL", "Class", "Maximum distance", "Bandwidth range (Mbps)"],
    );
    for p in sl_table.profiles() {
        let dist = p
            .distance
            .map_or("- (low-priority)".to_string(), |d| d.slots().to_string());
        let bw = if p.bandwidth_mbps.1.is_infinite() {
            "best effort".to_string()
        } else {
            format!("{} - {}", p.bandwidth_mbps.0, p.bandwidth_mbps.1)
        };
        t.row(vec![p.sl.to_string(), p.class.to_string(), dist, bw]);
    }
    println!("{}", t.render());
}
