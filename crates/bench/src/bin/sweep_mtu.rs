//! **Sweep S3** — all four IBA MTUs.
//!
//! The paper reports "small" and "large" packets; IBA defines four data
//! MTUs (256 B, 1 KB, 2 KB, 4 KB). This sweep runs the full pipeline at
//! each, confirming the guarantees are MTU-independent while the delay
//! headroom shrinks as packets grow.

#![forbid(unsafe_code)]

use iba_bench::{build_experiment, rate, run_measured};
use iba_stats::Table;

fn main() {
    // A lighter steady state: four full runs on one core.
    if std::env::var("IBA_STEADY_PACKETS").is_err() {
        std::env::set_var("IBA_STEADY_PACKETS", "10");
    }
    let mut t = Table::new(
        "Sweep S3: the proposal across IBA MTUs",
        &[
            "MTU (B)",
            "Connections",
            "Delivered QoS (B/cyc/node)",
            "QoS util host (%)",
            "QoS util switch (%)",
            "Worst delay/D",
            "Deadline misses",
        ],
    );
    for mtu in [256u32, 1024, 2048, 4096] {
        eprintln!("== MTU {mtu} ==");
        let exp = build_experiment(mtu);
        let m = run_measured(&exp, false);
        let delivered = m.obs.qos_bytes as f64 / m.window as f64 / m.hosts as f64;
        let misses: u64 = m.obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
        let worst = m
            .obs
            .delay_by_sl
            .groups()
            .map(|(_, d)| d.max_ratio())
            .fold(0.0f64, f64::max);
        t.row(vec![
            mtu.to_string(),
            exp.fill.accepted.to_string(),
            rate(delivered),
            format!("{:.2}", m.stats.host_link_qos_utilization),
            format!("{:.2}", m.stats.switch_link_qos_utilization),
            format!("{worst:.3}"),
            format!("{misses} / {}", m.obs.qos_packets),
        ]);
    }
    println!("{}", t.render());
}
