//! **Ablation A2** — why all guaranteed traffic belongs in the
//! high-priority table.
//!
//! Reproduces the failure mode the paper fixes. Two models:
//!
//! * **old model** (the authors' earlier work): BTS traffic in the
//!   high-priority table, DB (bandwidth-only) traffic in the
//!   low-priority table;
//! * **new model** (this paper): both in the high-priority table.
//!
//! A misbehaving BTS source then sends 4× its reservation. Under the
//! old model the DB connection is starved of its guaranteed bandwidth;
//! under the new model only the offender's own VL suffers.

#![forbid(unsafe_code)]

use iba_core::{
    weight_for_bandwidth, ArbEntry, Distance, ServiceLevel, SlTable, VirtualLane, VlArbConfig,
};
use iba_qos::QosManager;
use iba_sim::{Fabric, SimConfig, LINK_1X_MBPS};
use iba_stats::Table;
use iba_topo::{updown, SwitchId, Topology};
use iba_traffic::{cbr, ConnectionRequest};

/// Builds the 3-host shared-bottleneck fabric: two senders, one sink.
fn fabric_base() -> (Topology, iba_topo::RoutingTable) {
    let mut t = Topology::new(1, 4);
    t.attach_host(SwitchId(0), 0); // BTS sender (will oversend)
    t.attach_host(SwitchId(0), 1); // DB sender (well-behaved)
    t.attach_host(SwitchId(0), 2); // sink
    let r = updown::compute(&t);
    (t, r)
}

fn bts_request() -> ConnectionRequest {
    ConnectionRequest {
        id: 0,
        src: iba_topo::HostId(0),
        dst: iba_topo::HostId(2),
        sl: ServiceLevel::new(0).unwrap(),
        distance: Distance::D2,
        mean_bw_mbps: 600.0,
        packet_bytes: 256,
    }
}

fn db_request() -> ConnectionRequest {
    ConnectionRequest {
        id: 1,
        src: iba_topo::HostId(1),
        dst: iba_topo::HostId(2),
        sl: ServiceLevel::new(9).unwrap(),
        distance: Distance::D64,
        mean_bw_mbps: 600.0,
        packet_bytes: 256,
    }
}

/// Runs one model with a per-flow byte counter; returns the delivered
/// rates `(bts_mbps, db_mbps)` over a 4M-cycle steady window.
fn run_model(old_model: bool, oversend_factor: f64) -> (f64, f64) {
    run_counting(old_model, oversend_factor, 4_000_000)
}

fn run_counting(old_model: bool, oversend_factor: f64, window: u64) -> (f64, f64) {
    struct Counter {
        bytes: [u64; 2],
        measuring: bool,
    }
    impl iba_sim::Observer for Counter {
        fn on_delivered(&mut self, rec: &iba_sim::DeliveryRecord) {
            if self.measuring && (rec.flow as usize) < 2 {
                self.bytes[rec.flow as usize] += u64::from(rec.bytes);
            }
        }
    }

    let (topo, routing) = fabric_base();
    let bts = bts_request();
    let db = db_request();
    let mut fabric = Fabric::new(topo.clone(), routing.clone(), SimConfig::paper_default(256));

    if old_model {
        let w_bts = weight_for_bandwidth(bts.mean_bw_mbps, LINK_1X_MBPS).unwrap();
        let per_entry = (w_bts / 32).max(1) as u8;
        let high: Vec<ArbEntry> = (0..64)
            .map(|i| ArbEntry {
                vl: VirtualLane::data(0),
                weight: if i % 2 == 0 { per_entry } else { 0 },
            })
            .collect();
        let low = vec![ArbEntry {
            vl: VirtualLane::data(9),
            weight: 255,
        }];
        fabric.set_uniform_tables(&VlArbConfig {
            high,
            low,
            limit_of_high_priority: 10,
        });
    } else {
        let mut manager = QosManager::new(topo, routing, SlTable::paper_table1());
        manager.request(&bts).expect("BTS admitted");
        manager.request(&db).expect("DB admitted");
        manager.apply_tables(&mut fabric);
    }

    fabric.add_flow(cbr::scale_rate(
        &cbr::flow_for_connection(&bts, 0),
        oversend_factor,
    ));
    fabric.add_flow(cbr::flow_for_connection(&db, 128));

    let mut obs = Counter {
        bytes: [0; 2],
        measuring: false,
    };
    fabric.run_until(500_000, &mut obs);
    obs.measuring = true;
    let start = fabric.now();
    fabric.run_until(start + window, &mut obs);

    let to_mbps = |bytes: u64| bytes as f64 / window as f64 * LINK_1X_MBPS;
    (to_mbps(obs.bytes[0]), to_mbps(obs.bytes[1]))
}

fn main() {
    let mut t = Table::new(
        "Ablation A2: a BTS source oversending 4x its 600 Mbps reservation\n\
         (DB connection reserved 600 Mbps; shared 2.5 Gbps bottleneck)",
        &[
            "Model",
            "BTS delivered (Mbps)",
            "DB delivered (Mbps)",
            "DB gets its guarantee?",
        ],
    );
    for (name, old) in [
        ("old (DB in low-priority)", true),
        ("new (all in high-priority)", false),
    ] {
        let (bts_mbps, db_mbps) = run_model(old, 4.0);
        t.row(vec![
            name.to_string(),
            format!("{bts_mbps:.0}"),
            format!("{db_mbps:.0}"),
            if db_mbps >= 0.95 * 600.0 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Under the old model the oversending high-priority source starves the\n\
         DB connection below its reservation; the paper's model confines the\n\
         damage to the offender's own VL."
    );
}
