//! **Figure 5** — Average packet jitter for small packet size,
//! (a) SLs 0–4 and (b) SLs 5–9.
//!
//! Per SL, the percentage of packets received within each interarrival
//! interval (deviation from the nominal IAT in fractions of the IAT).

#![forbid(unsafe_code)]

use iba_bench::{build_experiment, run_measured};
use iba_stats::{Table, JITTER_BIN_LABELS};

fn main() {
    let exp = build_experiment(256);
    let m = run_measured(&exp, false);

    for (fig, sls) in [("(a)", 0usize..5), ("(b)", 5..10)] {
        let mut header: Vec<String> = vec!["Interval".to_string()];
        header.extend(sls.clone().map(|s| format!("SL {s}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            &format!("Figure 5{fig}: % of packets received within interval (small packets)"),
            &header_refs,
        );
        for (bin, label) in JITTER_BIN_LABELS.iter().enumerate() {
            let mut row = vec![label.to_string()];
            for sl in sls.clone() {
                let v = m.obs.jitter.group(sl).map_or(0.0, |h| h.percentages()[bin]);
                row.push(format!("{v:.2}"));
            }
            t.row(row);
        }
        println!("{}", t.render());
    }

    // Shape check echoed for EXPERIMENTS.md: max |deviation| per SL.
    println!("max |deviation|/IAT per SL:");
    for (sl, h) in m.obs.jitter.groups() {
        println!(
            "  SL {sl}: {:.3} ({} samples, central {:.1}%)",
            h.max_abs_deviation(),
            h.total(),
            h.central_pct()
        );
    }
}
