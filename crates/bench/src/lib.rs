//! Shared harness for the experiment binaries: builds the paper's
//! evaluation setup (16-switch irregular fabric, Table 1 SLs, fill to
//! saturation, transient + steady-state measurement) and exposes knobs
//! via environment variables so every table/figure binary runs the same
//! pipeline.
//!
//! | Variable | Default | Meaning |
//! |----------|---------|---------|
//! | `IBA_SWITCHES` | 16 | fabric size (paper headline: 16 / 64 hosts) |
//! | `IBA_SEED` | 42 | topology + workload seed |
//! | `IBA_STEADY_PACKETS` | 30 | steady state runs until the slowest connection emitted this many packets |
//! | `IBA_REJECT_LIMIT` | 120 | consecutive rejections that end the fill phase |

#![forbid(unsafe_code)]

pub mod microbench;

use iba_core::SlTable;
use iba_qos::{FillReport, QosFrame, QosObserver};
use iba_sim::{FabricStats, SimConfig};
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::updown;
use iba_traffic::besteffort::BackgroundConfig;
use iba_traffic::{RequestGenerator, WorkloadConfig};

/// Reads a numeric environment knob.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The paper's experiment setup for one packet size.
pub struct Experiment {
    /// The filled QoS frame.
    pub frame: QosFrame,
    /// Fill-phase outcome.
    pub fill: FillReport,
    /// Seed used everywhere.
    pub seed: u64,
}

/// Builds the paper's fabric, fills it to saturation and returns the
/// ready-to-run experiment.
pub fn build_experiment(mtu: u32) -> Experiment {
    let switches = env_u64("IBA_SWITCHES", 16) as usize;
    let seed = env_u64("IBA_SEED", 42);
    build_experiment_sized(mtu, switches, seed)
}

/// Same, with explicit size and seed (used by the size sweep).
pub fn build_experiment_sized(mtu: u32, switches: usize, seed: u64) -> Experiment {
    let reject_limit = env_u64("IBA_REJECT_LIMIT", 120) as u32;
    let topo = generate(IrregularConfig::with_switches(switches, seed));
    let routing = updown::compute(&topo);
    let sl_table = SlTable::paper_table1();
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        sl_table.clone(),
        SimConfig::paper_default(mtu),
    );
    let mut gen = RequestGenerator::new(&topo, &sl_table, &WorkloadConfig::new(mtu, seed ^ 0xF00D));
    let fill = frame.fill(&mut gen, reject_limit, 100_000);
    Experiment { frame, fill, seed }
}

/// Outcome of a measured run.
pub struct Measured {
    /// The observer with all delay/jitter samples from the steady state.
    pub obs: QosObserver,
    /// Fabric-level throughput/utilisation statistics.
    pub stats: FabricStats,
    /// Number of hosts (for per-node normalisation).
    pub hosts: usize,
    /// Steady-state window length (cycles).
    pub window: u64,
}

/// Runs the experiment: transient period (twice the slowest IAT), then
/// a steady state until the slowest connection has emitted
/// `IBA_STEADY_PACKETS` packets. Background best-effort traffic fills
/// the remaining 20% when `background` is set.
pub fn run_measured(exp: &Experiment, background: bool) -> Measured {
    let steady_packets = env_u64("IBA_STEADY_PACKETS", 30);
    let bg = background.then(BackgroundConfig::default);
    let (mut fabric, mut obs) = exp.frame.build_fabric(exp.seed ^ 0xABCD, bg.as_ref());

    let slowest_iat = exp.frame.steady_state_cycles(1);
    let transient = slowest_iat * 2;
    let steady = exp.frame.steady_state_cycles(steady_packets);

    fabric.run_until(transient, &mut obs);
    obs.reset_samples();
    fabric.reset_stats();
    fabric.run_until(transient + steady, &mut obs);

    let stats = fabric.summarize();
    Measured {
        obs,
        stats,
        hosts: exp.frame.manager.topology().num_hosts(),
        window: steady,
    }
}

/// Formats a percentage for the tables.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Human label for a deadline-threshold fraction: `D/30 … D/2, 3D/4, D`.
pub fn threshold_label(t: f64) -> String {
    if (t - 1.0).abs() < 1e-9 {
        "D".to_string()
    } else if (t - 0.75).abs() < 1e-9 {
        "3D/4".to_string()
    } else {
        format!("D/{:.0}", 1.0 / t)
    }
}

/// Formats a small rate (bytes/cycle/node).
pub fn rate(v: f64) -> String {
    format!("{v:.4}")
}
