//! Shared glue for the experiment binaries: the experiment pipeline
//! itself lives in `iba-harness` (pure functions of explicit
//! parameters); this crate layers the environment knobs on top so every
//! table/figure binary runs the same pipeline with the same defaults.
//!
//! | Variable | Default | Meaning |
//! |----------|---------|---------|
//! | `IBA_SWITCHES` | 16 | fabric size (paper headline: 16 / 64 hosts) |
//! | `IBA_SEED` | 42 | topology + workload seed |
//! | `IBA_STEADY_PACKETS` | 30 | steady state runs until the slowest connection emitted this many packets |
//! | `IBA_REJECT_LIMIT` | 120 | consecutive rejections that end the fill phase |
//! | `IBA_THREADS` | available parallelism | worker threads for sweeps |

#![forbid(unsafe_code)]

pub mod microbench;

pub use iba_harness::{Experiment, Measured, PointOutcome, SimPoint};

/// Reads a numeric environment knob. Callers pass documented `IBA_*`
/// names only (see README's knob table).
pub fn env_u64(name: &str, default: u64) -> u64 {
    // lint: allow(no-env-read) -- generic reader; every call site passes a documented IBA_* literal
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the paper's fabric, fills it to saturation and returns the
/// ready-to-run experiment (`IBA_SWITCHES` / `IBA_SEED` sized).
pub fn build_experiment(mtu: u32) -> Experiment {
    let switches = env_u64("IBA_SWITCHES", 16) as usize;
    let seed = env_u64("IBA_SEED", 42);
    build_experiment_sized(mtu, switches, seed)
}

/// Same, with explicit size and seed (used by the size sweep).
pub fn build_experiment_sized(mtu: u32, switches: usize, seed: u64) -> Experiment {
    let reject_limit = env_u64("IBA_REJECT_LIMIT", 120) as u32;
    iba_harness::build_experiment_sized(mtu, switches, seed, reject_limit)
}

/// Runs the experiment: transient period, then a steady state of
/// `IBA_STEADY_PACKETS` packets on the slowest connection.
pub fn run_measured(exp: &Experiment, background: bool) -> Measured {
    let steady_packets = env_u64("IBA_STEADY_PACKETS", 30);
    iba_harness::run_measured(exp, steady_packets, background)
}

/// A [`SimPoint`] with the environment defaults applied: the same run
/// [`build_experiment`] + [`run_measured`] would execute.
pub fn env_point(mtu: u32, background: bool) -> SimPoint {
    SimPoint {
        switches: env_u64("IBA_SWITCHES", 16) as usize,
        seed: env_u64("IBA_SEED", 42),
        mtu,
        background,
        steady_packets: env_u64("IBA_STEADY_PACKETS", 30),
        reject_limit: env_u64("IBA_REJECT_LIMIT", 120) as u32,
    }
}

/// Formats a percentage for the tables.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Human label for a deadline-threshold fraction: `D/30 … D/2, 3D/4, D`.
pub fn threshold_label(t: f64) -> String {
    if (t - 1.0).abs() < 1e-9 {
        "D".to_string()
    } else if (t - 0.75).abs() < 1e-9 {
        "3D/4".to_string()
    } else {
        format!("D/{:.0}", 1.0 / t)
    }
}

/// Formats a small rate (bytes/cycle/node).
pub fn rate(v: f64) -> String {
    format!("{v:.4}")
}
