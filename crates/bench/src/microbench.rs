//! A dependency-free micro-benchmark harness (the workspace builds
//! offline, so the usual external harnesses are unavailable).
//!
//! The protocol mirrors the classic warmup/sample design: each
//! benchmark is warmed up, the per-sample iteration count is calibrated
//! so one sample takes at least [`MIN_SAMPLE`], and then a fixed number
//! of samples is timed. The report shows the minimum (least-noise
//! estimate), median and mean nanoseconds per iteration.
//!
//! Knobs: `IBA_BENCH_SAMPLES` (default 20) and `IBA_BENCH_FILTER`
//! (substring match on benchmark names, like `cargo bench -- <filter>`
//! which is also honoured via argv).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target minimum wall-clock time of one timed sample.
const MIN_SAMPLE: Duration = Duration::from_millis(2);

/// Warmup budget before calibration.
const WARMUP: Duration = Duration::from_millis(200);

/// One timed benchmark's summary statistics.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Benchmark name as printed.
    pub name: String,
    /// Fastest observed sample (ns/iter).
    pub min_ns: f64,
    /// Median sample (ns/iter).
    pub median_ns: f64,
    /// Mean over all samples (ns/iter).
    pub mean_ns: f64,
    /// 50th-percentile sample (ns/iter); equals `median_ns`.
    pub p50_ns: f64,
    /// 99th-percentile sample (ns/iter, nearest-rank).
    pub p99_ns: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
}

/// Nearest-rank percentile of an **ascending-sorted** slice; `0.0` for
/// an empty slice (so degenerate zero-sample runs report gracefully
/// instead of panicking).
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Collects and prints benchmark results; construct one per binary via
/// [`Harness::from_env`] and call [`Harness::bench`] per case.
pub struct Harness {
    filter: Option<String>,
    samples: usize,
    results: Vec<Summary>,
}

impl Harness {
    /// Builds a harness honouring `IBA_BENCH_SAMPLES`, `IBA_BENCH_FILTER`
    /// and a trailing argv filter (`cargo bench --bench alloc -- defrag`).
    pub fn from_env() -> Self {
        let argv_filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        let filter = std::env::var("IBA_BENCH_FILTER").ok().or(argv_filter);
        let samples = std::env::var("IBA_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20usize)
            .max(3);
        Harness {
            filter,
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f`, printing one line. The closure's return value is fed
    /// through [`black_box`] so the measured work is not optimised away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Some(ref needle) = self.filter {
            if !name.contains(needle.as_str()) {
                return;
            }
        }

        // Warmup.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            black_box(f());
        }

        // Calibrate: grow the per-sample iteration count until one
        // sample crosses MIN_SAMPLE.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= MIN_SAMPLE || iters >= 1 << 30 {
                break;
            }
            // Aim slightly past the target to converge in few rounds.
            let scale = MIN_SAMPLE.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = (iters as f64 * scale * 1.5).ceil() as u64;
        }

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));

        let min_ns = per_iter[0];
        let median_ns = per_iter[per_iter.len() / 2];
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let summary = Summary {
            name: name.to_string(),
            min_ns,
            median_ns,
            mean_ns,
            p50_ns: percentile(&per_iter, 0.50),
            p99_ns: percentile(&per_iter, 0.99),
            iters_per_sample: iters,
        };
        println!(
            "{:<48} min {:>12}  median {:>12}  mean {:>12}  ({} iters/sample x {})",
            summary.name,
            fmt_ns(min_ns),
            fmt_ns(median_ns),
            fmt_ns(mean_ns),
            iters,
            self.samples,
        );
        self.results.push(summary);
    }

    /// Finished results, in execution order.
    pub fn results(&self) -> &[Summary] {
        &self.results
    }

    /// Prints the closing line; call at the end of `main`.
    pub fn finish(self) {
        println!("-- {} benchmark(s) run", self.results.len());
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_filters() {
        let mut h = Harness {
            filter: Some("keep".to_string()),
            samples: 3,
            results: Vec::new(),
        };
        let mut acc = 0u64;
        h.bench("keep/this", || {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        h.bench("skip/this", || 0u64);
        assert_eq!(h.results().len(), 1);
        let s = &h.results()[0];
        assert_eq!(s.name, "keep/this");
        assert!(s.min_ns > 0.0 && s.min_ns <= s.mean_ns * 1.0001);
        assert!(s.p50_ns >= s.min_ns && s.p99_ns >= s.p50_ns);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn percentile_is_nearest_rank_and_total() {
        assert_eq!(percentile(&[], 0.99), 0.0, "empty slice must not panic");
        let one = [7.5];
        assert_eq!(percentile(&one, 0.0), 7.5);
        assert_eq!(percentile(&one, 0.99), 7.5);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        // rank = round(0.5 * 99) = 50 -> the 51st value.
        assert_eq!(percentile(&v, 0.50), 51.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
    }
}
