//! End-to-end demonstration of the acceptance criterion, now running
//! through the `iba-lint` engine that `cargo xtask lint` wraps: the
//! rules pass on the tree as committed and fail when a violation is
//! seeded into real source (an `unwrap()` added to
//! `crates/core/src/table.rs`).

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has two ancestors")
        .to_path_buf()
}

fn rules_of(report: &iba_lint::FileReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn real_table_rs_is_clean_until_an_unwrap_is_seeded() {
    let rel = "crates/core/src/table.rs";
    let source = std::fs::read_to_string(repo_root().join(rel)).expect("table.rs readable");

    // As committed: no findings.
    let clean = iba_lint::lint_source(rel, &source);
    assert!(
        clean.findings.is_empty(),
        "committed table.rs must lint clean: {:?}",
        clean.findings.first()
    );

    // Seed the violation from the acceptance criterion.
    let seeded = format!("{source}\npub fn seeded(x: Option<u32>) -> u32 {{ x.unwrap() }}\n");
    let report = iba_lint::lint_source(rel, &seeded);
    assert_eq!(
        rules_of(&report),
        vec!["no-panic"],
        "the seeded unwrap must be the one finding"
    );
    assert_eq!(report.findings[0].line as usize, seeded.lines().count());
}

#[test]
fn real_crate_roots_carry_forbid_unsafe() {
    let root = repo_root();
    for rel in [
        "crates/core/src/lib.rs",
        "crates/sim/src/lib.rs",
        "crates/qos/src/lib.rs",
        "crates/verify/src/lib.rs",
        "crates/verify/src/main.rs",
        "crates/lint/src/lib.rs",
        "crates/xtask/src/lib.rs",
        "crates/xtask/src/main.rs",
        "crates/cli/src/main.rs",
    ] {
        assert!(iba_lint::is_crate_root(rel), "{rel} should be a crate root");
        let source = std::fs::read_to_string(root.join(rel)).expect("crate root readable");
        let report = iba_lint::lint_source(rel, &source);
        assert!(
            !rules_of(&report).contains(&"forbid-unsafe"),
            "{rel} lacks #![forbid(unsafe_code)]"
        );
    }
}

#[test]
fn seeded_occupancy_arithmetic_fails_outside_core() {
    let rel = "crates/cli/src/commands.rs";
    let source = std::fs::read_to_string(repo_root().join(rel)).expect("commands.rs readable");
    assert!(iba_lint::lint_source(rel, &source).findings.is_empty());

    let seeded = format!("{source}\nfn bad(t: &T) -> u64 {{ t.occupancy() << 3 }}\n");
    assert!(
        rules_of(&iba_lint::lint_source(rel, &seeded)).contains(&"no-raw-occupancy-arith"),
        "seeded raw occupancy arithmetic must be flagged"
    );
}

#[test]
fn seeded_hashmap_fails_in_qos_but_pragma_clears_it() {
    let rel = "crates/qos/src/cac.rs";
    let source = std::fs::read_to_string(repo_root().join(rel)).expect("cac.rs readable");
    assert!(iba_lint::lint_source(rel, &source).findings.is_empty());

    let seeded = format!("{source}\nuse std::collections::HashMap as SeededMap;\n");
    assert_eq!(
        rules_of(&iba_lint::lint_source(rel, &seeded)),
        vec!["no-unordered-iter"]
    );

    let allowed = format!(
        "{source}\n// lint: allow(no-unordered-iter) -- seeded test pragma\nuse std::collections::HashMap as SeededMap;\n"
    );
    let report = iba_lint::lint_source(rel, &allowed);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn lints_doc_catalog_matches_registry() {
    // The same cross-check `cargo xtask check` runs (lints-doc step),
    // exercised hermetically: every registered rule is documented with
    // its severity, and no ghost rules are documented.
    let doc = std::fs::read_to_string(repo_root().join("LINTS.md")).expect("LINTS.md readable");
    let rows = xtask::extract_lint_rule_rows(&doc);
    for rule in iba_lint::RULES {
        let row = rows.iter().find(|(n, _)| n == rule.name);
        let Some((_, rest)) = row else {
            panic!("rule `{}` is not documented in LINTS.md", rule.name);
        };
        assert!(
            rest.contains(rule.severity.name()),
            "LINTS.md row for `{}` must state severity `{}`",
            rule.name,
            rule.severity.name()
        );
    }
    for (name, _) in &rows {
        assert!(
            iba_lint::RULES.iter().any(|r| r.name == name),
            "LINTS.md documents unregistered rule `{name}`"
        );
    }
}
