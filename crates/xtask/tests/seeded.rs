//! End-to-end demonstration of the acceptance criterion: the scanners
//! pass on the tree as committed and fail when a violation is seeded
//! into real source (an `unwrap()` added to `crates/core/src/table.rs`).

use std::path::PathBuf;
use xtask::{scan_forbid_unsafe, scan_no_panics, scan_occupancy_arithmetic};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has two ancestors")
        .to_path_buf()
}

#[test]
fn real_table_rs_is_clean_until_an_unwrap_is_seeded() {
    let rel = "crates/core/src/table.rs";
    let source = std::fs::read_to_string(repo_root().join(rel)).expect("table.rs readable");

    // As committed: no findings.
    assert!(
        scan_no_panics(rel, &source).is_empty(),
        "committed table.rs must be panic-free: {:?}",
        scan_no_panics(rel, &source).first()
    );

    // Seed the violation from the acceptance criterion.
    let seeded = format!("{source}\npub fn seeded(x: Option<u32>) -> u32 {{ x.unwrap() }}\n");
    let findings = scan_no_panics(rel, &seeded);
    assert_eq!(
        findings.len(),
        1,
        "the seeded unwrap must be the one finding"
    );
    assert_eq!(findings[0].rule, "no-panics");
    assert_eq!(findings[0].line, seeded.lines().count());
}

#[test]
fn real_crate_roots_carry_forbid_unsafe() {
    let root = repo_root();
    for rel in [
        "crates/core/src/lib.rs",
        "crates/sim/src/lib.rs",
        "crates/qos/src/lib.rs",
        "crates/verify/src/lib.rs",
        "crates/verify/src/main.rs",
        "crates/xtask/src/lib.rs",
        "crates/xtask/src/main.rs",
        "crates/cli/src/main.rs",
    ] {
        let source = std::fs::read_to_string(root.join(rel)).expect("crate root readable");
        assert!(
            scan_forbid_unsafe(rel, &source).is_empty(),
            "{rel} lacks #![forbid(unsafe_code)]"
        );
    }
}

#[test]
fn seeded_occupancy_arithmetic_fails_outside_core() {
    let rel = "crates/cli/src/commands.rs";
    let source = std::fs::read_to_string(repo_root().join(rel)).expect("commands.rs readable");
    assert!(scan_occupancy_arithmetic(rel, &source).is_empty());

    let seeded = format!("{source}\nfn bad(t: &T) -> u64 {{ t.occupancy() & (1 << 3) }}\n");
    assert!(
        !scan_occupancy_arithmetic(rel, &seeded).is_empty(),
        "seeded raw occupancy arithmetic must be flagged"
    );
}
