//! Source scanners behind `cargo xtask check`.
//!
//! Dependency-free static analysis that encodes this workspace's
//! local rules — things `rustc` and `clippy` cannot know:
//!
//! * [`scan_no_panics`] — the always-on crates (`core`, `sim`, `qos`)
//!   must not contain `.unwrap()`, `.expect(` or `panic!(` in non-test
//!   code; failures there must surface as `Result`s or named-invariant
//!   `assert!`s, never as anonymous unwraps.
//! * [`scan_occupancy_arithmetic`] — the occupancy bitmask is
//!   `iba-core`'s private representation; other crates may pass it to
//!   core APIs but never manipulate it with raw bit operations.
//! * [`scan_forbid_unsafe`] — every crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * [`extract_relative_links`] — markdown link targets for the
//!   doc-link lint (existence is checked by the runner).
//!
//! All scanners are pure functions over `(relative path, file
//! contents)` so the tests can feed seeded violations without touching
//! the filesystem.

#![forbid(unsafe_code)]

use std::fmt;

/// One rule violation, pointing at a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Repository-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier.
    pub rule: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.detail
        )
    }
}

/// Crates whose non-test source must be panic-free (always-on control
/// plane: allocator core, simulator, admission control).
pub const PANIC_FREE_PREFIXES: &[&str] =
    &["crates/core/src/", "crates/sim/src/", "crates/qos/src/"];

/// Tokens banned by [`scan_no_panics`]. `assert!`/`unreachable!` stay
/// permitted: they document impossibilities instead of silencing them.
const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!("];

/// Bit-manipulation tokens that indicate raw occupancy arithmetic when
/// they share a file with an `.occupancy()` call. Shift operators are
/// matched space-delimited (rustfmt guarantees the spacing) so the
/// `>>` of nested generics like `Vec<Vec<u8>>` never false-positives.
const BIT_TOKENS: &[&str] = &[
    " << ",
    " >> ",
    "count_ones",
    "trailing_zeros",
    "leading_zeros",
    "&=",
    "|=",
    " ^ ",
    "& (1",
    "&(1",
];

/// The code portion of a line: string/char literal contents removed
/// (so a `{` or `.unwrap()` inside a string never confuses the
/// scanners), then truncated at a `//` comment.
fn code_of(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '"' => {
                out.push('"');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal (its contents are dropped) vs lifetime
                // (kept verbatim): a literal closes within two chars.
                if i + 2 < chars.len() && chars[i + 1] == '\\' {
                    let mut j = i + 2;
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    out.push_str("''");
                    i = j + 1;
                } else if i + 2 < chars.len() && chars[i + 2] == '\'' {
                    out.push_str("''");
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(chars[i]);
                i += 1;
            }
        }
    }
    match out.find("//") {
        Some(p) => out[..p].to_string(),
        None => out,
    }
}

fn brace_delta(code: &str) -> i32 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Line-by-line walk of `source` yielding `(line_number, code)` for
/// lines *outside* `#[cfg(test)]` modules, with comments stripped.
fn non_test_code_lines(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut armed = false; // saw #[cfg(test)], waiting for the mod line
    let mut in_test = false;
    let mut depth = 0i32;
    for (idx, raw) in source.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("//") {
            continue; // includes `///` and `//!` (doc examples are not code)
        }
        let code = code_of(raw);
        if in_test {
            depth += brace_delta(&code);
            if depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            armed = true;
            continue;
        }
        if armed {
            if code.trim().is_empty() || code.trim_start().starts_with("#[") {
                continue; // blank lines / further attributes keep it armed
            }
            armed = false;
            if code.contains("mod ") {
                depth = brace_delta(&code);
                if code.contains('{') {
                    if depth > 0 {
                        in_test = true;
                    }
                    continue;
                }
                continue; // `mod foo;` — out-of-line test module
            }
            // Attribute applied to something other than a module
            // (e.g. a fn): fall through and scan normally.
        }
        out.push((idx + 1, code));
    }
    out
}

/// Bans `.unwrap()` / `.expect(` / `panic!(` in the non-test code of
/// the panic-free crates. Other paths return no findings.
#[must_use]
pub fn scan_no_panics(rel_path: &str, source: &str) -> Vec<Finding> {
    if !PANIC_FREE_PREFIXES.iter().any(|p| rel_path.starts_with(p)) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (line, code) in non_test_code_lines(source) {
        for tok in PANIC_TOKENS {
            if code.contains(tok) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line,
                    rule: "no-panics",
                    detail: format!("`{tok}` in non-test code of a panic-free crate"),
                });
            }
        }
    }
    findings
}

/// Flags files outside `crates/core` that both call `.occupancy()` and
/// perform raw bit manipulation — the mask must only be interpreted by
/// core APIs (`is_canonical`, `select`, `slots()`, …).
#[must_use]
pub fn scan_occupancy_arithmetic(rel_path: &str, source: &str) -> Vec<Finding> {
    if rel_path.starts_with("crates/core/") || rel_path.starts_with("crates/xtask/") {
        return Vec::new();
    }
    let lines = non_test_code_lines(source);
    if !lines.iter().any(|(_, c)| c.contains(".occupancy()")) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (line, code) in &lines {
        for tok in BIT_TOKENS {
            if code.contains(tok) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: *line,
                    rule: "raw-occupancy",
                    detail: format!(
                        "`{tok}` in a file that reads `.occupancy()`; interpret the mask through iba-core APIs"
                    ),
                });
            }
        }
    }
    findings
}

/// Requires `#![forbid(unsafe_code)]` in a crate-root source file.
#[must_use]
pub fn scan_forbid_unsafe(rel_path: &str, source: &str) -> Vec<Finding> {
    if source.contains("#![forbid(unsafe_code)]") {
        Vec::new()
    } else {
        vec![Finding {
            file: rel_path.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            detail: "crate root lacks #![forbid(unsafe_code)]".to_string(),
        }]
    }
}

/// The metric names declared in `METRIC_NAMES` of
/// `crates/obs/src/metrics.rs`: every quoted string between the
/// `METRIC_NAMES` declaration and its closing `];`. Returns an empty
/// vector when the declaration is absent (the runner treats that as a
/// failure, so a renamed constant cannot silently disable the gate).
#[must_use]
pub fn extract_metric_names(source: &str) -> Vec<String> {
    // Anchor on the declaration, not the bare identifier: doc comments
    // mention `METRIC_NAMES` long before the constant itself.
    let Some(start) = source.find("const METRIC_NAMES") else {
        return Vec::new();
    };
    let Some(end) = source[start..].find("];") else {
        return Vec::new();
    };
    let body = &source[start..start + end];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let Some(close) = after.find('"') else {
            break;
        };
        out.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    out
}

/// Relative markdown link targets in `source`, as `(line, target)`.
/// Absolute URLs, `mailto:` and pure-fragment links are skipped; a
/// `#section` suffix on a relative target is dropped.
#[must_use]
pub fn extract_relative_links(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while let Some(p) = line[i..].find("](") {
            let start = i + p + 2;
            let Some(q) = line[start..].find(')') else {
                break;
            };
            let target = &line[start..start + q];
            i = start + q;
            if target.is_empty()
                || target.starts_with('#')
                || target.contains("://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let path = target.split('#').next().unwrap_or(target);
            if !path.is_empty() {
                out.push((idx + 1, path.to_string()));
            }
        }
        let _ = bytes;
    }
    out
}

/// Extracts `(name, ns_per_op)` pairs from a `BENCH_*.json` document
/// written by `iba_obs::bench_json`. A deliberately narrow line
/// scanner (no JSON parser in the workspace): a bench record is a
/// `"name": "<...>"` line followed — before the next name — by an
/// `"ns_per_op": <float>` line. Unparseable lines are skipped, so the
/// caller should treat an empty result as an error.
#[must_use]
pub fn extract_bench_ns(source: &str) -> Vec<(String, f64)> {
    fn quoted(line: &str, key: &str) -> Option<String> {
        let rest = line.split_once(key)?.1;
        let rest = rest.split_once('"')?.1;
        Some(rest.split_once('"')?.0.to_string())
    }
    let mut out = Vec::new();
    let mut pending: Option<String> = None;
    for line in source.lines() {
        if line.contains("\"name\":") {
            pending = quoted(line, "\"name\":");
        } else if line.contains("\"ns_per_op\":") {
            if let Some(name) = pending.take() {
                let value = line
                    .split_once("\"ns_per_op\":")
                    .map(|(_, v)| v.trim().trim_end_matches(','))
                    .and_then(|v| v.parse::<f64>().ok());
                if let Some(ns) = value {
                    out.push((name, ns));
                }
            }
        }
    }
    out
}

/// One benchmark's baseline-vs-current comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDelta {
    /// Benchmark name as it appears in both documents.
    pub name: String,
    /// Baseline ns/op.
    pub base_ns: f64,
    /// Current ns/op.
    pub cur_ns: f64,
    /// `cur / base` (1.0 = unchanged, 2.0 = twice as slow).
    pub ratio: f64,
    /// True when `ratio > 1 + tolerance`.
    pub regressed: bool,
}

/// Compares two bench documents name-by-name. `tolerance` is the
/// allowed fractional slowdown (0.25 = fail beyond +25% wall clock).
/// Benchmarks present on only one side are ignored — adding or
/// retiring a benchmark is not a regression — but thread-scaling rows
/// and microbenchmarks that exist in both must stay within tolerance.
#[must_use]
pub fn compare_benches(baseline: &str, current: &str, tolerance: f64) -> Vec<BenchDelta> {
    let base = extract_bench_ns(baseline);
    let cur = extract_bench_ns(current);
    let mut out = Vec::new();
    for (name, base_ns) in &base {
        let Some((_, cur_ns)) = cur.iter().find(|(n, _)| n == name) else {
            continue;
        };
        // Sub-nanosecond baselines are noise-dominated; never gate on
        // them (and avoid dividing by zero).
        let ratio = if *base_ns > 1.0 {
            cur_ns / base_ns
        } else {
            1.0
        };
        out.push(BenchDelta {
            name: name.clone(),
            base_ns: *base_ns,
            cur_ns: *cur_ns,
            ratio,
            regressed: ratio > 1.0 + tolerance,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"
pub fn f(x: Option<u32>) -> u32 {
    // .unwrap() in a comment is fine
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap(); // allowed: test code
        panic!("also allowed here");
    }
}
"#;

    #[test]
    fn clean_file_passes() {
        assert!(scan_no_panics("crates/core/src/x.rs", CLEAN).is_empty());
    }

    #[test]
    fn seeded_unwrap_is_caught() {
        let bad = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = scan_no_panics("crates/sim/src/x.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panics");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn seeded_panic_and_expect_are_caught() {
        let bad = "fn g() {\n    h().expect(\"boom\");\n    panic!(\"no\");\n}\n";
        let f = scan_no_panics("crates/qos/src/x.rs", bad);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn other_crates_are_out_of_scope_for_panics() {
        let bad = "fn f() { panic!(); }";
        assert!(scan_no_panics("crates/cli/src/x.rs", bad).is_empty());
        assert!(scan_no_panics("crates/core/tests/x.rs", bad).is_empty());
    }

    #[test]
    fn doc_comment_examples_are_skipped() {
        let doc = "/// ```\n/// x.unwrap();\n/// ```\npub fn f() {}\n";
        assert!(scan_no_panics("crates/core/src/x.rs", doc).is_empty());
    }

    #[test]
    fn occupancy_passthrough_is_allowed() {
        let ok = "fn f(t: &T) -> bool { is_canonical(t.occupancy()) }\n";
        assert!(scan_occupancy_arithmetic("crates/bench/src/x.rs", ok).is_empty());
    }

    #[test]
    fn occupancy_bit_twiddling_is_caught() {
        let bad = "fn f(t: &T) -> u64 { let o = t.occupancy(); o & (1 << 3) }\n";
        let f = scan_occupancy_arithmetic("crates/cli/src/x.rs", bad);
        assert!(!f.is_empty());
        assert_eq!(f[0].rule, "raw-occupancy");
    }

    #[test]
    fn occupancy_rule_ignores_core() {
        let bad = "fn f(t: &T) -> u64 { let o = t.occupancy(); o << 1 }\n";
        assert!(scan_occupancy_arithmetic("crates/core/src/table.rs", bad).is_empty());
    }

    #[test]
    fn forbid_unsafe_detects_presence_and_absence() {
        assert!(scan_forbid_unsafe("crates/a/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
        let f = scan_forbid_unsafe("crates/a/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "forbid-unsafe");
    }

    #[test]
    fn metric_names_are_extracted() {
        let src = r#"
//! Doc comment mentioning [`METRIC_NAMES`]; must not confuse the anchor.
pub const METRIC_NAMES: &[&str] = &[
    "alloc_probe_total",
    "arb_grant_total", // per-VL
    "cac_admit_total",
];
pub const OTHER: &[&str] = &["not_a_metric"];
"#;
        assert_eq!(
            extract_metric_names(src),
            vec!["alloc_probe_total", "arb_grant_total", "cac_admit_total"]
        );
        assert!(extract_metric_names("no such constant").is_empty());
        assert!(extract_metric_names("const METRIC_NAMES with no close").is_empty());
    }

    #[test]
    fn relative_links_are_extracted() {
        let md = "See [design](DESIGN.md#goals) and [site](https://example.com) and [top](#x).\n";
        let links = extract_relative_links(md);
        assert_eq!(links, vec![(1, "DESIGN.md".to_string())]);
    }

    #[test]
    fn braces_and_tokens_inside_literals_are_ignored() {
        // The unbalanced `{` lives in a string: the test-module brace
        // tracking must not be thrown off, so the trailing unwrap in
        // real code is still caught.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { assert!(s.starts_with(\"graph {\")); }\n}\n\npub fn f() { y.unwrap() }\n";
        let f = scan_no_panics("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 6);
        // A banned token inside a string is not a finding either.
        let s2 = "pub fn f() -> &'static str { \"call .unwrap() later\" }\n";
        assert!(scan_no_panics("crates/core/src/x.rs", s2).is_empty());
    }

    #[test]
    fn test_module_boundary_is_tracked() {
        // Code *after* a test module is scanned again.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\npub fn f() { y.unwrap() }\n";
        let f = scan_no_panics("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 6);
    }

    fn bench_doc(rows: &[(&str, f64)]) -> String {
        let mut out = String::from("{\n  \"suite\": \"sim\",\n  \"benches\": [\n");
        for (name, ns) in rows {
            out.push_str(&format!(
                "    {{\n      \"name\": \"{name}\",\n      \"iters\": 8,\n      \
                 \"ns_per_op\": {ns},\n      \"p50_ns\": {ns},\n      \"p99_ns\": {ns}\n    }},\n"
            ));
        }
        out.push_str("  ],\n  \"per_vl_shares\": []\n}\n");
        out
    }

    #[test]
    fn bench_ns_pairs_are_extracted_in_order() {
        let doc = bench_doc(&[("sim/hot", 120.5), ("harness/sweep", 9000.0)]);
        assert_eq!(
            extract_bench_ns(&doc),
            vec![
                ("sim/hot".to_string(), 120.5),
                ("harness/sweep".to_string(), 9000.0)
            ]
        );
        assert!(extract_bench_ns("{}").is_empty());
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let base = bench_doc(&[("a", 100.0), ("b", 100.0), ("gone", 50.0)]);
        let cur = bench_doc(&[("a", 124.0), ("b", 126.0), ("new", 1.0)]);
        let deltas = compare_benches(&base, &cur, 0.25);
        // "gone"/"new" are unpaired and ignored; only b crosses +25%.
        assert_eq!(deltas.len(), 2);
        assert!(!deltas[0].regressed, "a is within tolerance: {deltas:?}");
        assert!(deltas[1].regressed, "b is past tolerance: {deltas:?}");
    }

    #[test]
    fn sub_nanosecond_baselines_never_gate() {
        let base = bench_doc(&[("tiny", 0.4)]);
        let cur = bench_doc(&[("tiny", 400.0)]);
        let deltas = compare_benches(&base, &cur, 0.25);
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].regressed);
    }
}
