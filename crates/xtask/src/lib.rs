//! Pure helpers behind `cargo xtask check` / `bench-compare`.
//!
//! Source-discipline scanning lives in the `iba-lint` crate (a real
//! lexer plus a token-stream rule engine; see `LINTS.md`) — the
//! line-oriented string scanners that used to live here were retired
//! when it landed (they could not see raw strings or nested block
//! comments). What remains are the document-shaped extractors:
//!
//! * [`extract_relative_links`] — markdown link targets for the
//!   doc-link lint (existence is checked by the runner).
//! * [`extract_metric_names`] — the `METRIC_NAMES` declaration, for
//!   the `METRICS.md` cross-check.
//! * [`extract_lint_rule_rows`] — the `LINTS.md` rule-catalog table,
//!   for the cross-check against `iba_lint::RULES`.
//! * [`extract_bench_ns`] / [`compare_benches`] — `BENCH_*.json`
//!   parsing and the regression gate.
//! * [`parse_require`] / [`check_speedups`] — the `--require
//!   name=factor` minimum-speedup gate of `bench-compare`.
//!
//! All helpers are pure functions over file contents so the tests can
//! feed seeded inputs without touching the filesystem.

#![forbid(unsafe_code)]

/// The metric names declared in `METRIC_NAMES` of
/// `crates/obs/src/metrics.rs`: every quoted string between the
/// `METRIC_NAMES` declaration and its closing `];`. Returns an empty
/// vector when the declaration is absent (the runner treats that as a
/// failure, so a renamed constant cannot silently disable the gate).
#[must_use]
pub fn extract_metric_names(source: &str) -> Vec<String> {
    // Anchor on the declaration, not the bare identifier: doc comments
    // mention `METRIC_NAMES` long before the constant itself.
    let Some(start) = source.find("const METRIC_NAMES") else {
        return Vec::new();
    };
    let Some(end) = source[start..].find("];") else {
        return Vec::new();
    };
    let body = &source[start..start + end];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let Some(close) = after.find('"') else {
            break;
        };
        out.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    out
}

/// The rule rows of the `LINTS.md` catalog table: every markdown table
/// row whose first cell is a backticked rule name, as
/// `(rule_name, rest_of_row)`. The runner cross-checks these against
/// `iba_lint::RULES` in both directions (undocumented rule, documented
/// ghost rule) and requires each row to state the rule's severity.
#[must_use]
pub fn extract_lint_rule_rows(source: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in source.lines() {
        let Some(rest) = line.trim_start().strip_prefix("| `") else {
            continue;
        };
        let Some((name, row)) = rest.split_once('`') else {
            continue;
        };
        out.push((name.to_string(), row.to_string()));
    }
    out
}

/// Relative markdown link targets in `source`, as `(line, target)`.
/// Absolute URLs, `mailto:` and pure-fragment links are skipped; a
/// `#section` suffix on a relative target is dropped.
#[must_use]
pub fn extract_relative_links(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let mut i = 0;
        while let Some(p) = line[i..].find("](") {
            let start = i + p + 2;
            let Some(q) = line[start..].find(')') else {
                break;
            };
            let target = &line[start..start + q];
            i = start + q;
            if target.is_empty()
                || target.starts_with('#')
                || target.contains("://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let path = target.split('#').next().unwrap_or(target);
            if !path.is_empty() {
                out.push((idx + 1, path.to_string()));
            }
        }
    }
    out
}

/// Extracts `(name, ns_per_op)` pairs from a `BENCH_*.json` document
/// written by `iba_obs::bench_json`. A deliberately narrow line
/// scanner (no JSON parser in the workspace): a bench record is a
/// `"name": "<...>"` line followed — before the next name — by an
/// `"ns_per_op": <float>` line. Unparseable lines are skipped, so the
/// caller should treat an empty result as an error.
#[must_use]
pub fn extract_bench_ns(source: &str) -> Vec<(String, f64)> {
    fn quoted(line: &str, key: &str) -> Option<String> {
        let rest = line.split_once(key)?.1;
        let rest = rest.split_once('"')?.1;
        Some(rest.split_once('"')?.0.to_string())
    }
    let mut out = Vec::new();
    let mut pending: Option<String> = None;
    for line in source.lines() {
        if line.contains("\"name\":") {
            pending = quoted(line, "\"name\":");
        } else if line.contains("\"ns_per_op\":") {
            if let Some(name) = pending.take() {
                let value = line
                    .split_once("\"ns_per_op\":")
                    .map(|(_, v)| v.trim().trim_end_matches(','))
                    .and_then(|v| v.parse::<f64>().ok());
                if let Some(ns) = value {
                    out.push((name, ns));
                }
            }
        }
    }
    out
}

/// One benchmark's baseline-vs-current comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDelta {
    /// Benchmark name as it appears in both documents.
    pub name: String,
    /// Baseline ns/op.
    pub base_ns: f64,
    /// Current ns/op.
    pub cur_ns: f64,
    /// `cur / base` (1.0 = unchanged, 2.0 = twice as slow).
    pub ratio: f64,
    /// True when `ratio > 1 + tolerance`.
    pub regressed: bool,
}

/// Compares two bench documents name-by-name. `tolerance` is the
/// allowed fractional slowdown (0.25 = fail beyond +25% wall clock).
/// Benchmarks present on only one side are ignored — adding or
/// retiring a benchmark is not a regression — but thread-scaling rows
/// and microbenchmarks that exist in both must stay within tolerance.
#[must_use]
pub fn compare_benches(baseline: &str, current: &str, tolerance: f64) -> Vec<BenchDelta> {
    let base = extract_bench_ns(baseline);
    let cur = extract_bench_ns(current);
    let mut out = Vec::new();
    for (name, base_ns) in &base {
        let Some((_, cur_ns)) = cur.iter().find(|(n, _)| n == name) else {
            continue;
        };
        // Sub-nanosecond baselines are noise-dominated; never gate on
        // them (and avoid dividing by zero).
        let ratio = if *base_ns > 1.0 {
            cur_ns / base_ns
        } else {
            1.0
        };
        out.push(BenchDelta {
            name: name.clone(),
            base_ns: *base_ns,
            cur_ns: *cur_ns,
            ratio,
            regressed: ratio > 1.0 + tolerance,
        });
    }
    out
}

/// One `--require <name>=<factor>` speedup gate's verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct SpeedupCheck {
    /// Benchmark name the requirement targets.
    pub name: String,
    /// Required speedup factor (2.0 = at least twice as fast).
    pub factor: f64,
    /// Baseline ns/op, when the baseline document has the row.
    pub base_ns: Option<f64>,
    /// Current ns/op, when the current document has the row.
    pub cur_ns: Option<f64>,
    /// `cur_ns * factor <= base_ns`; false when either side is absent.
    pub passed: bool,
}

/// Parses one `--require` operand of the form `name=factor` (e.g.
/// `sim/fabric_short_run=3`). Returns `None` for a missing `=`, an
/// empty name, or a factor that is not a positive float.
#[must_use]
pub fn parse_require(arg: &str) -> Option<(String, f64)> {
    let (name, factor) = arg.split_once('=')?;
    if name.is_empty() {
        return None;
    }
    let factor: f64 = factor.parse().ok()?;
    if !(factor > 0.0 && factor.is_finite()) {
        return None;
    }
    Some((name.to_string(), factor))
}

/// Evaluates minimum-speedup requirements against two bench documents:
/// each `(name, factor)` demands that the named benchmark now runs at
/// least `factor`x faster than the baseline (`cur_ns * factor <=
/// base_ns`). A row missing from either document fails its check —
/// renaming or dropping a gated benchmark must not silently pass.
#[must_use]
pub fn check_speedups(
    baseline: &str,
    current: &str,
    requires: &[(String, f64)],
) -> Vec<SpeedupCheck> {
    let base = extract_bench_ns(baseline);
    let cur = extract_bench_ns(current);
    let find = |rows: &[(String, f64)], name: &str| {
        rows.iter().find(|(n, _)| n == name).map(|(_, ns)| *ns)
    };
    requires
        .iter()
        .map(|(name, factor)| {
            let base_ns = find(&base, name);
            let cur_ns = find(&cur, name);
            let passed = match (base_ns, cur_ns) {
                (Some(b), Some(c)) => c * factor <= b,
                _ => false,
            };
            SpeedupCheck {
                name: name.clone(),
                factor: *factor,
                base_ns,
                cur_ns,
                passed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_extracted() {
        let src = r#"
//! Doc comment mentioning [`METRIC_NAMES`]; must not confuse the anchor.
pub const METRIC_NAMES: &[&str] = &[
    "alloc_probe_total",
    "arb_grant_total", // per-VL
    "cac_admit_total",
];
pub const OTHER: &[&str] = &["not_a_metric"];
"#;
        assert_eq!(
            extract_metric_names(src),
            vec!["alloc_probe_total", "arb_grant_total", "cac_admit_total"]
        );
        assert!(extract_metric_names("no such constant").is_empty());
        assert!(extract_metric_names("const METRIC_NAMES with no close").is_empty());
    }

    #[test]
    fn lint_rule_rows_are_extracted() {
        let md = "\
# Catalog

| rule | severity | scope |
|---|---|---|
| `no-panic` | error | core, sim, qos |
| `todo-tracked` | warning | comments |

Not a row: `inline-code` mention.
";
        let rows = extract_lint_rule_rows(md);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "no-panic");
        assert!(rows[0].1.contains("error"));
        assert_eq!(rows[1].0, "todo-tracked");
        assert!(extract_lint_rule_rows("no table here").is_empty());
    }

    #[test]
    fn relative_links_are_extracted() {
        let md = "See [design](DESIGN.md#goals) and [site](https://example.com) and [top](#x).\n";
        let links = extract_relative_links(md);
        assert_eq!(links, vec![(1, "DESIGN.md".to_string())]);
    }

    fn bench_doc(rows: &[(&str, f64)]) -> String {
        let mut out = String::from("{\n  \"suite\": \"sim\",\n  \"benches\": [\n");
        for (name, ns) in rows {
            out.push_str(&format!(
                "    {{\n      \"name\": \"{name}\",\n      \"iters\": 8,\n      \
                 \"ns_per_op\": {ns},\n      \"p50_ns\": {ns},\n      \"p99_ns\": {ns}\n    }},\n"
            ));
        }
        out.push_str("  ],\n  \"per_vl_shares\": []\n}\n");
        out
    }

    #[test]
    fn bench_ns_pairs_are_extracted_in_order() {
        let doc = bench_doc(&[("sim/hot", 120.5), ("harness/sweep", 9000.0)]);
        assert_eq!(
            extract_bench_ns(&doc),
            vec![
                ("sim/hot".to_string(), 120.5),
                ("harness/sweep".to_string(), 9000.0)
            ]
        );
        assert!(extract_bench_ns("{}").is_empty());
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let base = bench_doc(&[("a", 100.0), ("b", 100.0), ("gone", 50.0)]);
        let cur = bench_doc(&[("a", 124.0), ("b", 126.0), ("new", 1.0)]);
        let deltas = compare_benches(&base, &cur, 0.25);
        // "gone"/"new" are unpaired and ignored; only b crosses +25%.
        assert_eq!(deltas.len(), 2);
        assert!(!deltas[0].regressed, "a is within tolerance: {deltas:?}");
        assert!(deltas[1].regressed, "b is past tolerance: {deltas:?}");
    }

    #[test]
    fn sub_nanosecond_baselines_never_gate() {
        let base = bench_doc(&[("tiny", 0.4)]);
        let cur = bench_doc(&[("tiny", 400.0)]);
        let deltas = compare_benches(&base, &cur, 0.25);
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].regressed);
    }

    #[test]
    fn require_operands_parse_or_reject() {
        assert_eq!(
            parse_require("sim/fabric_short_run=3"),
            Some(("sim/fabric_short_run".to_string(), 3.0))
        );
        assert_eq!(parse_require("a=0.5"), Some(("a".to_string(), 0.5)));
        assert_eq!(parse_require("no_equals"), None);
        assert_eq!(parse_require("=3"), None, "empty name");
        assert_eq!(parse_require("a=zero"), None, "non-numeric factor");
        assert_eq!(parse_require("a=0"), None, "factor must be positive");
        assert_eq!(parse_require("a=-2"), None);
        assert_eq!(parse_require("a=inf"), None);
    }

    #[test]
    fn speedup_gate_passes_exactly_at_factor() {
        let base = bench_doc(&[("fast", 300.0), ("slow", 300.0)]);
        let cur = bench_doc(&[("fast", 100.0), ("slow", 101.0)]);
        let req = [("fast".to_string(), 3.0), ("slow".to_string(), 3.0)];
        let checks = check_speedups(&base, &cur, &req);
        assert_eq!(checks.len(), 2);
        assert!(checks[0].passed, "100 * 3 <= 300 passes: {checks:?}");
        assert!(!checks[1].passed, "101 * 3 > 300 fails: {checks:?}");
        assert_eq!(checks[0].base_ns, Some(300.0));
        assert_eq!(checks[0].cur_ns, Some(100.0));
    }

    #[test]
    fn speedup_gate_fails_on_missing_rows() {
        let base = bench_doc(&[("present", 300.0)]);
        let cur = bench_doc(&[("present", 10.0)]);
        let req = [("present".to_string(), 3.0), ("absent".to_string(), 3.0)];
        let checks = check_speedups(&base, &cur, &req);
        assert!(checks[0].passed);
        assert!(!checks[1].passed, "a row missing from both sides fails");
        assert_eq!(checks[1].base_ns, None);
        // Present only in the baseline: still a failure.
        let cur2 = bench_doc(&[("other", 1.0)]);
        let checks2 = check_speedups(&base, &cur2, &req[..1]);
        assert!(!checks2[0].passed);
        assert_eq!(checks2[0].cur_ns, None);
    }
}
