//! `cargo xtask` — the workspace's static-analysis runner.
//!
//! ## `cargo xtask check`
//!
//! Steps, in order:
//!
//! 1. **fmt** — `cargo fmt --all -- --check` (skipped with a notice
//!    when `rustfmt` is not installed, e.g. offline minimal toolchains).
//! 2. **clippy** — pinned deny-list over all targets (skipped likewise
//!    when the `clippy` component is missing).
//! 3. **lint** — the `iba-lint` rule engine (lexer-based; see
//!    `LINTS.md`) over every `.rs` file, with the committed
//!    `LINT_baseline.txt` tolerated; any fresh finding fails.
//! 4. **doc-links** — every relative markdown link in the repository's
//!    `*.md` files must point at an existing file.
//! 5. **metrics-doc** — every metric name declared in `METRIC_NAMES`
//!    (`crates/obs/src/metrics.rs`) must appear in the `METRICS.md`
//!    contract, so the observability surface cannot drift undocumented.
//! 6. **lints-doc** — the `LINTS.md` rule catalog must match
//!    `iba_lint::RULES` exactly (no undocumented rule, no documented
//!    ghost, severities stated per row) — same pattern as metrics-doc.
//! 7. **target-tracked** — `git ls-files` must list no path under
//!    `target/`: build artifacts can never re-enter version control
//!    (skipped with a notice when `git` is unavailable).
//!
//! Exit status is non-zero when any executed step fails; skipped steps
//! never fail the run.
//!
//! ## `cargo xtask lint [--no-baseline] [--json <file>] [--write-baseline] [path...]`
//!
//! Runs the rule engine alone. `--no-baseline` ignores
//! `LINT_baseline.txt` and fails on *any* finding (the strict
//! acceptance gate); the default mode tolerates baselined findings and
//! fails only on fresh `error`-severity ones. `--json <file>` writes
//! the machine-readable report (schema in
//! `crates/lint/tests/report_schema.rs`); positional paths restrict
//! the scan to matching prefixes (e.g. `crates/qos`).
//!
//! ## `cargo xtask bench-compare <baseline.json> <current.json> [tolerance] [--require name=factor]...`
//!
//! Diffs two `BENCH_*.json` documents and fails on any shared
//! benchmark that regressed by more than `tolerance` (default 0.25 =
//! +25% wall clock) — the CI gate for the event-queue/packet-pool hot
//! path. Each repeatable `--require name=factor` adds a minimum-speedup
//! gate: the named benchmark must run at least `factor`x faster than
//! the baseline (`current * factor <= baseline`), with a missing row on
//! either side counting as unmet — the schedule-compiler acceptance
//! gates (`sim/vlarb_grant_2vl=5`, `sim/fabric_short_run=3`) ride on
//! this flag.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use xtask::{
    check_speedups, compare_benches, extract_lint_rule_rows, extract_metric_names,
    extract_relative_links, parse_require,
};

/// Clippy lints denied on top of the default `warn` set. Pinned so a
/// toolchain bump cannot silently change the gate.
const CLIPPY_DENY: &[&str] = &[
    "warnings",
    "clippy::dbg_macro",
    "clippy::todo",
    "clippy::unimplemented",
    "clippy::mem_forget",
];

/// The committed findings baseline consumed by the default lint mode.
const BASELINE_FILE: &str = "LINT_baseline.txt";

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repository root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn tool_available(cmd: &str, args: &[&str]) -> bool {
    Command::new(cmd)
        .args(args)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

enum StepResult {
    Pass,
    Skip(String),
    Fail(String),
}

fn run_cargo(root: &Path, args: &[&str]) -> StepResult {
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(s) if s.success() => StepResult::Pass,
        Ok(s) => StepResult::Fail(format!("cargo {} exited with {s}", args.join(" "))),
        Err(e) => StepResult::Fail(format!("cargo {} failed to start: {e}", args.join(" "))),
    }
}

fn step_fmt(root: &Path) -> StepResult {
    if !tool_available("rustfmt", &["--version"]) {
        return StepResult::Skip("rustfmt not installed".to_string());
    }
    run_cargo(root, &["fmt", "--all", "--", "--check"])
}

fn step_clippy(root: &Path) -> StepResult {
    if !tool_available("cargo", &["clippy", "--version"]) {
        return StepResult::Skip("clippy not installed".to_string());
    }
    let mut args = vec!["clippy", "--workspace", "--all-targets", "--quiet", "--"];
    let denies: Vec<String> = CLIPPY_DENY.iter().map(|l| format!("-D{l}")).collect();
    args.extend(denies.iter().map(String::as_str));
    run_cargo(root, &args)
}

/// All files under `dir` (recursively) with the given extension,
/// skipping build/VCS artifacts.
fn walk(dir: &Path, ext: &str, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, ext, out);
        } else if path.extension().is_some_and(|e| e == ext) {
            out.push(path);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Loads `LINT_baseline.txt` (missing file = empty baseline).
fn load_baseline(root: &Path) -> BTreeSet<String> {
    std::fs::read_to_string(root.join(BASELINE_FILE))
        .map(|s| iba_lint::parse_baseline(&s))
        .unwrap_or_default()
}

/// The `lint` step of `cargo xtask check`: whole tree, baseline
/// tolerated, any fresh finding fails.
fn step_lint(root: &Path) -> StepResult {
    let baseline = load_baseline(root);
    let report = match iba_lint::lint_tree(root, &[], &baseline) {
        Ok(r) => r,
        Err(e) => return StepResult::Fail(format!("lint walk failed: {e}")),
    };
    print!("{}", indent(&iba_lint::render_text(&report)));
    if report.fresh.is_empty() {
        StepResult::Pass
    } else {
        StepResult::Fail(format!("{} fresh lint finding(s)", report.fresh.len()))
    }
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("      {l}\n"))
        .collect::<String>()
}

fn step_doc_links(root: &Path) -> StepResult {
    let mut files = Vec::new();
    walk(root, "md", &mut files);
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for path in &files {
        let Ok(source) = std::fs::read_to_string(path) else {
            continue;
        };
        let dir = path.parent().unwrap_or(root);
        for (line, target) in extract_relative_links(&source) {
            checked += 1;
            if !dir.join(&target).exists() {
                broken.push(format!(
                    "{}:{line}: broken link -> {target}",
                    rel(root, path)
                ));
            }
        }
    }
    if broken.is_empty() {
        println!(
            "      {checked} relative links across {} markdown files, all resolve",
            files.len()
        );
        StepResult::Pass
    } else {
        for b in &broken {
            println!("      {b}");
        }
        StepResult::Fail(format!("{} broken link(s)", broken.len()))
    }
}

/// Cross-checks the metrics contract: every name in `METRIC_NAMES`
/// (crates/obs/src/metrics.rs) must be documented in `METRICS.md`.
fn step_metrics_doc(root: &Path) -> StepResult {
    let source = match std::fs::read_to_string(root.join("crates/obs/src/metrics.rs")) {
        Ok(s) => s,
        Err(e) => return StepResult::Fail(format!("cannot read crates/obs/src/metrics.rs: {e}")),
    };
    let names = extract_metric_names(&source);
    if names.is_empty() {
        return StepResult::Fail(
            "no METRIC_NAMES found in crates/obs/src/metrics.rs (constant renamed?)".to_string(),
        );
    }
    let contract = match std::fs::read_to_string(root.join("METRICS.md")) {
        Ok(s) => s,
        Err(e) => return StepResult::Fail(format!("cannot read METRICS.md: {e}")),
    };
    let missing: Vec<&String> = names
        .iter()
        .filter(|n| !contract.contains(n.as_str()))
        .collect();
    if missing.is_empty() {
        println!(
            "      {} metric name(s) all documented in METRICS.md",
            names.len()
        );
        StepResult::Pass
    } else {
        for m in &missing {
            println!("      metric `{m}` is not documented in METRICS.md");
        }
        StepResult::Fail(format!("{} undocumented metric(s)", missing.len()))
    }
}

/// Cross-checks the lint catalog: `LINTS.md`'s rule table must match
/// `iba_lint::RULES` exactly, and each row must state its severity.
fn step_lints_doc(root: &Path) -> StepResult {
    let doc = match std::fs::read_to_string(root.join("LINTS.md")) {
        Ok(s) => s,
        Err(e) => return StepResult::Fail(format!("cannot read LINTS.md: {e}")),
    };
    let rows = extract_lint_rule_rows(&doc);
    if rows.is_empty() {
        return StepResult::Fail("no rule table found in LINTS.md".to_string());
    }
    let documented: BTreeSet<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
    let registered: BTreeSet<&str> = iba_lint::RULES.iter().map(|r| r.name).collect();
    let mut problems = Vec::new();
    for r in iba_lint::RULES {
        if !documented.contains(r.name) {
            problems.push(format!("rule `{}` is not documented in LINTS.md", r.name));
        }
    }
    for (name, row) in &rows {
        if !registered.contains(name.as_str()) {
            problems.push(format!(
                "LINTS.md documents `{name}`, which is not a registered rule"
            ));
        } else if let Some(info) = iba_lint::rules::rule_info(name) {
            if !row.contains(info.severity.name()) {
                problems.push(format!(
                    "LINTS.md row for `{name}` does not state its severity ({})",
                    info.severity.name()
                ));
            }
        }
    }
    if problems.is_empty() {
        println!(
            "      {} rule(s) all documented in LINTS.md with severities",
            registered.len()
        );
        StepResult::Pass
    } else {
        for p in &problems {
            println!("      {p}");
        }
        StepResult::Fail(format!("{} lint-catalog problem(s)", problems.len()))
    }
}

/// Fails when any build artifact under `target/` is tracked by git —
/// the tree once carried ~16k committed artifacts and must never again.
fn step_target_tracked(root: &Path) -> StepResult {
    let output = Command::new("git")
        .args(["ls-files", "--", "target/", "*/target/"])
        .current_dir(root)
        .output();
    let output = match output {
        Ok(o) if o.status.success() => o,
        Ok(_) | Err(_) => {
            return StepResult::Skip("git unavailable or not a repository".to_string());
        }
    };
    let tracked: Vec<&str> = std::str::from_utf8(&output.stdout)
        .unwrap_or("")
        .lines()
        .filter(|l| !l.is_empty())
        .collect();
    if tracked.is_empty() {
        println!("      no target/ paths tracked by git");
        StepResult::Pass
    } else {
        for t in tracked.iter().take(10) {
            println!("      tracked build artifact: {t}");
        }
        StepResult::Fail(format!(
            "{} tracked file(s) under target/ — run `git rm -r --cached target`",
            tracked.len()
        ))
    }
}

/// `cargo xtask lint` — the rule engine as a standalone command. See
/// the module docs for the flag set and exit-status contract.
fn lint_cmd(args: &[String]) -> ExitCode {
    let usage =
        "usage: cargo xtask lint [--no-baseline] [--json <file>] [--write-baseline] [path...]";
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut json_path: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("{usage}");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("lint: unknown flag `{flag}`\n{usage}");
                return ExitCode::from(2);
            }
            p => paths.push(p.trim_start_matches("./").trim_end_matches('/').to_string()),
        }
    }
    let root = repo_root();
    let baseline = if no_baseline {
        BTreeSet::new()
    } else {
        load_baseline(&root)
    };
    let report = match iba_lint::lint_tree(&root, &paths, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: walk failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", iba_lint::render_text(&report));
    if let Some(p) = json_path {
        if let Err(e) = std::fs::write(&p, iba_lint::render_json(&report)) {
            eprintln!("lint: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
        println!("lint: JSON report written to {p}");
    }
    if write_baseline {
        let all: Vec<iba_lint::Finding> = report
            .fresh
            .iter()
            .chain(report.baselined.iter())
            .cloned()
            .collect();
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, iba_lint::render_baseline(&all)) {
            eprintln!("lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("lint: baseline rewritten ({} entr(ies))", all.len());
    }
    let failed = if no_baseline {
        !report.fresh.is_empty()
    } else {
        report.fresh_errors() > 0
    };
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `cargo xtask bench-compare <baseline.json> <current.json>
/// [tolerance] [--require name=factor]...` — diffs two `BENCH_*.json`
/// documents and fails when any benchmark present in both regressed by
/// more than `tolerance` (default 0.25, i.e. +25% wall clock), or when
/// any `--require` speedup gate is unmet (the named benchmark must run
/// at least `factor`x faster than the baseline).
fn bench_compare(args: &[String]) -> ExitCode {
    const USAGE: &str = "usage: cargo xtask bench-compare <baseline.json> <current.json> \
                         [tolerance] [--require name=factor]...";
    let mut positional: Vec<&String> = Vec::new();
    let mut requires: Vec<(String, f64)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--require" {
            let Some(req) = args.get(i + 1).and_then(|a| parse_require(a)) else {
                eprintln!("bench-compare: --require takes name=factor with a positive factor");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            };
            requires.push(req);
            i += 2;
        } else {
            positional.push(&args[i]);
            i += 1;
        }
    }
    let (Some(&base_path), Some(&cur_path)) = (positional.first(), positional.get(1)) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let tolerance = match positional.get(2).map(|t| t.parse::<f64>()) {
        None => 0.25,
        Some(Ok(t)) if t >= 0.0 => t,
        Some(_) => {
            eprintln!("bench-compare: tolerance must be a non-negative float");
            return ExitCode::from(2);
        }
    };
    let read = |p: &String| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench-compare: cannot read {p}: {e}");
            None
        }
    };
    let (Some(base), Some(cur)) = (read(base_path), read(cur_path)) else {
        return ExitCode::FAILURE;
    };
    let deltas = compare_benches(&base, &cur, tolerance);
    if deltas.is_empty() {
        eprintln!("bench-compare: no benchmark appears in both documents");
        return ExitCode::FAILURE;
    }
    let mut regressed = 0usize;
    for d in &deltas {
        let verdict = if d.regressed { "REGRESSED" } else { "ok" };
        println!(
            "  {:<40} {:>12.1} -> {:>12.1} ns/op  ({:+6.1}%)  {verdict}",
            d.name,
            d.base_ns,
            d.cur_ns,
            (d.ratio - 1.0) * 100.0
        );
        regressed += usize::from(d.regressed);
    }
    let checks = check_speedups(&base, &cur, &requires);
    let mut unmet = 0usize;
    for c in &checks {
        let fmt = |ns: Option<f64>| ns.map_or("missing".to_string(), |v| format!("{v:.1}"));
        let verdict = if c.passed { "met" } else { "UNMET" };
        println!(
            "  require {:<31} >= {:.1}x  {:>12} -> {:>12} ns/op  {verdict}",
            c.name,
            c.factor,
            fmt(c.base_ns),
            fmt(c.cur_ns),
        );
        unmet += usize::from(!c.passed);
    }
    if regressed > 0 || unmet > 0 {
        println!(
            "bench-compare: FAIL ({regressed} of {} benchmark(s) regressed beyond +{:.0}%, \
             {unmet} of {} speedup requirement(s) unmet)",
            deltas.len(),
            tolerance * 100.0,
            checks.len(),
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench-compare: PASS ({} benchmark(s) within +{:.0}%, {} speedup requirement(s) met)",
            deltas.len(),
            tolerance * 100.0,
            checks.len(),
        );
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("check");
    if cmd == "bench-compare" {
        return bench_compare(&args[1..]);
    }
    if cmd == "lint" {
        return lint_cmd(&args[1..]);
    }
    if cmd != "check" {
        eprintln!(
            "usage: cargo xtask check | cargo xtask lint [flags] [path...] | \
             cargo xtask bench-compare <base> <cur> [tol] [--require name=factor]..."
        );
        return ExitCode::from(2);
    }
    let root = repo_root();
    type Step = (&'static str, fn(&Path) -> StepResult);
    let steps: &[Step] = &[
        ("fmt", step_fmt),
        ("clippy", step_clippy),
        ("lint", step_lint),
        ("doc-links", step_doc_links),
        ("metrics-doc", step_metrics_doc),
        ("lints-doc", step_lints_doc),
        ("target-tracked", step_target_tracked),
    ];
    let mut failed = false;
    for (name, step) in steps {
        println!("[{name}]");
        match step(&root) {
            StepResult::Pass => println!("      PASS"),
            StepResult::Skip(why) => println!("      SKIP ({why})"),
            StepResult::Fail(why) => {
                println!("      FAIL ({why})");
                failed = true;
            }
        }
    }
    if failed {
        println!("xtask check: FAIL");
        ExitCode::FAILURE
    } else {
        println!("xtask check: PASS");
        ExitCode::SUCCESS
    }
}
