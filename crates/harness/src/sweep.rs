//! Sweep points: one independent simulation run per point, executed in
//! parallel by the engine with deterministic merged output.

use crate::engine::{run_sweep_recorded, run_sweep_recorded_with};
use crate::experiment::{build_experiment_sized, run_measured_recorded};
use iba_obs::{ObsRecorder, SpanRecorder};

/// One independent run of the paper pipeline: a (topology size, seed,
/// packet size, background) coordinate of a sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimPoint {
    /// Fabric size in switches.
    pub switches: usize,
    /// Topology + workload seed.
    pub seed: u64,
    /// Packet size in bytes.
    pub mtu: u32,
    /// Add best-effort background traffic.
    pub background: bool,
    /// Steady state runs until the slowest connection emitted this
    /// many packets.
    pub steady_packets: u64,
    /// Consecutive rejections that end the fill phase.
    pub reject_limit: u32,
}

impl SimPoint {
    /// The paper's headline configuration (16 switches) at one packet
    /// size and seed.
    #[must_use]
    pub fn paper(mtu: u32, seed: u64) -> Self {
        SimPoint {
            switches: 16,
            seed,
            mtu,
            background: false,
            steady_packets: 30,
            reject_limit: 120,
        }
    }
}

/// The deterministic summary of one executed point.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PointOutcome {
    /// The coordinate that produced this outcome.
    pub point: SimPoint,
    /// Connection requests attempted during the fill.
    pub attempted: u32,
    /// Connections admitted.
    pub accepted: u32,
    /// Aggregate offered load of the admitted connections (bytes/cycle).
    pub offered_load: f64,
    /// Hosts in the fabric.
    pub hosts: usize,
    /// Injected traffic, bytes/cycle/node (Table 2's unit).
    pub injected_per_node: f64,
    /// Delivered traffic, bytes/cycle/node.
    pub delivered_per_node: f64,
    /// Mean QoS-only utilisation (%) over host links.
    pub qos_utilization: f64,
    /// Steady-state packets delivered.
    pub delivered_packets: u64,
    /// FNV-1a digest over every steady-state delivery record.
    pub delivery_digest: u64,
}

impl PointOutcome {
    /// A stable one-line rendering; byte-for-byte equality of rendered
    /// outcomes is the determinism criterion used by the test suite.
    #[must_use]
    pub fn render(&self) -> String {
        let p = &self.point;
        format!(
            "switches={} seed={} mtu={} bg={} accepted={}/{} load={:.6} \
             inj={:.6} del={:.6} qos={:.4} packets={} digest={:016x}",
            p.switches,
            p.seed,
            p.mtu,
            p.background,
            self.accepted,
            self.attempted,
            self.offered_load,
            self.injected_per_node,
            self.delivered_per_node,
            self.qos_utilization,
            self.delivered_packets,
            self.delivery_digest,
        )
    }
}

/// Executes one point, recording metrics into `rec`.
#[must_use]
pub fn run_point_recorded(point: &SimPoint, rec: &mut ObsRecorder) -> PointOutcome {
    let exp = build_experiment_sized(point.mtu, point.switches, point.seed, point.reject_limit);
    let m = run_measured_recorded(&exp, point.steady_packets, point.background, rec);
    PointOutcome {
        point: *point,
        attempted: exp.fill.attempted,
        accepted: exp.fill.accepted,
        offered_load: exp.fill.offered_load,
        hosts: m.hosts,
        injected_per_node: m.stats.injected_per_node(m.hosts),
        delivered_per_node: m.stats.delivered_per_node(m.hosts),
        qos_utilization: m.stats.host_link_qos_utilization,
        delivered_packets: m.stats.delivered_packets,
        delivery_digest: m.delivery_digest,
    }
}

/// Runs every point across `threads` workers. Outcomes come back in
/// point order and the merged recorder combines every worker's metrics
/// — both independent of the thread count.
#[must_use]
pub fn run_points(points: &[SimPoint], threads: usize) -> (Vec<PointOutcome>, ObsRecorder) {
    run_sweep_recorded(points, threads, |_, p, rec| run_point_recorded(p, rec))
}

/// [`run_points`] with wall-clock span profiling: every worker records
/// `harness.worker`/`harness.chunk` spans into a ring of
/// `span_capacity` records, all sharing one epoch so the merged
/// recorder's span timeline has aligned per-thread tracks (feed it to
/// `iba_obs::perfetto_trace`). Outcomes and merged *metrics* stay
/// byte-identical to [`run_points`] at any thread count.
#[must_use]
pub fn run_points_spanned(
    points: &[SimPoint],
    threads: usize,
    span_capacity: usize,
) -> (Vec<PointOutcome>, ObsRecorder) {
    // lint: allow(no-wall-clock) -- span-profiler epoch plumbing; never feeds simulated time
    let epoch = std::time::Instant::now();
    let mk = move || {
        let mut rec = ObsRecorder::new();
        rec.spans = Some(SpanRecorder::with_epoch(span_capacity, epoch));
        rec
    };
    run_sweep_recorded_with(points, threads, mk, |_, p, rec| run_point_recorded(p, rec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_order_is_preserved_and_outcomes_replay() {
        let points: Vec<SimPoint> = (0..4)
            .map(|s| SimPoint {
                switches: 4,
                seed: 100 + s,
                mtu: 4096,
                background: false,
                steady_packets: 2,
                reject_limit: 30,
            })
            .collect();
        let (a, ma) = run_points(&points, 1);
        let (b, mb) = run_points(&points, 3);
        for (x, p) in a.iter().zip(points.iter()) {
            assert_eq!(x.point, *p);
        }
        let render = |v: &[PointOutcome]| v.iter().map(PointOutcome::render).collect::<Vec<_>>();
        assert_eq!(render(&a), render(&b));
        assert_eq!(ma.metrics.harness_runs.get(), 4);
        assert_eq!(mb.metrics.harness_runs.get(), 4);
        assert_eq!(ma.metrics.sim_events.get(), mb.metrics.sim_events.get());
    }
}
