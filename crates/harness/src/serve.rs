//! The serve drive: runs a seeded admit/teardown/repair trace through
//! the sharded admission service (`iba_qos::service`) and
//! differentially audits it against the single-owner [`QosManager`].
//!
//! The rendered report is the replay determinism witness: it contains
//! the per-operation outcomes, the final-table digest, the audit
//! verdicts and the shard-invariant metrics — and **nothing that
//! depends on the shard count** (the `serve_*` metrics, which
//! legitimately differ per shard, are filtered out). `ibaqos serve
//! --replay` must therefore print byte-identical reports at 1, 2 and
//! 8 shards, which CI checks with `cmp`.

use iba_core::SlTable;
use iba_obs::ObsRecorder;
use iba_qos::service::{self, ServeReport, TraceConfig, TraceOutcome};
use iba_qos::QosManager;
use iba_topo::{irregular, updown, Topology};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string — the table-digest witness.
fn fnv64(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Parameters of one serve run.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Switches in the irregular fabric under management.
    pub switches: usize,
    /// Master seed: topology, trace, corruption and repair streams.
    pub seed: u64,
    /// Trace length (operations, admit-heavy mix).
    pub requests: usize,
    /// Worker shards the port tables are partitioned across.
    pub shards: usize,
}

impl ServeConfig {
    /// The default serve scenario: a 4-switch fabric and a 96-op trace.
    #[must_use]
    pub fn new(switches: usize, seed: u64, requests: usize, shards: usize) -> Self {
        ServeConfig {
            switches: switches.max(2),
            seed,
            requests,
            shards: shards.max(1),
        }
    }
}

/// Everything one serve run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The scenario that was run.
    pub config: ServeConfig,
    /// The sharded service's report (outcomes, tables, live set).
    pub report: ServeReport,
    /// FNV-1a digest of the sharded service's final tables.
    pub tables_digest: u64,
    /// FNV-1a digest of the sequential manager's final tables.
    pub seq_digest: u64,
    /// Whether every final table passed the full consistency audit.
    pub consistent: bool,
    /// Whether the sharded outcome vector equals the sequential one.
    pub outcomes_match: bool,
    /// Whether the shard-invariant metrics (everything but `serve_*`)
    /// equal the sequential run's metrics.
    pub metrics_match: bool,
    /// Rendered shard-invariant metric samples, one line each.
    pub metric_lines: Vec<String>,
    /// The sharded run's merged recorder: cumulative metrics, the
    /// coordinator's request tracer and — on windowed runs — the
    /// finished timeline (the SLO engine and the flight recorder draw
    /// from here).
    pub recorder: ObsRecorder,
}

/// Snapshot of a registry with the shard-count-dependent `serve_*`
/// samples removed — the shard-invariant metric view.
fn invariant_metric_lines(metrics: &iba_obs::Metrics) -> Vec<String> {
    metrics
        .snapshot()
        .into_iter()
        .filter(|s| !s.name.starts_with("serve_"))
        .map(|s| {
            let dim = s.dim.to_string();
            let label = if dim.is_empty() {
                s.name.to_string()
            } else {
                format!("{}{{{}}}", s.name, dim)
            };
            match s.value {
                iba_obs::SampleValue::Count(v) => format!("{label} {v}"),
                iba_obs::SampleValue::Hist {
                    count,
                    sum,
                    p50,
                    p99,
                } => format!("{label} count={count} sum={sum} p50<={p50} p99<={p99}"),
            }
        })
        .collect()
}

fn build_manager(config: &ServeConfig) -> (QosManager, u16) {
    let topo: Topology = irregular::generate(irregular::IrregularConfig::with_switches(
        config.switches,
        config.seed,
    ));
    let hosts = topo.num_hosts() as u16;
    let routing = updown::compute(&topo);
    (
        QosManager::new(topo, routing, SlTable::paper_table1()),
        hosts,
    )
}

impl ServeOutcome {
    /// Whether the sharded service matched the sequential reference on
    /// every observable and left consistent tables behind.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.consistent
            && self.outcomes_match
            && self.metrics_match
            && self.tables_digest == self.seq_digest
    }

    /// One-line machine-readable summary (the `ibaqos serve` stderr
    /// contract on failure). This line carries the shard count, so it
    /// is *not* part of the shard-invariant report body.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "serve: verdict={} shards={} outcomes={} tables={} metrics={} consistent={} seed={}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.config.shards,
            if self.outcomes_match {
                "match"
            } else {
                "DIVERGED"
            },
            if self.tables_digest == self.seq_digest {
                "match"
            } else {
                "DIVERGED"
            },
            if self.metrics_match {
                "match"
            } else {
                "DIVERGED"
            },
            if self.consistent { "yes" } else { "no" },
            self.config.seed,
        )
    }

    /// The full `ibaqos serve --replay` report. Everything in it is a
    /// pure function of (topology seed, trace) — never of the shard
    /// count — so replays at different shard counts must be
    /// byte-identical.
    #[must_use]
    pub fn render_report(&self) -> String {
        let c = &self.config;
        let r = &self.report;
        let mut out = format!(
            "serve: switches={} seed={} requests={}\n\
             trace: accepted={} rejected={} released={} live={}\n\
             tables: digest={:#018x} consistent={}\n\
             differential: outcomes={} tables={} metrics={}\n",
            c.switches,
            c.seed,
            c.requests,
            r.accepted,
            r.rejected,
            r.released,
            r.live.len(),
            self.tables_digest,
            if self.consistent { "yes" } else { "no" },
            if self.outcomes_match {
                "match"
            } else {
                "DIVERGED"
            },
            if self.tables_digest == self.seq_digest {
                "match"
            } else {
                "DIVERGED"
            },
            if self.metrics_match {
                "match"
            } else {
                "DIVERGED"
            },
        );
        out.push_str("outcomes:\n");
        for (i, o) in r.outcomes.iter().enumerate() {
            out.push_str(&format!("  op={i:03} {o:?}\n"));
        }
        out.push_str("metrics (shard-invariant):\n");
        for line in &self.metric_lines {
            out.push_str(&format!("  {line}\n"));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.passed() {
                "PASS (sharded service byte-identical to the sequential manager)"
            } else {
                "FAIL (sharded service diverged from the sequential manager)"
            }
        ));
        out
    }
}

/// Ring capacity for the coordinator's request tracer on windowed runs
/// (16-byte records; two coordinator records per trace op).
const SERVE_TRACE_CAP: usize = 1 << 16;

/// Runs the serve scenario: one sharded trace run plus the sequential
/// reference run, differentially compared on outcomes, final tables
/// and shard-invariant metrics.
#[must_use]
pub fn run_serve(config: &ServeConfig) -> ServeOutcome {
    run_serve_inner(config, 0)
}

/// [`run_serve`] with a windowed timeline (one logical tick per
/// finalized trace op, `window_len` ticks per window) attached to both
/// the sharded and the sequential recorder, plus a request tracer on
/// the coordinator so `ServeReport::request_records` carries the
/// dispatch/finalize stages. The differential verdicts are unaffected;
/// per-window **invariant** metrics are additionally shard-count
/// invariant (worker-side metrics merge after the last tick, so they
/// land in the trailing window at every shard count).
#[must_use]
pub fn run_serve_windowed(config: &ServeConfig, window_len: u64) -> ServeOutcome {
    run_serve_inner(config, window_len.max(1))
}

/// Per-window shard-invariant metric lines of a finished timeline —
/// the serve timeline's cross-shard equality witness.
#[must_use]
pub fn timeline_invariant_lines(timeline: &iba_obs::Timeline) -> Vec<String> {
    timeline
        .windows()
        .iter()
        .flat_map(|(idx, m)| {
            invariant_metric_lines(m)
                .into_iter()
                .map(move |l| format!("window={idx} {l}"))
        })
        .collect()
}

fn run_serve_inner(config: &ServeConfig, window_len: u64) -> ServeOutcome {
    let (planner, hosts) = build_manager(config);
    let ops = service::generate_trace(&TraceConfig::new(hosts, config.seed, config.requests));

    // Sequential reference on an identical, independently built manager.
    let (mut seq_mgr, _) = build_manager(config);
    let mut seq_rec = if window_len > 0 {
        ObsRecorder::with_timeline(window_len)
    } else {
        ObsRecorder::new()
    };
    let seq_outcomes: Vec<TraceOutcome> =
        service::apply_trace_sequential(&mut seq_mgr, &ops, &mut seq_rec);
    seq_rec.finish_timeline();
    let seq_digest = fnv64(format!("{:?}", seq_mgr.port_tables()).as_bytes());

    // Sharded run.
    let mut rec = if window_len > 0 {
        let mut r = ObsRecorder::with_tracer(SERVE_TRACE_CAP);
        r.timeline = Some(iba_obs::Timeline::new(window_len));
        r
    } else {
        ObsRecorder::new()
    };
    let report = service::run_trace(&planner, &ops, config.shards, &mut rec);
    rec.finish_timeline();
    let tables_digest = fnv64(format!("{:?}", report.tables).as_bytes());

    let consistent = report.tables.check_all().is_ok();
    let outcomes_match = report.outcomes == seq_outcomes;
    let metric_lines = invariant_metric_lines(&rec.metrics);
    let metrics_match = metric_lines == invariant_metric_lines(&seq_rec.metrics);

    ServeOutcome {
        config: *config,
        report,
        tables_digest,
        seq_digest,
        consistent,
        outcomes_match,
        metrics_match,
        metric_lines,
        recorder: rec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_run_passes_and_report_is_shard_invariant() {
        let reports: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&shards| {
                let outcome = run_serve(&ServeConfig::new(4, 3, 48, shards));
                assert!(outcome.passed(), "{}", outcome.summary_line());
                outcome.render_report()
            })
            .collect();
        assert_eq!(reports[0], reports[1], "1 vs 2 shards");
        assert_eq!(reports[0], reports[2], "1 vs 8 shards");
        assert!(reports[0].contains("verdict: PASS"));
    }

    #[test]
    fn serve_summary_line_names_the_shard_count() {
        let outcome = run_serve(&ServeConfig::new(4, 7, 24, 2));
        assert!(outcome.summary_line().contains("shards=2"));
    }

    #[test]
    fn windowed_serve_timeline_is_shard_count_invariant() {
        let window_len = 16;
        let runs: Vec<ServeOutcome> = [1usize, 2, 8]
            .iter()
            .map(|&shards| run_serve_windowed(&ServeConfig::new(4, 3, 48, shards), window_len))
            .collect();
        let reference: Vec<String> =
            timeline_invariant_lines(runs[0].recorder.timeline.as_ref().expect("timeline on"));
        assert!(!reference.is_empty());
        // 48 ops at 16 ticks/window: several windows, not just one.
        assert!(runs[0].recorder.timeline.as_ref().unwrap().len() > 1);
        for run in &runs[1..] {
            assert!(run.passed(), "{}", run.summary_line());
            let lines = timeline_invariant_lines(run.recorder.timeline.as_ref().unwrap());
            assert_eq!(
                reference, lines,
                "per-window invariant metrics diverged at {} shards",
                run.config.shards
            );
        }
    }

    #[test]
    fn windowed_serve_collects_request_records() {
        let outcome = run_serve_windowed(&ServeConfig::new(4, 3, 48, 4), 16);
        assert!(!outcome.report.request_records.is_empty());
        let spans = iba_obs::reassemble(&outcome.report.request_records);
        assert_eq!(spans.len(), 48, "one span per trace op");
        // Unwindowed runs carry no coordinator tracer: worker stages
        // only reach the report when the coordinator traces too.
        let plain = run_serve(&ServeConfig::new(4, 3, 48, 4));
        assert!(plain.recorder.timeline.is_none());
    }
}
