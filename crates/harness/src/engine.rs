//! The work-sharing core: a chunked work queue over scoped threads
//! with a run-order merge.
//!
//! Workers claim contiguous chunks of the item range from an atomic
//! cursor, compute each item, and tag every result with its item index.
//! After the scope joins, results are sorted back into item order —
//! which makes the merged output a pure function of the item list,
//! independent of thread count and scheduling.

use iba_obs::ObsRecorder;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread count: `IBA_THREADS` if set (and nonzero), otherwise
/// the machine's available parallelism.
#[must_use]
pub fn threads_from_env() -> usize {
    std::env::var("IBA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Chunk size for `n` items over `t` workers: small enough that a slow
/// item cannot strand a large tail behind one worker, large enough to
/// amortize the atomic claim.
fn chunk_size(n: usize, t: usize) -> usize {
    (n / (t * 4)).max(1)
}

/// Runs `f` over every item, sharded across `threads` workers, and
/// returns the results **in item order** — byte-identical regardless of
/// `threads`.
///
/// `f` receives `(item_index, &item)`. With `threads <= 1` (or a single
/// item) everything runs inline on the calling thread, which is also
/// the reference order the parallel path is sorted back into.
pub fn run_sweep<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let chunk = chunk_size(items.len(), threads);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            out.push((i, f(i, item)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, R)> = per_worker.into_iter().flatten().collect();
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`run_sweep`] with per-worker metric registries: each worker owns an
/// [`ObsRecorder`] passed to every `f` call it executes, and the worker
/// recorders are merged (commutatively — see `Metrics::merge`) into one.
///
/// The merged recorder additionally counts every run in
/// `harness_runs_total` and reports the worker count in
/// `harness_threads`. Trace rings are per-worker and deliberately not
/// merged; the returned recorder's ring only holds events recorded
/// after the merge.
pub fn run_sweep_recorded<T, R, F>(items: &[T], threads: usize, f: F) -> (Vec<R>, ObsRecorder)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &mut ObsRecorder) -> R + Sync,
{
    run_sweep_recorded_with(items, threads, ObsRecorder::new, f)
}

/// [`run_sweep_recorded`] with a caller-supplied recorder factory.
///
/// `mk` builds each worker's recorder (and the merge target), so a
/// caller can enable tracing or wall-clock span profiling on every
/// worker — e.g. `|| { let mut r = ObsRecorder::new(); r.spans =
/// Some(SpanRecorder::with_epoch(cap, epoch)); r }` with one shared
/// epoch so the merged span timeline has aligned tracks.
///
/// When span profiling is enabled, each worker's lifetime is wrapped in
/// a `harness.worker` span and every claimed work chunk in a
/// `harness.chunk` span. Span data stays out of the metrics registry
/// (see `SpanRecorder::export_into`), so the merged **metrics** remain
/// byte-identical at any thread count; the span *timeline* is
/// wall-clock data and varies by nature.
pub fn run_sweep_recorded_with<T, R, M, F>(
    items: &[T],
    threads: usize,
    mk: M,
    f: F,
) -> (Vec<R>, ObsRecorder)
where
    T: Sync,
    R: Send,
    M: Fn() -> ObsRecorder + Sync,
    F: Fn(usize, &T, &mut ObsRecorder) -> R + Sync,
{
    use iba_obs::Recorder as _;
    let threads = threads.clamp(1, items.len().max(1));
    let (results, mut merged) = if threads == 1 {
        let mut rec = mk();
        rec.span_begin("harness.worker");
        rec.span_begin("harness.chunk");
        let results = items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                rec.metrics.harness_runs.incr();
                f(i, t, &mut rec)
            })
            .collect();
        rec.span_end("harness.chunk");
        rec.span_end("harness.worker");
        (results, rec)
    } else {
        let next = AtomicUsize::new(0);
        let chunk = chunk_size(items.len(), threads);
        let per_worker: Vec<(Vec<(usize, R)>, ObsRecorder)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut rec = mk();
                        rec.span_begin("harness.worker");
                        let mut out = Vec::new();
                        loop {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = (start + chunk).min(items.len());
                            rec.span_begin("harness.chunk");
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                rec.metrics.harness_runs.incr();
                                out.push((i, f(i, item, &mut rec)));
                            }
                            rec.span_end("harness.chunk");
                        }
                        rec.span_end("harness.worker");
                        (out, rec)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        let mut merged = mk();
        let mut indexed = Vec::new();
        for (part, rec) in per_worker {
            indexed.extend(part);
            merged.merge(&rec);
        }
        indexed.sort_by_key(|&(i, _)| i);
        (indexed.into_iter().map(|(_, r)| r).collect(), merged)
    };
    merged.metrics.harness_threads.set(threads as i64);
    (results, merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_wins() {
        // Not a parallel test: mutating the environment is only safe
        // while no sibling thread reads it.
        std::env::set_var("IBA_THREADS", "3");
        assert_eq!(threads_from_env(), 3);
        std::env::set_var("IBA_THREADS", "0");
        assert!(threads_from_env() >= 1);
        std::env::remove_var("IBA_THREADS");
        assert!(threads_from_env() >= 1);
    }

    #[test]
    fn results_come_back_in_item_order_at_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let reference = run_sweep(&items, 1, |i, x| (i, x * x));
        for threads in [2, 3, 8, 64] {
            let got = run_sweep(&items, threads, |i, x| (i, x * x));
            assert_eq!(got, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_sweep(&empty, 8, |_, x| *x).is_empty());
        assert_eq!(run_sweep(&[7u32], 8, |_, x| x + 1), vec![8]);
    }

    #[test]
    fn span_enabled_sweep_profiles_workers_and_chunks() {
        use iba_obs::SpanRecorder;
        let items: Vec<u64> = (0..20).collect();
        let epoch = std::time::Instant::now();
        let mk = || {
            let mut r = ObsRecorder::new();
            r.spans = Some(SpanRecorder::with_epoch(256, epoch));
            r
        };
        for threads in [1usize, 4] {
            let (results, merged) = run_sweep_recorded_with(&items, threads, mk, |_, x, _| x + 1);
            assert_eq!(results.len(), 20);
            let spans = merged.spans.as_ref().expect("span profiling enabled");
            let recs = spans.records();
            // Worker lifecycle and at least one chunk show up.
            assert!(recs.iter().any(|r| r.name == "harness.worker"));
            assert!(recs.iter().any(|r| r.name == "harness.chunk"));
            // Begin/end counts balance per name.
            for name in ["harness.worker", "harness.chunk"] {
                let begins = recs
                    .iter()
                    .filter(|r| r.name == name && r.phase == iba_obs::SpanPhase::Begin)
                    .count();
                let ends = recs
                    .iter()
                    .filter(|r| r.name == name && r.phase == iba_obs::SpanPhase::End)
                    .count();
                assert_eq!(begins, ends, "unbalanced {name} spans");
            }
            // Metrics stay span-free: wall-clock data is opt-in only.
            assert_eq!(merged.metrics.span_records.get(), 0);
        }
    }

    #[test]
    fn recorded_sweep_merges_worker_registries() {
        let items: Vec<u64> = (1..=100).collect();
        let run = |threads| {
            run_sweep_recorded(&items, threads, |_, x, rec| {
                // Deterministic per-item metric activity.
                for _ in 0..*x {
                    rec.metrics.sim_events.incr();
                }
                rec.metrics.arb_queue_depth.observe(*x);
                *x
            })
        };
        let (r1, m1) = run(1);
        let (r8, m8) = run(8);
        assert_eq!(r1, r8);
        assert_eq!(m1.metrics.harness_runs.get(), 100);
        assert_eq!(m8.metrics.harness_runs.get(), 100);
        assert_eq!(m1.metrics.sim_events.get(), 5050);
        assert_eq!(m8.metrics.sim_events.get(), 5050);
        assert_eq!(
            m1.metrics.arb_queue_depth.count(),
            m8.metrics.arb_queue_depth.count()
        );
        assert_eq!(m1.metrics.harness_threads.get(), 1);
        assert_eq!(m8.metrics.harness_threads.get(), 8);
    }
}
