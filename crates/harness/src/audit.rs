//! The service-guarantee audit drive: single-port saturation scenario
//! that puts the paper's central claim in front of a live checker.
//!
//! The claim (§3 of the paper, theorem TR DIAB-03-01): filling the
//! arbitration table with the bit-reversal allocator keeps every
//! admitted class's distance guarantee — a connection contracted at
//! distance `d` never waits more than `d` table slots between grants.
//! The strawman allocators (first-fit, reverse-fit) satisfy each
//! request *they accept* with an evenly spaced sequence too, so a naive
//! audit of accepted placements can never indict them. Their real
//! failure mode is **canonicity destruction**: they fragment the free
//! space so that a later request fails although enough free entries
//! remain.
//!
//! This drive models what a deployment does when that happens: the
//! request is installed anyway at the nearest distance that still fits
//! (`d → 2d → …`), while the *contract* — the audited budget — stays at
//! the distance the class was sold. Under a saturated load the degraded
//! sequence is then observably late at the output port, and the
//! [`GuaranteeAuditor`] (riding the grant stream as a plain
//! [`iba_obs::Recorder`]) counts the violations. Bit-reversal never
//! needs the fallback when filling from an empty table, so it audits
//! clean by construction; the strawmen do not.

use iba_core::{
    effective_request, weight_for_bandwidth, AllocatorKind, Distance, HighPriorityTable,
    ServiceLevel, SlTable, SlToVlMap, SplitMix64, TableError, VirtualLane, VlArbConfig,
    VlArbEngine, MAX_TABLE_WEIGHT, TABLE_ENTRIES, WEIGHT_UNIT_BYTES,
};
use iba_obs::{GuaranteeAuditor, LaneBudget, Recorder, ServedKind, SpanRecorder};
use iba_qos::LowPriorityPolicy;
use iba_sim::LINK_1X_MBPS;

/// Parameters of one audit scenario.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Allocation policy under audit.
    pub allocator: AllocatorKind,
    /// Packet size in bytes (the paper's Table 2 sweeps 256..=4096).
    pub mtu: u32,
    /// Seed for the request stream.
    pub seed: u64,
    /// Consecutive rejections that end the fill phase (paper: 120).
    pub reject_limit: u32,
    /// High-priority grants to drive through the engine.
    pub grants: u64,
}

impl AuditConfig {
    /// A scenario with the paper's fill criterion (120 consecutive
    /// rejections) and a drive long enough for hundreds of table
    /// rotations.
    #[must_use]
    pub fn new(allocator: AllocatorKind, mtu: u32, seed: u64) -> Self {
        AuditConfig {
            allocator,
            mtu,
            seed,
            reject_limit: 120,
            grants: 20_000,
        }
    }
}

/// Everything the audit produced: the auditor with per-lane verdicts
/// plus the fill/drive statistics needed to interpret them.
#[derive(Debug)]
pub struct AuditOutcome {
    /// The scenario that was run.
    pub config: AuditConfig,
    /// The auditor after the drive; per-lane verdicts and the violation
    /// trace ring live here.
    pub auditor: GuaranteeAuditor,
    /// Connections accepted during the fill (including joins).
    pub accepted: u64,
    /// Requests rejected during the fill.
    pub rejected: u64,
    /// Accepted connections that needed the degraded-distance fallback
    /// (allocator failed although enough free entries remained).
    pub fallback_installs: u64,
    /// Occupied table entries when the drive started.
    pub occupied_entries: usize,
    /// Total reserved weight when the drive started.
    pub reserved_weight: u32,
}

impl AuditOutcome {
    /// Total guarantee violations across all lanes.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.auditor.violations_total()
    }

    /// Whether every budgeted lane held its contract.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations() == 0
    }

    /// The full `ibaqos audit` report: scenario header, per-lane
    /// pass/fail table, worst offender and final verdict.
    #[must_use]
    pub fn render_report(&self) -> String {
        let c = &self.config;
        let mut out = format!(
            "audit: allocator={} mtu={} seed={}\n\
             fill: accepted={} rejected={} fallback_installs={} \
             occupied={}/{} weight={}/{}\n",
            c.allocator.name(),
            c.mtu,
            c.seed,
            self.accepted,
            self.rejected,
            self.fallback_installs,
            self.occupied_entries,
            TABLE_ENTRIES,
            self.reserved_weight,
            MAX_TABLE_WEIGHT,
        );
        out.push_str(&self.auditor.render_report());
        out.push_str(&format!(
            "verdict: {}\n",
            if self.passed() {
                "PASS (all service guarantees held)"
            } else {
                "FAIL (service-guarantee violations observed)"
            }
        ));
        out
    }
}

/// Worst-case bytes one slot activation can transmit: the entry's
/// weight rounded up to whole `mtu`-sized packets (an entry with any
/// credit left may send one more whole packet).
fn slot_ceiling_bytes(weight: u8, mtu: u32) -> u64 {
    let packet_units = u64::from(mtu).div_ceil(WEIGHT_UNIT_BYTES).max(1);
    let packets = u64::from(weight).div_ceil(packet_units).max(1);
    packets * u64::from(mtu)
}

/// Runs the audit scenario.
#[must_use]
pub fn run_audit(config: &AuditConfig) -> AuditOutcome {
    run_audit_spanned(config, None)
}

/// [`run_audit`] with wall-clock span profiling of the two phases
/// (`audit.fill`, `audit.drive`) into a caller-owned [`SpanRecorder`].
#[must_use]
pub fn run_audit_spanned(
    config: &AuditConfig,
    mut spans: Option<&mut SpanRecorder>,
) -> AuditOutcome {
    if let Some(s) = spans.as_mut() {
        s.begin("audit.fill");
    }
    let fill = fill_table(config);
    if let Some(s) = spans.as_mut() {
        s.end("audit.fill");
        s.begin("audit.drive");
    }
    let outcome = drive_engine(config, fill);
    if let Some(s) = spans {
        s.end("audit.drive");
    }
    outcome
}

/// Fill-phase result: the loaded table plus the per-VL contracted
/// distances and counters. Crate-visible so the chaos drive
/// (`crate::chaos`) can damage the filled table and re-audit after
/// recovery.
pub(crate) struct Fill {
    pub(crate) table: HighPriorityTable,
    /// Strictest *contracted* distance per VL (what the class was sold,
    /// not what the allocator managed to install).
    pub(crate) contracted: [Option<Distance>; 16],
    pub(crate) accepted: u64,
    pub(crate) rejected: u64,
    pub(crate) fallback_installs: u64,
}

/// Fills one port's high-priority table with random paper-Table-1
/// requests until `reject_limit` consecutive rejections.
///
/// Requests draw a random QoS service level each time (arrival order in
/// a real subnet is arbitrary — round-robin strictest-first would be a
/// gift no allocator gets in practice) and a bandwidth uniform in the
/// SL's stratum. On `NoFreeSequence` with enough free entries left, the
/// request is installed at the nearest distance that fits while the
/// contract keeps the requested distance — the degraded-install
/// fallback described in the module docs.
pub(crate) fn fill_table(config: &AuditConfig) -> Fill {
    let mut table = HighPriorityTable::with_allocator(config.allocator);
    table.set_capacity_limit((0.8 * f64::from(MAX_TABLE_WEIGHT)) as u32);

    let sl_table = SlTable::paper_table1();
    let profiles: Vec<_> = sl_table.qos_profiles().copied().collect();
    let map = SlToVlMap::identity();
    let mut rng = SplitMix64::seed_from_u64(config.seed ^ 0xA0D1);

    let mut fill = Fill {
        table,
        contracted: [None; 16],
        accepted: 0,
        rejected: 0,
        fallback_installs: 0,
    };
    let mut consecutive_rejects = 0u32;
    // The reject limit always terminates the loop (capacity is finite),
    // but keep a hard iteration cap as a defensive bound.
    for _ in 0..100_000 {
        if consecutive_rejects >= config.reject_limit {
            break;
        }
        let Some(&profile) = rng.choose(&profiles) else {
            break;
        };
        let Some(distance) = profile.distance else {
            continue;
        };
        let (lo, hi) = profile.bandwidth_mbps;
        let mbps = if (hi - lo).abs() < f64::EPSILON {
            lo
        } else {
            rng.gen_range(lo..hi)
        };
        let Some(weight) = weight_for_bandwidth(mbps, LINK_1X_MBPS) else {
            continue;
        };
        let vl = map.vl(profile.sl);
        match admit_with_fallback(&mut fill.table, profile.sl, vl, distance, weight) {
            Admit::Accepted { degraded } => {
                fill.accepted += 1;
                if degraded {
                    fill.fallback_installs += 1;
                }
                consecutive_rejects = 0;
                let lane = &mut fill.contracted[vl.index()];
                *lane = Some(match *lane {
                    Some(prev) if prev.at_least_as_strict(distance) => prev,
                    _ => distance,
                });
            }
            Admit::Rejected => {
                fill.rejected += 1;
                consecutive_rejects += 1;
            }
        }
    }
    fill
}

enum Admit {
    Accepted { degraded: bool },
    Rejected,
}

/// One admission attempt with the degraded-distance fallback: when the
/// allocator reports `NoFreeSequence` although the table still has
/// enough free entries for the request, retry at successively looser
/// distances until one fits. Genuine capacity exhaustion (weight cap or
/// too few entries) stays a rejection.
fn admit_with_fallback(
    table: &mut HighPriorityTable,
    sl: ServiceLevel,
    vl: VirtualLane,
    distance: Distance,
    weight: u32,
) -> Admit {
    match table.admit(sl, vl, distance, weight) {
        Ok(_) => Admit::Accepted { degraded: false },
        Err(TableError::NoFreeSequence) => {
            let fits_by_count =
                effective_request(distance, weight).is_some_and(|(_, n)| table.free_entries() >= n);
            if !fits_by_count {
                return Admit::Rejected;
            }
            let mut next = distance.looser();
            while let Some(d) = next {
                if table.admit(sl, vl, d, weight).is_ok() {
                    return Admit::Accepted { degraded: true };
                }
                next = d.looser();
            }
            Admit::Rejected
        }
        Err(_) => Admit::Rejected,
    }
}

/// Drives the filled table through a [`VlArbEngine`] under saturation
/// (every admitted VL always has a whole-`mtu` packet ready) and audits
/// the grant stream against the contracted budgets.
pub(crate) fn drive_engine(config: &AuditConfig, fill: Fill) -> AuditOutcome {
    let occupied_entries = TABLE_ENTRIES - fill.table.free_entries();
    let reserved_weight = fill.table.reserved_weight();

    // Budget per VL: the slot bound is the contracted distance; the
    // cycle bound is that many worst-case slot activations plus one
    // packet of slack (cycles are bytes on a 1x link in this drive).
    let max_ceiling = fill
        .table
        .slots()
        .iter()
        .filter(|s| !s.is_free())
        .map(|s| slot_ceiling_bytes(s.weight, config.mtu))
        .max()
        .unwrap_or(u64::from(config.mtu));
    let mut auditor = GuaranteeAuditor::with_tracer(1024);
    for (vl, contracted) in fill.contracted.iter().enumerate() {
        if let Some(d) = contracted {
            let d_slots = d.slots() as u64;
            auditor.set_budget(
                vl as u8,
                LaneBudget {
                    d_slots,
                    bound_cycles: d_slots * max_ceiling + u64::from(config.mtu),
                },
            );
        }
    }

    let mut ready_vls = [false; 16];
    for slot in fill.table.slots().iter().filter(|s| !s.is_free()) {
        ready_vls[usize::from(slot.vl) & 0x0F] = true;
    }

    let arb = VlArbConfig::from_slots(
        fill.table.slots(),
        LowPriorityPolicy::default().entries,
        255,
    );
    let mut engine = VlArbEngine::new(arb);
    let mtu = u64::from(config.mtu);
    let mut now = 0u64;
    for _ in 0..config.grants {
        let Some(grant) = engine.select(|vl| ready_vls[vl.index()].then_some(mtu)) else {
            break;
        };
        now += grant.bytes;
        auditor.tick(now);
        let served = match grant.served_by {
            iba_core::ServedBy::High => ServedKind::High,
            iba_core::ServedBy::Low => ServedKind::Low,
        };
        auditor.arb_grant(grant.vl.raw(), grant.bytes, served);
        if grant.exhausted {
            auditor.arb_weight_exhausted(grant.vl.raw());
        }
    }

    AuditOutcome {
        config: config.clone(),
        auditor,
        accepted: fill.accepted,
        rejected: fill.rejected,
        fallback_installs: fill.fallback_installs,
        occupied_entries,
        reserved_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{build_experiment_sized, run_measured, run_measured_instrumented};

    /// The paper's Table 2 packet sizes.
    const TABLE2_MTUS: [u32; 5] = [256, 512, 1024, 2048, 4096];

    #[test]
    fn bit_reversal_audits_clean_on_every_table2_workload() {
        for mtu in TABLE2_MTUS {
            for seed in [1, 42, 1234] {
                let out = run_audit(&AuditConfig::new(AllocatorKind::BitReversal, mtu, seed));
                assert!(out.accepted > 0, "mtu={mtu} seed={seed}: nothing admitted");
                assert_eq!(
                    out.fallback_installs, 0,
                    "mtu={mtu} seed={seed}: bit-reversal should never degrade"
                );
                assert_eq!(
                    out.violations(),
                    0,
                    "mtu={mtu} seed={seed}: bit-reversal violated its contract:\n{}",
                    out.render_report()
                );
                assert!(out.passed());
            }
        }
    }

    #[test]
    fn strawman_allocators_violate_under_the_same_load() {
        for kind in [AllocatorKind::FirstFit, AllocatorKind::ReverseFit] {
            let violating = [1u64, 42, 1234].iter().any(|&seed| {
                let out = run_audit(&AuditConfig::new(kind, 4096, seed));
                out.fallback_installs > 0 && out.violations() > 0
            });
            assert!(
                violating,
                "{}: no audited violation on any probe seed",
                kind.name()
            );
        }
    }

    #[test]
    fn first_fit_violation_is_traced_and_reported() {
        // Pinned seed with a known degraded install (asserted here so a
        // behaviour change surfaces as a test failure, not silence).
        let out = run_audit(&AuditConfig::new(AllocatorKind::FirstFit, 4096, 42));
        assert!(out.fallback_installs > 0, "expected a degraded install");
        assert!(out.violations() > 0, "degraded install must be observable");
        assert!(!out.passed());
        let traced = out
            .auditor
            .tracer()
            .map(iba_obs::RingTracer::records)
            .unwrap_or_default();
        assert!(!traced.is_empty(), "violations must reach the trace ring");
        let report = out.render_report();
        assert!(report.contains("FAIL"), "report: {report}");
        assert!(report.contains("verdict: FAIL"), "report: {report}");
        assert!(report.contains("worst offender"), "report: {report}");
    }

    #[test]
    fn audit_is_deterministic() {
        let cfg = AuditConfig::new(AllocatorKind::FirstFit, 1024, 7);
        let a = run_audit(&cfg);
        let b = run_audit(&cfg);
        assert_eq!(a.render_report(), b.render_report());
        assert_eq!(a.violations(), b.violations());
    }

    #[test]
    fn spanned_audit_profiles_both_phases() {
        let mut spans = SpanRecorder::new(64);
        let cfg = AuditConfig::new(AllocatorKind::BitReversal, 1024, 3);
        let out = run_audit_spanned(&cfg, Some(&mut spans));
        assert!(out.accepted > 0);
        for name in ["audit.fill", "audit.drive"] {
            let begins = spans
                .records()
                .iter()
                .filter(|r| r.name == name && r.phase == iba_obs::SpanPhase::Begin)
                .count();
            let ends = spans
                .records()
                .iter()
                .filter(|r| r.name == name && r.phase == iba_obs::SpanPhase::End)
                .count();
            assert_eq!((begins, ends), (1, 1), "unbalanced {name}");
        }
    }

    #[test]
    fn observe_only_auditor_does_not_perturb_the_simulation() {
        // Differential check: a full-fabric measured run with a
        // GuaranteeAuditor riding the recorder seam delivers the exact
        // same packets at the exact same times as the unaudited run.
        let exp = build_experiment_sized(4096, 4, 11, 40);
        let plain = run_measured(&exp, 3, false);
        let mut auditor = GuaranteeAuditor::new();
        let audited = run_measured_instrumented(&exp, 3, false, &mut auditor);
        assert_eq!(plain.delivery_digest, audited.delivery_digest);
        assert_eq!(plain.delivery_count, audited.delivery_count);
        // The ride-along auditor saw real grants (observe-only lanes).
        assert!(
            auditor.active_lanes().next().is_some(),
            "auditor observed no grants at all"
        );
        assert_eq!(auditor.violations_total(), 0, "no budgets => no violations");
    }
}
