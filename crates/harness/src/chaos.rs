//! The chaos drive: deterministic fault injection with
//! guarantee-preserving recovery, audited end to end.
//!
//! Two coupled scenarios make up one chaos run:
//!
//! 1. **Table chaos** — the audit fill (`crate::audit`) loads one
//!    port's high-priority table to saturation, then `rounds` of seeded
//!    corruption (entry loss, garbled weights, orphaned and colliding
//!    sequences — `iba_core::HighPriorityTable::inject_corruption`) are
//!    each answered by the [`iba_qos::RecoveryManager`]: evict, rebuild,
//!    re-pack with the canonical bit-reversal defragmentation, and
//!    re-admit what was evicted. The repaired table is then driven
//!    through the arbiter under the [`GuaranteeAuditor`] with the
//!    *original contracted* budgets. The paper's claim extends to
//!    recovery: with the bit-reversal allocator the repaired table
//!    audits clean (zero post-repair violations); the first-fit strawman
//!    — whose fill already needed degraded installs — stays in
//!    violation, which makes it the negative control.
//! 2. **Fabric chaos sweep** — a sweep of full-fabric measured runs,
//!    each with a seeded [`FaultPlan`] (link flaps, rate degradation,
//!    VL blackouts, credit stalls, table corruption) injected through
//!    the event calendar. Because faults ride the calendar, the
//!    delivery digest of every point is a pure function of its seed:
//!    the merged digest must be byte-identical at any `IBA_THREADS`.

use crate::audit::{drive_engine, fill_table, AuditConfig, AuditOutcome};
use crate::engine::run_sweep_recorded;
use crate::experiment::{build_experiment_sized, run_measured_faulted};
use iba_core::{AllocatorKind, SplitMix64};
use iba_obs::ObsRecorder;
use iba_qos::{RecoveryManager, RecoveryStats, RecoverySummary};
use iba_sim::FaultPlan;

/// Parameters of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Allocation policy under test (bit-reversal must recover clean;
    /// first-fit is the negative control).
    pub allocator: AllocatorKind,
    /// Packet size in bytes.
    pub mtu: u32,
    /// Master seed: corruption, recovery jitter and every fault plan
    /// derive from it.
    pub seed: u64,
    /// Corruption/repair rounds against the audited table.
    pub rounds: u32,
    /// Faulted full-fabric runs in the determinism sweep.
    pub sweep_points: usize,
}

impl ChaosConfig {
    /// The default chaos scenario: three corruption rounds and a
    /// four-point faulted sweep.
    #[must_use]
    pub fn new(allocator: AllocatorKind, mtu: u32, seed: u64) -> Self {
        ChaosConfig {
            allocator,
            mtu,
            seed,
            rounds: 3,
            sweep_points: 4,
        }
    }
}

/// Everything one chaos run produced.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The scenario that was run.
    pub config: ChaosConfig,
    /// Corruption operations actually injected across all rounds.
    pub corruption_ops: usize,
    /// Accumulated repair summary across all rounds.
    pub recovery: RecoverySummary,
    /// The recovery manager's lifetime stats (retries, backoff,
    /// degradations).
    pub recovery_stats: RecoveryStats,
    /// Whether the table passed `check_consistency` after the final
    /// repair (it must).
    pub consistent: bool,
    /// The post-repair audit drive: auditor, fill statistics, verdict
    /// inputs.
    pub audit: AuditOutcome,
    /// Order-sensitive FNV-1a fold of the sweep's per-point delivery
    /// digests — the determinism witness across `IBA_THREADS`.
    pub sweep_digest: u64,
    /// Steady-state deliveries across the whole sweep.
    pub sweep_deliveries: u64,
    /// Fault actions applied by fabrics during the audited windows.
    pub faults_injected: u64,
    /// Arbitration candidates suppressed by blackout/stall faults.
    pub faults_blocked: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ChaosOutcome {
    /// Post-repair guarantee violations.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.audit.violations()
    }

    /// Whether recovery preserved every service guarantee.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.consistent && self.violations() == 0
    }

    /// One-line machine-readable summary (the `ibaqos chaos` stderr
    /// contract on failure).
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "chaos: verdict={} violations={} consistent={} allocator={} mtu={} seed={}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.violations(),
            if self.consistent { "yes" } else { "no" },
            self.config.allocator.name(),
            self.config.mtu,
            self.config.seed,
        )
    }

    /// The full `ibaqos chaos` report: scenario header, recovery
    /// statistics, post-repair per-lane audit, sweep determinism
    /// witness and final verdict.
    #[must_use]
    pub fn render_report(&self) -> String {
        let c = &self.config;
        let mut out = format!(
            "chaos: allocator={} mtu={} seed={} rounds={} sweep_points={}\n\
             fill: accepted={} rejected={} fallback_installs={}\n\
             corruption: ops={}\n\
             recovery: repaired={} evicted={} reinstalled={} lost={} \
             degraded={} retries={} backoff_cycles={}\n\
             table: consistent={}\n",
            c.allocator.name(),
            c.mtu,
            c.seed,
            c.rounds,
            c.sweep_points,
            self.audit.accepted,
            self.audit.rejected,
            self.audit.fallback_installs,
            self.corruption_ops,
            self.recovery.repaired,
            self.recovery.evicted,
            self.recovery.reinstalled,
            self.recovery.lost,
            self.recovery_stats.degraded,
            self.recovery_stats.retries,
            self.recovery_stats.backoff_cycles,
            if self.consistent { "yes" } else { "no" },
        );
        out.push_str(&self.audit.auditor.render_report());
        out.push_str(&format!(
            "sweep: points={} faults_injected={} faults_blocked={} \
             deliveries={} digest={:#018x}\n",
            c.sweep_points,
            self.faults_injected,
            self.faults_blocked,
            self.sweep_deliveries,
            self.sweep_digest,
        ));
        out.push_str(&format!(
            "verdict: {}\n",
            if self.passed() {
                "PASS (recovery preserved all service guarantees)"
            } else {
                "FAIL (post-repair service-guarantee violations)"
            }
        ));
        out
    }
}

/// Runs the chaos scenario with `threads` sweep workers. The report,
/// digest and merged metrics are byte-identical at any thread count.
#[must_use]
pub fn run_chaos(config: &ChaosConfig, threads: usize) -> ChaosOutcome {
    let audit_cfg = AuditConfig::new(config.allocator, config.mtu, config.seed);

    // Phase 1: fill, damage, repair — then audit the repaired table
    // against the original contracts.
    let mut fill = fill_table(&audit_cfg);
    let mut recovery = RecoveryManager::new(config.seed);
    let mut rec = ObsRecorder::new();
    let mut corruption_ops = 0usize;
    let mut summary = RecoverySummary::default();
    for round in 0..config.rounds {
        let mut rng = SplitMix64::seed_from_u64(
            config
                .seed
                .wrapping_add(u64::from(round).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ 0x0C0A_50FC_4A05,
        );
        corruption_ops += fill.table.inject_corruption(&mut rng);
        let s = recovery.repair_table(&mut fill.table, &mut rec);
        summary.tables += s.tables;
        summary.repaired += s.repaired;
        summary.evicted += s.evicted;
        summary.reinstalled += s.reinstalled;
        summary.lost += s.lost;
    }
    let consistent = fill.table.check_consistency().is_ok();
    let recovery_stats = *recovery.stats();
    let audit = drive_engine(&audit_cfg, fill);

    // Phase 2: faulted full-fabric sweep — the determinism witness.
    let points: Vec<u64> = (0..config.sweep_points)
        .map(|i| config.seed.wrapping_add(i as u64))
        .collect();
    let mtu = config.mtu;
    let (digests, merged) = run_sweep_recorded(&points, threads, |_, &seed, rec| {
        let exp = build_experiment_sized(mtu, 4, seed, 40);
        // Aim the fault window at the recorded steady state (the
        // warm-up runs uninstrumented), mirroring the phase layout of
        // `run_measured_faulted`.
        let transient = exp.frame.steady_state_cycles(1) * 2;
        let steady = exp.frame.steady_state_cycles(3);
        let plan = FaultPlan::generate(seed ^ 0xFA57_0000, transient, steady, 4, 8, 8);
        let m = run_measured_faulted(&exp, 3, false, &plan, rec);
        (m.delivery_digest, m.delivery_count)
    });
    let mut sweep_digest = FNV_OFFSET;
    let mut sweep_deliveries = 0u64;
    for (digest, count) in &digests {
        sweep_digest = (sweep_digest ^ digest).wrapping_mul(FNV_PRIME);
        sweep_deliveries += count;
    }
    let faults_injected = merged.metrics.fault_injected.get();
    let faults_blocked = merged.metrics.fault_blocked.0.iter().map(|c| c.get()).sum();

    ChaosOutcome {
        config: config.clone(),
        corruption_ops,
        recovery: summary,
        recovery_stats,
        consistent,
        audit,
        sweep_digest,
        sweep_deliveries,
        faults_injected,
        faults_blocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reversal_recovers_clean_on_probe_seeds() {
        for seed in [1u64, 42] {
            let out = run_chaos(&ChaosConfig::new(AllocatorKind::BitReversal, 4096, seed), 1);
            assert!(out.corruption_ops > 0, "seed {seed}: no damage injected");
            assert!(out.recovery.repaired > 0, "seed {seed}: nothing repaired");
            assert!(out.consistent, "seed {seed}: table left inconsistent");
            assert_eq!(
                out.violations(),
                0,
                "seed {seed}: recovery broke a guarantee:\n{}",
                out.render_report()
            );
            assert!(out.passed());
            assert_eq!(out.recovery.lost, 0, "seed {seed}: reservation lost");
        }
    }

    #[test]
    fn first_fit_is_the_negative_control() {
        let violating = [1u64, 42, 1234].iter().any(|&seed| {
            let out = run_chaos(&ChaosConfig::new(AllocatorKind::FirstFit, 4096, seed), 1);
            !out.passed() && out.violations() > 0
        });
        assert!(violating, "first-fit audited clean on every probe seed");
    }

    #[test]
    fn chaos_is_bit_deterministic_across_thread_counts() {
        let cfg = ChaosConfig::new(AllocatorKind::BitReversal, 1024, 7);
        let reference = run_chaos(&cfg, 1);
        assert!(reference.sweep_deliveries > 0, "sweep delivered nothing");
        assert!(reference.faults_injected > 0, "no faults fired in-window");
        for threads in [2usize, 8] {
            let got = run_chaos(&cfg, threads);
            assert_eq!(
                got.sweep_digest, reference.sweep_digest,
                "digest diverged at {threads} threads"
            );
            assert_eq!(got.faults_injected, reference.faults_injected);
            assert_eq!(got.faults_blocked, reference.faults_blocked);
            assert_eq!(got.render_report(), reference.render_report());
        }
    }

    #[test]
    fn report_carries_the_machine_summary_fields() {
        let out = run_chaos(&ChaosConfig::new(AllocatorKind::BitReversal, 2048, 5), 1);
        let line = out.summary_line();
        assert!(line.starts_with("chaos: verdict="));
        assert!(line.contains("allocator=bit-reversal"));
        assert!(line.contains("mtu=2048"));
        assert!(line.contains("seed=5"));
        let report = out.render_report();
        assert!(report.contains("recovery:"));
        assert!(report.contains("sweep:"));
        assert!(report.ends_with("\n"));
    }
}
