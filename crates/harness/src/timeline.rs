//! The timeline drive: runs a seed sweep of the paper pipeline with a
//! windowed [`iba_obs::Timeline`] attached to every run and merges the
//! per-run timelines in item order.
//!
//! Each run gets a **fresh** recorder (plain [`run_sweep`], not the
//! shared-per-worker `run_sweep_recorded`): run clocks all start at
//! cycle 0, so their windows overlay on the same absolute indices and
//! the item-order merge makes `TIMELINE.json` byte-identical at any
//! `IBA_THREADS` — the invariance CI checks with `cmp`.

use crate::engine::run_sweep;
use crate::sweep::{run_point_recorded, PointOutcome, SimPoint};
use iba_obs::{ObsRecorder, Timeline};

/// Parameters of one timeline sweep.
#[derive(Clone, Copy, Debug)]
pub struct TimelineConfig {
    /// Switches in each run's irregular fabric.
    pub switches: usize,
    /// Packet size in bytes.
    pub mtu: u32,
    /// First seed of the sweep.
    pub seed: u64,
    /// Number of seeded runs (seed, seed+1, ...).
    pub runs: u64,
    /// Steady state runs until the slowest connection emitted this
    /// many packets.
    pub steady_packets: u64,
    /// Simulator cycles per timeline window.
    pub window_len: u64,
}

impl TimelineConfig {
    /// A timeline sweep over `runs` seeds starting at `seed`.
    #[must_use]
    pub fn new(switches: usize, seed: u64, runs: u64, window_len: u64) -> Self {
        TimelineConfig {
            switches: switches.max(2),
            mtu: 4096,
            seed,
            runs: runs.max(1),
            steady_packets: 8,
            window_len: window_len.max(1),
        }
    }
}

/// Everything one timeline sweep produced.
#[derive(Debug)]
pub struct TimelineOutcome {
    /// The sweep that was run.
    pub config: TimelineConfig,
    /// Per-run outcomes, in seed order.
    pub outcomes: Vec<PointOutcome>,
    /// The merged recorder: cumulative metrics plus the merged
    /// timeline (every run's windows, overlaid by absolute index).
    pub recorder: ObsRecorder,
}

impl TimelineOutcome {
    /// The merged timeline (always present — the drive installs one).
    #[must_use]
    pub fn timeline(&self) -> &Timeline {
        self.recorder
            .timeline
            .as_ref()
            .expect("timeline drive always installs a timeline")
    }

    /// The `TIMELINE.json` document (see `iba_obs::timeline`).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.timeline().to_json_string()
    }

    /// The human-readable report: sweep header, per-window table,
    /// per-run outcome lines.
    #[must_use]
    pub fn render(&self) -> String {
        let c = &self.config;
        let mut out = format!(
            "timeline sweep: switches={} mtu={} seed={} runs={}\n",
            c.switches, c.mtu, c.seed, c.runs
        );
        out.push_str(&self.timeline().render_table());
        out.push_str("runs:\n");
        for o in &self.outcomes {
            out.push_str(&format!("  {}\n", o.render()));
        }
        out
    }
}

/// Runs the timeline sweep across `threads` workers.
#[must_use]
pub fn run_timeline(config: &TimelineConfig, threads: usize) -> TimelineOutcome {
    let points: Vec<SimPoint> = (0..config.runs)
        .map(|i| SimPoint {
            switches: config.switches,
            seed: config.seed + i,
            mtu: config.mtu,
            background: false,
            steady_packets: config.steady_packets,
            reject_limit: 120,
        })
        .collect();
    let results: Vec<(PointOutcome, ObsRecorder)> = run_sweep(&points, threads, |_, p| {
        let mut rec = ObsRecorder::with_timeline(config.window_len);
        let out = run_point_recorded(p, &mut rec);
        rec.finish_timeline();
        (out, rec)
    });
    let mut merged = ObsRecorder::with_timeline(config.window_len);
    let mut outcomes = Vec::with_capacity(results.len());
    for (out, rec) in &results {
        merged.merge(rec);
        outcomes.push(*out);
    }
    TimelineOutcome {
        config: *config,
        outcomes,
        recorder: merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_json_is_thread_count_invariant() {
        let config = TimelineConfig {
            switches: 4,
            mtu: 4096,
            seed: 11,
            runs: 4,
            steady_packets: 2,
            window_len: 4096,
        };
        let reference = run_timeline(&config, 1);
        let json = reference.to_json_string();
        assert!(json.contains("iba.timeline.v1"));
        assert!(
            reference.timeline().len() > 1,
            "sweep spans several windows"
        );
        for threads in [2usize, 8] {
            let got = run_timeline(&config, threads);
            assert_eq!(
                json,
                got.to_json_string(),
                "TIMELINE.json diverged at {threads} threads"
            );
            assert_eq!(reference.render(), got.render());
        }
    }

    #[test]
    fn windows_sum_back_to_the_cumulative_registry() {
        let config = TimelineConfig {
            switches: 4,
            mtu: 4096,
            seed: 3,
            runs: 2,
            steady_packets: 2,
            window_len: 2048,
        };
        let out = run_timeline(&config, 2);
        let windowed: u64 = out
            .timeline()
            .windows()
            .values()
            .map(|m| m.sim_events.get())
            .sum();
        assert_eq!(windowed, out.recorder.metrics.sim_events.get());
        // The counter sums windows closed across runs; the merged
        // timeline overlays runs on shared absolute indices, so it
        // holds at most that many distinct windows.
        assert!(out.recorder.metrics.timeline_windows.get() >= out.timeline().len() as u64);
        assert!(!out.timeline().is_empty());
    }

    #[test]
    fn steady_window_service_fractions_match_wrr_closed_form() {
        // The analytical cross-check (arXiv 2108.09534), taken per
        // timeline window: a saturated WRR stream serves VL i exactly
        // w_i/Σw of the bytes over any whole number of rounds. Size the
        // window to a whole number of rounds and every closed window's
        // per-VL byte share must equal the closed form exactly.
        use iba_core::{ArbEntry, CompiledVlArb, VirtualLane, VlArbConfig};
        use iba_obs::{Recorder, ServedKind};

        let entry = |vl: u8, weight: u8| ArbEntry {
            vl: VirtualLane::data(vl),
            weight,
        };
        let mut arb = CompiledVlArb::new(VlArbConfig {
            high: vec![entry(0, 5), entry(1, 1), entry(2, 3), entry(0, 2)],
            low: vec![],
            limit_of_high_priority: 255,
        });
        let stream = arb.high_stream().clone();
        let total = stream.total_units();
        assert_eq!(total, 11);

        // 4 whole rounds per window, 12 windows: one grant (64 bytes,
        // one weight unit) per tick keeps windows round-aligned.
        let rounds_per_window = 4;
        let window_len = rounds_per_window * total;
        let mut rec = ObsRecorder::with_timeline(window_len);
        let bytes = [64u64; 16];
        for t in 0..window_len * 12 {
            rec.tick(t);
            let g = arb.select(0xFFFF, &bytes).expect("saturated stream grants");
            rec.arb_grant(g.vl.raw(), g.bytes, ServedKind::High);
        }
        rec.finish_timeline();

        let tl = rec.timeline.as_ref().unwrap();
        assert_eq!(tl.len(), 12);
        // Skip the trailing window only if it were partial — here every
        // window holds exactly `rounds_per_window` rounds, so all 12
        // are steady state; check them all.
        for (idx, w) in tl.windows() {
            let window_bytes: u64 = (0..16).map(|v| w.arb_bytes.0[v].get()).sum();
            assert_eq!(window_bytes, window_len * 64, "window {idx} not saturated");
            for v in 0..16u8 {
                let measured = w.arb_bytes.0[v as usize].get() as f64 / window_bytes as f64;
                let predicted = stream.service_fraction(VirtualLane::new(v).unwrap());
                assert!(
                    (measured - predicted).abs() < 1e-12,
                    "window {idx} VL{v}: measured {measured} != closed form {predicted}"
                );
            }
        }
    }
}
