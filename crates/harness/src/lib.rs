//! Deterministic parallel experiment engine.
//!
//! Every experiment in this repository is a set of *independent*
//! simulation runs — seed x topology x SL-configuration points. This
//! crate shards those runs across `std::thread::scope` workers with a
//! chunked work queue and merges the results **in run order**, so the
//! merged output is byte-identical no matter how many threads executed
//! it. Per-worker [`iba_obs::ObsRecorder`] registries are combined with
//! the order-independent `Metrics::merge`, keeping the observability
//! contract intact under parallelism.
//!
//! | Variable | Default | Meaning |
//! |----------|---------|---------|
//! | `IBA_THREADS` | available parallelism | worker threads for sweeps |
//!
//! The determinism guarantee, knobs and repro commands are documented
//! in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

pub mod audit;
pub mod chaos;
pub mod chaos_serve;
pub mod engine;
pub mod experiment;
pub mod serve;
pub mod sweep;
pub mod timeline;

pub use audit::{run_audit, run_audit_spanned, AuditConfig, AuditOutcome};
pub use chaos::{run_chaos, ChaosConfig, ChaosOutcome};
pub use chaos_serve::{
    run_chaos_serve, run_chaos_serve_windowed, ChaosServeConfig, ChaosServeOutcome,
};
pub use engine::{run_sweep, run_sweep_recorded, run_sweep_recorded_with, threads_from_env};
pub use experiment::{
    build_experiment_sized, run_measured, run_measured_faulted, run_measured_instrumented,
    run_measured_recorded, Experiment, Measured,
};
pub use serve::{
    run_serve, run_serve_windowed, timeline_invariant_lines, ServeConfig, ServeOutcome,
};
pub use sweep::{run_points, run_points_spanned, PointOutcome, SimPoint};
pub use timeline::{run_timeline, TimelineConfig, TimelineOutcome};
