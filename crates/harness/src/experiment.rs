//! The paper's experiment pipeline with explicit parameters: build the
//! 16-switch irregular fabric, fill it to saturation (Table 1 SLs),
//! run a transient then a steady-state measurement window.
//!
//! Everything is a pure function of its arguments — no environment
//! reads — so sweep points can run on worker threads without shared
//! state. `iba-bench` layers the `IBA_*` environment knobs on top for
//! the table/figure binaries.

use iba_core::SlTable;
use iba_obs::{NullRecorder, ObsRecorder, Recorder};
use iba_qos::{FillReport, QosFrame, QosObserver};
use iba_sim::{DeliveryRecord, FabricStats, FaultPlan, Observer, SimConfig};
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::updown;
use iba_traffic::besteffort::BackgroundConfig;
use iba_traffic::{RequestGenerator, WorkloadConfig};

/// The paper's experiment setup for one packet size.
pub struct Experiment {
    /// The filled QoS frame.
    pub frame: QosFrame,
    /// Fill-phase outcome.
    pub fill: FillReport,
    /// Seed used everywhere.
    pub seed: u64,
}

/// Builds the fabric, fills it to saturation and returns the
/// ready-to-run experiment.
#[must_use]
pub fn build_experiment_sized(
    mtu: u32,
    switches: usize,
    seed: u64,
    reject_limit: u32,
) -> Experiment {
    let topo = generate(IrregularConfig::with_switches(switches, seed));
    let routing = updown::compute(&topo);
    let sl_table = SlTable::paper_table1();
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        sl_table.clone(),
        SimConfig::paper_default(mtu),
    );
    let mut gen = RequestGenerator::new(&topo, &sl_table, &WorkloadConfig::new(mtu, seed ^ 0xF00D));
    let fill = frame.fill(&mut gen, reject_limit, 100_000);
    Experiment { frame, fill, seed }
}

/// Outcome of a measured run.
pub struct Measured {
    /// The observer with all delay/jitter samples from the steady state.
    pub obs: QosObserver,
    /// Fabric-level throughput/utilisation statistics.
    pub stats: FabricStats,
    /// Number of hosts (for per-node normalisation).
    pub hosts: usize,
    /// Steady-state window length (cycles).
    pub window: u64,
    /// Steady-state deliveries folded into an order-sensitive FNV-1a
    /// digest: two runs delivered the exact same packets at the exact
    /// same times iff their digests match.
    pub delivery_digest: u64,
    /// Packets covered by the digest.
    pub delivery_count: u64,
}

/// Forwards deliveries to the QoS observer while folding every record
/// into an FNV-1a digest — the equality witness for determinism tests.
struct DigestObserver<'a> {
    inner: &'a mut QosObserver,
    hash: u64,
    count: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl DigestObserver<'_> {
    #[inline]
    fn fold(&mut self, v: u64) {
        self.hash = (self.hash ^ v).wrapping_mul(FNV_PRIME);
    }
}

impl Observer for DigestObserver<'_> {
    fn on_delivered(&mut self, rec: &DeliveryRecord) {
        self.fold(u64::from(rec.flow));
        self.fold(rec.seq);
        self.fold(u64::from(rec.src.0));
        self.fold(u64::from(rec.dst.0));
        self.fold(u64::from(rec.sl.raw()));
        self.fold(u64::from(rec.bytes));
        self.fold(rec.created);
        self.fold(rec.delivered);
        self.count += 1;
        self.inner.on_delivered(rec);
    }

    fn on_generated(&mut self, flow: u32, bytes: u32, now: u64) {
        self.inner.on_generated(flow, bytes, now);
    }
}

/// Runs the experiment: transient period (twice the slowest IAT), then
/// a steady state until the slowest connection has emitted
/// `steady_packets` packets. Background best-effort traffic fills the
/// remaining capacity when `background` is set.
#[must_use]
pub fn run_measured(exp: &Experiment, steady_packets: u64, background: bool) -> Measured {
    run_measured_with(exp, steady_packets, background, &mut NullRecorder)
}

/// [`run_measured`] with instrumentation into an [`ObsRecorder`].
#[must_use]
pub fn run_measured_recorded(
    exp: &Experiment,
    steady_packets: u64,
    background: bool,
    rec: &mut ObsRecorder,
) -> Measured {
    run_measured_with(exp, steady_packets, background, rec)
}

/// [`run_measured`] generic over **any** [`Recorder`] — the seam for
/// attaching special-purpose recorders such as an observe-only
/// `iba_obs::GuaranteeAuditor`. Instrumentation must never perturb the
/// run: the differential audit tests hold the delivery digest
/// byte-identical to the unrecorded run.
#[must_use]
pub fn run_measured_instrumented<R: Recorder>(
    exp: &Experiment,
    steady_packets: u64,
    background: bool,
    rec: &mut R,
) -> Measured {
    run_measured_with(exp, steady_packets, background, rec)
}

/// [`run_measured`] with a [`FaultPlan`] injected through the fabric's
/// event calendar before the run starts. Faults scheduled inside the
/// warm-up window fire uninstrumented (like everything else there); the
/// digest and metrics cover only the steady-state window, and the
/// result stays a pure function of `(exp, plan)` — the chaos sweep's
/// determinism check holds the digest identical at any thread count.
#[must_use]
pub fn run_measured_faulted<R: Recorder>(
    exp: &Experiment,
    steady_packets: u64,
    background: bool,
    plan: &FaultPlan,
    rec: &mut R,
) -> Measured {
    run_measured_inner(exp, steady_packets, background, Some(plan), rec)
}

fn run_measured_with<R: Recorder>(
    exp: &Experiment,
    steady_packets: u64,
    background: bool,
    rec: &mut R,
) -> Measured {
    run_measured_inner(exp, steady_packets, background, None, rec)
}

fn run_measured_inner<R: Recorder>(
    exp: &Experiment,
    steady_packets: u64,
    background: bool,
    plan: Option<&FaultPlan>,
    rec: &mut R,
) -> Measured {
    let bg = background.then(BackgroundConfig::default);
    let (mut fabric, mut obs) = exp.frame.build_fabric(exp.seed ^ 0xABCD, bg.as_ref());
    if let Some(p) = plan {
        fabric.apply_fault_plan(p);
    }

    let slowest_iat = exp.frame.steady_state_cycles(1);
    let transient = slowest_iat * 2;
    let steady = exp.frame.steady_state_cycles(steady_packets);

    // Warm-up runs uninstrumented; the digest and all metrics cover
    // only the steady-state window.
    fabric.run_until(transient, &mut obs);
    obs.reset_samples();
    fabric.reset_stats();
    let mut digest = DigestObserver {
        inner: &mut obs,
        hash: FNV_OFFSET,
        count: 0,
    };
    fabric.run_until_recorded(transient + steady, &mut digest, rec);
    let (hash, count) = (digest.hash, digest.count);

    let stats = fabric.summarize();
    Measured {
        obs,
        stats,
        hosts: exp.frame.manager.topology().num_hosts(),
        window: steady,
        delivery_digest: hash,
        delivery_count: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_distinguishes_seeds_and_matches_replays() {
        let run = |seed| {
            let exp = build_experiment_sized(4096, 4, seed, 40);
            let m = run_measured(&exp, 3, false);
            (m.delivery_digest, m.delivery_count)
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed must replay identically");
        assert!(a.1 > 0, "steady state delivered nothing");
        assert_ne!(a.0, run(43).0, "different seeds collided");
    }

    #[test]
    fn recorded_run_is_equivalent_and_counts_events() {
        let exp = build_experiment_sized(4096, 4, 7, 40);
        let plain = run_measured(&exp, 3, false);
        let mut rec = ObsRecorder::new();
        let recorded = run_measured_recorded(&exp, 3, false, &mut rec);
        assert_eq!(plain.delivery_digest, recorded.delivery_digest);
        assert_eq!(plain.delivery_count, recorded.delivery_count);
        assert_eq!(plain.stats.delivered_bytes, recorded.stats.delivered_bytes);
        assert!(rec.metrics.sim_events.get() > 0);
        assert!(rec.metrics.sim_event_queue_depth.count() > 0);
    }
}
