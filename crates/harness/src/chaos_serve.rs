//! The chaos-serve drive: runs a seeded admit/teardown/repair trace
//! through the sharded admission service **under a control-plane fault
//! calendar** — worker crashes, vote-message loss/delay, reply loss —
//! and differentially audits the survivor against both the sequential
//! [`QosManager`] reference and an unfaulted sharded run.
//!
//! Three oracles gate the verdict:
//!
//! 1. **Convergence** — the faulted run's outcomes and final-table
//!    bytes must equal the sequential reference's (the write-ahead
//!    journal + idempotent retries make every injected fault
//!    invisible);
//! 2. **Exactly-once ledger** — sweeping every live connection's hops
//!    out of a clone of the final tables must leave the same residue
//!    as the same sweep over the unfaulted baseline: a failed release
//!    is a *lost* reservation, leftover reserved weight is a
//!    *duplicated* one;
//! 3. **Consistency** — every final table passes `check_consistency`.
//!
//! The rendered `--replay` report contains nothing that depends on the
//! shard count (consumed-fault counts target the lowest participant
//! shard, so even they are shard-invariant), which CI checks with
//! `cmp` at 1, 2 and 8 shards. Disabling the journal (`--no-journal`)
//! under the same calendar is the negative control: crashes then lose
//! reservations and the verdict must flip to FAIL.

use iba_core::SlTable;
use iba_obs::ObsRecorder;
use iba_qos::service::{
    self, FaultStats, ServeFaultPlan, ServeOptions, ServeReport, TraceConfig, TraceOutcome,
};
use iba_qos::{PortTables, QosManager};
use iba_topo::{irregular, updown, Topology};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string — the table-digest witness.
fn fnv64(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Parameters of one chaos-serve run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosServeConfig {
    /// Switches in the irregular fabric under management.
    pub switches: usize,
    /// Master seed: topology, trace and fault-calendar streams.
    pub seed: u64,
    /// Trace length (operations, admit-heavy mix).
    pub requests: usize,
    /// Worker shards the port tables are partitioned across.
    pub shards: usize,
    /// Whether the per-shard write-ahead intent journal is on. Turning
    /// it off is the negative control: injected crashes must then lose
    /// reservations and fail the run.
    pub journal: bool,
}

impl ChaosServeConfig {
    /// The default chaos-serve scenario with the journal on.
    #[must_use]
    pub fn new(switches: usize, seed: u64, requests: usize, shards: usize) -> Self {
        ChaosServeConfig {
            switches: switches.max(2),
            seed,
            requests,
            shards: shards.max(1),
            journal: true,
        }
    }
}

/// Everything one chaos-serve run produced.
#[derive(Debug)]
pub struct ChaosServeOutcome {
    /// The scenario that was run.
    pub config: ChaosServeConfig,
    /// The faulted sharded service's report.
    pub report: ServeReport,
    /// What the fault engine injected and survived (shard-invariant).
    pub fault_stats: FaultStats,
    /// FNV-1a digest of the faulted run's final tables.
    pub tables_digest: u64,
    /// FNV-1a digest of the sequential manager's final tables.
    pub seq_digest: u64,
    /// Whether every final table passed the full consistency audit.
    pub consistent: bool,
    /// Whether the faulted outcome vector equals the sequential one.
    pub outcomes_match: bool,
    /// Reservations the faulted run lost versus the unfaulted baseline
    /// (live connections whose hops no longer release cleanly).
    pub lost: u64,
    /// Reserved weight the faulted run holds beyond the baseline after
    /// sweeping every live connection out (double-applied commits).
    pub duplicated: u64,
    /// The faulted run's merged recorder (metrics, request tracer and
    /// — on windowed runs — the finished timeline).
    pub recorder: ObsRecorder,
}

fn build_manager(config: &ChaosServeConfig) -> (QosManager, u16) {
    let topo: Topology = irregular::generate(irregular::IrregularConfig::with_switches(
        config.switches,
        config.seed,
    ));
    let hosts = topo.num_hosts() as u16;
    let routing = updown::compute(&topo);
    (
        QosManager::new(topo, routing, SlTable::paper_table1()),
        hosts,
    )
}

/// Releases every live connection's hops (reverse path order) out of a
/// clone of `tables` and reports `(failed releases, leftover reserved
/// weight)` — the raw material of the exactly-once ledger. Run over
/// both the faulted and the baseline run, the *difference* isolates
/// fault damage from legitimate residue (e.g. repairs evicting
/// reservations that a later teardown then fails to find).
fn sweep_ledger(tables: &PortTables, live: &[service::LiveConn]) -> (u64, u64) {
    let mut t = tables.clone();
    let mut failed = 0u64;
    for conn in live {
        for &hop in conn.hops.iter().rev() {
            if t.release_hop(hop, conn.weight).is_err() {
                failed += 1;
            }
        }
    }
    let leftover: u64 = t
        .tables()
        .map(|(_, tab)| u64::from(tab.reserved_weight()))
        .sum();
    (failed, leftover)
}

impl ChaosServeOutcome {
    /// Whether the faulted service converged to the sequential
    /// reference with zero lost and zero duplicated reservations.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.consistent
            && self.outcomes_match
            && self.tables_digest == self.seq_digest
            && self.lost == 0
            && self.duplicated == 0
    }

    /// One-line machine-readable summary (the `ibaqos chaos-serve`
    /// stderr contract on failure). This line carries the shard count,
    /// so it is *not* part of the shard-invariant report body.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let f = &self.fault_stats;
        format!(
            "chaos-serve: verdict={} shards={} outcomes={} tables={} lost={} dup={} \
             crashes={} timeouts={} journal={} seed={}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.config.shards,
            if self.outcomes_match {
                "match"
            } else {
                "DIVERGED"
            },
            if self.tables_digest == self.seq_digest {
                "match"
            } else {
                "DIVERGED"
            },
            self.lost,
            self.duplicated,
            f.crashes,
            f.timeouts,
            if self.config.journal { "on" } else { "off" },
            self.config.seed,
        )
    }

    /// The full `ibaqos chaos-serve --replay` report. Everything in it
    /// is a pure function of (topology seed, trace, fault calendar) —
    /// never of the shard count — so replays at different shard counts
    /// must be byte-identical.
    #[must_use]
    pub fn render_report(&self) -> String {
        let c = &self.config;
        let r = &self.report;
        let f = &self.fault_stats;
        let mut out = format!(
            "chaos-serve: switches={} seed={} requests={} journal={}\n\
             faults: crashes={} msg_losses={} msg_delays={} reply_losses={} timeouts={} \
             shed=[{},{}]\n\
             trace: accepted={} rejected={} released={} live={}\n\
             tables: digest={:#018x} consistent={}\n\
             ledger: lost={} duplicated={}\n\
             differential: outcomes={} tables={}\n",
            c.switches,
            c.seed,
            c.requests,
            if c.journal { "on" } else { "off" },
            f.crashes,
            f.msg_losses,
            f.msg_delays,
            f.reply_losses,
            f.timeouts,
            f.shed[0],
            f.shed[1],
            r.accepted,
            r.rejected,
            r.released,
            r.live.len(),
            self.tables_digest,
            if self.consistent { "yes" } else { "no" },
            self.lost,
            self.duplicated,
            if self.outcomes_match {
                "match"
            } else {
                "DIVERGED"
            },
            if self.tables_digest == self.seq_digest {
                "match"
            } else {
                "DIVERGED"
            },
        );
        out.push_str("outcomes:\n");
        for (i, o) in r.outcomes.iter().enumerate() {
            out.push_str(&format!("  op={i:03} {o:?}\n"));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.passed() {
                "PASS (faulted service converged to the sequential manager, exactly-once)"
            } else {
                "FAIL (faulted service lost or duplicated reservations)"
            }
        ));
        out
    }
}

/// Ring capacity for the coordinator's request tracer on windowed runs.
const CHAOS_SERVE_TRACE_CAP: usize = 1 << 16;

/// Runs the chaos-serve scenario: one faulted sharded run plus the
/// sequential reference and the unfaulted ledger baseline.
#[must_use]
pub fn run_chaos_serve(config: &ChaosServeConfig) -> ChaosServeOutcome {
    run_chaos_serve_inner(config, 0)
}

/// [`run_chaos_serve`] with a windowed timeline and a request tracer
/// attached to the faulted recorder (for `--slo` and the flight
/// recorder). The differential verdicts are unaffected.
#[must_use]
pub fn run_chaos_serve_windowed(config: &ChaosServeConfig, window_len: u64) -> ChaosServeOutcome {
    run_chaos_serve_inner(config, window_len.max(1))
}

fn run_chaos_serve_inner(config: &ChaosServeConfig, window_len: u64) -> ChaosServeOutcome {
    let (planner, hosts) = build_manager(config);
    let ops = service::generate_trace(&TraceConfig::new(hosts, config.seed, config.requests));

    // The control-plane fault calendar rides the same seeded-schedule
    // machinery as the fabric faults, then compiles into the service's
    // fault plan.
    let calendar = iba_sim::fault::FaultPlan::generate_control(config.seed, ops.len());
    let plan = ServeFaultPlan::from_calendar(&calendar);

    // Sequential reference on an identical, independently built manager.
    let (mut seq_mgr, _) = build_manager(config);
    let mut seq_rec = ObsRecorder::new();
    let seq_outcomes: Vec<TraceOutcome> =
        service::apply_trace_sequential(&mut seq_mgr, &ops, &mut seq_rec);
    let seq_digest = fnv64(format!("{:?}", seq_mgr.port_tables()).as_bytes());

    // Unfaulted sharded baseline: its ledger residue is the legitimate
    // one (repairs evict reservations even without faults).
    let (base_planner, _) = build_manager(config);
    let mut base_rec = ObsRecorder::new();
    let baseline = service::run_trace(&base_planner, &ops, 1, &mut base_rec);
    let (base_lost, base_leftover) = sweep_ledger(&baseline.tables, &baseline.live);

    // The faulted run.
    let mut rec = if window_len > 0 {
        let mut r = ObsRecorder::with_tracer(CHAOS_SERVE_TRACE_CAP);
        r.timeline = Some(iba_obs::Timeline::new(window_len));
        r
    } else {
        ObsRecorder::new()
    };
    let opts = ServeOptions {
        journal: config.journal,
        ..ServeOptions::default()
    };
    let report = service::run_trace_faulted(&planner, &ops, config.shards, &plan, &opts, &mut rec);
    rec.finish_timeline();
    let tables_digest = fnv64(format!("{:?}", report.tables).as_bytes());

    let (run_lost, run_leftover) = sweep_ledger(&report.tables, &report.live);
    let lost = run_lost.saturating_sub(base_lost);
    let duplicated = run_leftover.saturating_sub(base_leftover);

    let consistent = report.tables.check_all().is_ok();
    let outcomes_match = report.outcomes == seq_outcomes;
    let fault_stats = report.fault_stats;

    ChaosServeOutcome {
        config: *config,
        report,
        fault_stats,
        tables_digest,
        seq_digest,
        consistent,
        outcomes_match,
        lost,
        duplicated,
        recorder: rec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_serve_passes_and_report_is_shard_invariant() {
        let reports: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&shards| {
                let outcome = run_chaos_serve(&ChaosServeConfig::new(4, 7, 48, shards));
                assert!(outcome.passed(), "{}", outcome.summary_line());
                assert!(
                    outcome.fault_stats.crashes + outcome.fault_stats.msg_losses > 0,
                    "calendar injected nothing: {:?}",
                    outcome.fault_stats
                );
                outcome.render_report()
            })
            .collect();
        assert_eq!(reports[0], reports[1], "1 vs 2 shards");
        assert_eq!(reports[0], reports[2], "1 vs 8 shards");
        assert!(reports[0].contains("verdict: PASS"));
    }

    #[test]
    fn journal_off_negative_control_fails_with_lost_reservations() {
        let mut config = ChaosServeConfig::new(4, 7, 48, 2);
        config.journal = false;
        let outcome = run_chaos_serve(&config);
        assert!(!outcome.passed(), "negative control passed");
        assert!(
            outcome.lost > 0 || !outcome.outcomes_match,
            "journal-off run lost nothing: {}",
            outcome.summary_line()
        );
        assert!(outcome
            .summary_line()
            .starts_with("chaos-serve: verdict=FAIL"));
    }

    #[test]
    fn chaos_serve_summary_names_the_shard_count() {
        let outcome = run_chaos_serve(&ChaosServeConfig::new(4, 3, 24, 2));
        assert!(outcome.summary_line().contains("shards=2"));
        assert!(outcome.summary_line().contains("journal=on"));
    }
}
