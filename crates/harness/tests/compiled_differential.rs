//! Differential tests for the compiled arbitration pipeline.
//!
//! The schedule compiler (`iba_core::CompiledVlArb`) must be
//! observationally identical to the interpreted reference engine
//! (`iba_core::VlArbEngine`): same grants, same delivery times, same
//! digests — across the full paper pipeline, not just unit-level grant
//! sequences. These tests hold the two modes to byte-identical delivery
//! digests over the seeded sweep, verify the digest is invariant under
//! the worker-thread count, and property-check (100 seeds) that every
//! table mutation path invalidates the compiled schedule.

use iba_harness::{build_experiment_sized, run_measured, run_points, SimPoint};
use iba_obs::ObsRecorder;
use iba_qos::RecoveryManager;
use iba_sim::{ArbiterMode, FaultAction, NodeId, NullObserver};
use iba_traffic::{RequestGenerator, WorkloadConfig};

/// Compiled and interpreted arbiters must deliver the exact same
/// packets at the exact same times over the seeded experiment sweep.
#[test]
fn compiled_matches_interpreted_delivery_digests() {
    for &(mtu, seed) in &[(256u32, 11u64), (1024, 22), (4096, 33)] {
        let compiled = {
            let exp = build_experiment_sized(mtu, 4, seed, 40);
            assert_eq!(
                exp.frame.sim_config().arbiter,
                ArbiterMode::Compiled,
                "compiled mode must be the default"
            );
            run_measured(&exp, 3, true)
        };
        let interpreted = {
            let mut exp = build_experiment_sized(mtu, 4, seed, 40);
            exp.frame.sim_config_mut().arbiter = ArbiterMode::Interpreted;
            run_measured(&exp, 3, true)
        };
        assert!(
            compiled.delivery_count > 0,
            "steady state delivered nothing"
        );
        assert_eq!(
            compiled.delivery_count, interpreted.delivery_count,
            "mtu={mtu} seed={seed}: delivery counts diverged"
        );
        assert_eq!(
            compiled.delivery_digest, interpreted.delivery_digest,
            "mtu={mtu} seed={seed}: compiled arbiter changed the delivery stream"
        );
        assert_eq!(
            compiled.stats.delivered_bytes, interpreted.stats.delivered_bytes,
            "mtu={mtu} seed={seed}: delivered byte totals diverged"
        );
    }
}

/// The compiled-arbiter sweep renders byte-identically at 1, 2 and 8
/// worker threads (the recorded-run / `IBA_THREADS` contract).
#[test]
fn compiled_sweep_is_thread_invariant() {
    let points: Vec<SimPoint> = [5u64, 6, 7]
        .iter()
        .map(|&seed| SimPoint {
            switches: 4,
            seed,
            mtu: 1024,
            background: false,
            steady_packets: 3,
            reject_limit: 40,
        })
        .collect();
    let render = |threads: usize| {
        let (outcomes, rec) = run_points(&points, threads);
        let lines: Vec<String> = outcomes.iter().map(|o| o.render()).collect();
        // harness_threads records the worker count itself and is the
        // one reading allowed to differ between runs.
        let metrics: Vec<String> = rec
            .metrics
            .snapshot()
            .iter()
            .filter(|s| s.name != "harness_threads")
            .map(|s| format!("{s:?}"))
            .collect();
        (lines, metrics)
    };
    let (one, m1) = render(1);
    let (two, m2) = render(2);
    let (eight, m8) = render(8);
    assert_eq!(one, two, "outcomes differ between 1 and 2 threads");
    assert_eq!(one, eight, "outcomes differ between 1 and 8 threads");
    assert_eq!(m1, m2, "merged metrics differ between 1 and 2 threads");
    assert_eq!(m1, m8, "merged metrics differ between 1 and 8 threads");
}

/// Property (100 seeds): every table mutation path — admit, teardown,
/// repair and fault corruption — invalidates the compiled schedule and
/// triggers a recompile, and the recorder hooks see the same counts as
/// the fabric's own accounting.
#[test]
fn every_mutation_path_invalidates_the_schedule() {
    for seed in 0..100u64 {
        let exp = build_experiment_sized(256, 2, seed, 10);
        let mut frame = exp.frame;
        let topo = frame.manager.topology().clone();
        let (mut fabric, _obs) = frame.build_fabric(seed, None);
        let ports: u64 = u64::try_from(topo.num_hosts()).unwrap()
            + u64::try_from(topo.num_switches()).unwrap() * u64::from(topo.ports_per_switch());
        // build_fabric compiles every port once, then apply_tables
        // recompiles every wired port.
        assert!(fabric.schedule_compiles() >= ports);
        let base_invalidations = fabric.schedule_invalidations();
        let mut rec = ObsRecorder::new();

        // Admit: a table download after a new admission invalidates.
        let mut gen = RequestGenerator::new(
            &topo,
            frame.manager.sl_table(),
            &WorkloadConfig::new(256, seed ^ 0xBEEF),
        );
        let before = fabric.schedule_invalidations();
        let mut admitted = None;
        for _ in 0..50 {
            let req = gen.next_request();
            if let Ok(id) = frame.manager.request(&req) {
                admitted = Some(id);
                break;
            }
        }
        let admitted = admitted.expect("no admission in 50 attempts");
        frame.manager.apply_tables_observed(&mut fabric, &mut rec);
        assert!(
            fabric.schedule_invalidations() > before,
            "seed {seed}: admit did not invalidate"
        );

        // Teardown: the next download invalidates again.
        let before = fabric.schedule_invalidations();
        assert!(frame.manager.teardown(admitted));
        frame.manager.apply_tables_observed(&mut fabric, &mut rec);
        assert!(
            fabric.schedule_invalidations() > before,
            "seed {seed}: teardown did not invalidate"
        );

        // Repair: corrupt the manager's tables, repair, re-download.
        let before = fabric.schedule_invalidations();
        frame.manager.corrupt_tables(seed);
        let mut recovery = RecoveryManager::new(seed);
        frame.manager.repair_tables(&mut recovery, &mut rec);
        frame.manager.apply_tables_observed(&mut fabric, &mut rec);
        assert!(
            fabric.schedule_invalidations() > before,
            "seed {seed}: repair did not invalidate"
        );

        // Fault corruption: an in-fabric CorruptTable event invalidates
        // without any subnet-manager involvement.
        let before = fabric.schedule_invalidations();
        fabric.schedule_fault(
            fabric.now(),
            FaultAction::CorruptTable {
                node: NodeId::Host(u16::try_from(seed % topo.num_hosts() as u64).unwrap()),
                port: 0,
                seed,
            },
        );
        fabric.run_until_recorded(fabric.now() + 1, &mut NullObserver, &mut rec);
        assert_eq!(
            fabric.schedule_invalidations(),
            before + 1,
            "seed {seed}: fault corruption did not invalidate exactly once"
        );

        // Invalidations always pair with recompiles past the initial
        // setup, and the recorder saw every one performed under it.
        assert_eq!(
            fabric.schedule_compiles(),
            ports + fabric.schedule_invalidations(),
            "seed {seed}: compiles != initial ports + invalidations"
        );
        let observed = fabric.schedule_invalidations() - base_invalidations;
        assert_eq!(
            rec.metrics.schedule_invalidations.get(),
            observed,
            "seed {seed}: recorder missed invalidations"
        );
        assert_eq!(
            rec.metrics.schedule_compiles.get(),
            observed,
            "seed {seed}: recorder hook compiles must pair with invalidations"
        );
    }
}
