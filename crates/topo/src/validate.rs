//! Fabric validation: routing completeness and deadlock freedom.
//!
//! Deadlock freedom is certified the classic way: build the **channel
//! dependency graph** (one node per directed switch-to-switch link, one
//! edge whenever some route enters a switch on one link and leaves on
//! another) and check it is acyclic. Up*/down* routing guarantees this
//! by construction; the checker makes the guarantee testable for any
//! routing table.

use crate::graph::{PortPeer, SwitchId, Topology};
use crate::updown::RoutingTable;
use std::collections::HashMap;

/// A directed channel: the link out of `switch` through `port`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Channel {
    switch: u16,
    port: u8,
}

/// Structural invariant of every generated fabric: internally
/// consistent wiring (symmetric links, no dangling ports) and a single
/// connected component. Both generators assert this on their output;
/// the verification crate and property tests call it directly.
pub fn check_well_formed(topo: &Topology) -> Result<(), String> {
    topo.check_integrity()?;
    if !topo.is_connected() {
        return Err("topology is not connected".to_string());
    }
    Ok(())
}

/// Builds the channel dependency graph induced by `routing` and checks
/// it for cycles. Returns `Ok(())` when deadlock-free, or a description
/// of a cyclic dependency.
pub fn check_deadlock_freedom(topo: &Topology, routing: &RoutingTable) -> Result<(), String> {
    // Enumerate channels and dependencies.
    let mut index: HashMap<Channel, usize> = HashMap::new();
    let mut channels: Vec<Channel> = Vec::new();
    for s in topo.switch_ids() {
        for (p, _, _) in topo.switch_links(s) {
            let c = Channel {
                switch: s.0,
                port: p,
            };
            index.insert(c, channels.len());
            channels.push(c);
        }
    }
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); channels.len()];

    for dest in topo.host_ids() {
        for src in topo.host_ids() {
            let Some(path) = routing.switch_path(topo, src, dest) else {
                return Err(format!("no route {src}->{dest}"));
            };
            // Convert the switch path to the sequence of output channels.
            let mut prev: Option<usize> = None;
            for (i, &s) in path.iter().enumerate() {
                if i + 1 == path.len() {
                    break; // last hop exits to the host, no channel
                }
                let port = routing.port(s, dest);
                let c = index[&Channel { switch: s.0, port }];
                if let Some(p) = prev {
                    if !deps[p].contains(&c) {
                        deps[p].push(c);
                    }
                }
                prev = Some(c);
            }
        }
    }

    // Cycle check via iterative three-colour DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; channels.len()];
    for start in 0..channels.len() {
        if colour[start] != Colour::White {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack = vec![(start, 0usize)];
        colour[start] = Colour::Grey;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            if *child < deps[node].len() {
                let next = deps[node][*child];
                *child += 1;
                match colour[next] {
                    Colour::White => {
                        colour[next] = Colour::Grey;
                        stack.push((next, 0));
                    }
                    Colour::Grey => {
                        let c = channels[next];
                        return Err(format!(
                            "cyclic channel dependency through S{} port {}",
                            c.switch, c.port
                        ));
                    }
                    Colour::Black => {}
                }
            } else {
                colour[node] = Colour::Black;
                stack.pop();
            }
        }
    }
    Ok(())
}

/// Checks that every (src, dest) pair routes to the correct host port
/// without loops.
pub fn check_routing_completeness(topo: &Topology, routing: &RoutingTable) -> Result<(), String> {
    for src in topo.host_ids() {
        for dest in topo.host_ids() {
            let Some(path) = routing.switch_path(topo, src, dest) else {
                return Err(format!("route {src}->{dest} loops or dead-ends"));
            };
            let last = *path.last().unwrap();
            if last != topo.host_switch(dest) {
                return Err(format!("route {src}->{dest} ends at wrong switch {last}"));
            }
            let exit = routing.port(last, dest);
            if topo.peer(last, exit) != PortPeer::Host(dest) {
                return Err(format!("route {src}->{dest} exits wrong port {exit}"));
            }
        }
    }
    Ok(())
}

/// Mean switch-path length (in switch hops) over all distinct host pairs
/// — a quick topology quality metric used in reports.
#[must_use]
pub fn mean_path_switches(topo: &Topology, routing: &RoutingTable) -> f64 {
    let mut total = 0usize;
    let mut pairs = 0usize;
    for src in topo.host_ids() {
        for dest in topo.host_ids() {
            if src == dest {
                continue;
            }
            if let Some(p) = routing.switch_path(topo, src, dest) {
                total += p.len();
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        return 0.0;
    }
    total as f64 / pairs as f64
}

/// Convenience: the switch id of the most loaded output channel when
/// routing uniform all-to-all traffic (static analysis).
#[must_use]
pub fn hottest_channel(topo: &Topology, routing: &RoutingTable) -> Option<(SwitchId, u8, usize)> {
    let mut load: HashMap<(u16, u8), usize> = HashMap::new();
    for src in topo.host_ids() {
        for dest in topo.host_ids() {
            if src == dest {
                continue;
            }
            let path = routing.switch_path(topo, src, dest)?;
            for (i, &s) in path.iter().enumerate() {
                if i + 1 == path.len() {
                    break;
                }
                let port = routing.port(s, dest);
                *load.entry((s.0, port)).or_default() += 1;
            }
        }
    }
    load.into_iter()
        .max_by_key(|&(_, l)| l)
        .map(|((s, p), l)| (SwitchId(s), p, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irregular::{generate, IrregularConfig};
    use crate::updown;

    #[test]
    fn random_fabrics_are_deadlock_free_and_complete() {
        for seed in 0..6 {
            let t = generate(IrregularConfig::paper_default(seed));
            let r = updown::compute(&t);
            check_routing_completeness(&t, &r).unwrap();
            check_deadlock_freedom(&t, &r).unwrap();
        }
    }

    #[test]
    fn sweep_sizes_deadlock_free() {
        for n in [2, 8, 32, 64] {
            let t = generate(IrregularConfig::with_switches(n, 3));
            let r = updown::compute(&t);
            check_deadlock_freedom(&t, &r).unwrap();
        }
    }

    #[test]
    fn mesh_is_deadlock_free() {
        let t = crate::regular::mesh2d(4, 4, 1);
        let r = updown::compute(&t);
        check_routing_completeness(&t, &r).unwrap();
        check_deadlock_freedom(&t, &r).unwrap();
    }

    #[test]
    fn metrics_sane() {
        let t = generate(IrregularConfig::paper_default(0));
        let r = updown::compute(&t);
        let mean = mean_path_switches(&t, &r);
        assert!(mean >= 1.0 && mean < t.num_switches() as f64);
        let hot = hottest_channel(&t, &r).unwrap();
        assert!(hot.2 > 0);
    }
}
