//! Up*/down* routing: the classic deadlock-free routing for irregular
//! networks.
//!
//! A BFS spanning tree from a root switch assigns each switch a level;
//! every link gets an "up" direction (towards the root: lower level, or
//! equal level and lower id). A legal route crosses zero or more links
//! in the up direction followed by zero or more in the down direction —
//! never up after down — which breaks every cycle in the channel
//! dependency graph and hence guarantees deadlock freedom.
//!
//! The [`RoutingTable`] holds, for every `(switch, destination host)`,
//! the output port of a *shortest legal* path (deterministic routing, as
//! in the paper's switch model).

use crate::graph::{HostId, PortPeer, SwitchId, Topology};
use std::collections::VecDeque;

/// Per-switch forwarding tables: `port = table[switch][destination]`.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    /// `ports[s][h]` = output port on switch `s` towards host `h`.
    ports: Vec<Vec<u8>>,
    /// `levels[s]` = BFS tree level of switch `s` (root = 0).
    levels: Vec<u32>,
    root: SwitchId,
}

impl RoutingTable {
    /// The output port switch `s` forwards packets for host `dest` on.
    #[must_use]
    pub fn port(&self, switch: SwitchId, dest: HostId) -> u8 {
        self.ports[switch.index()][dest.index()]
    }

    /// The BFS level of a switch (root = 0).
    #[must_use]
    pub fn level(&self, switch: SwitchId) -> u32 {
        self.levels[switch.index()]
    }

    /// The root switch of the spanning tree.
    #[must_use]
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// Number of switch-to-switch hops from `src` host's switch to
    /// `dest` host's switch, plus the two host links: the path length in
    /// links. Returns `None` for unreachable pairs (cannot happen on
    /// connected fabrics).
    #[must_use]
    pub fn path_hops(&self, topo: &Topology, src: HostId, dest: HostId) -> Option<usize> {
        let mut s = topo.host_switch(src);
        let target = topo.host_switch(dest);
        let mut hops = 1; // host -> first switch
        let mut guard = 0;
        while s != target {
            let p = self.port(s, dest);
            match topo.peer(s, p) {
                PortPeer::Switch { switch, .. } => s = switch,
                _ => return None,
            }
            hops += 1;
            guard += 1;
            if guard > topo.num_switches() {
                return None; // routing loop — invalid table
            }
        }
        Some(hops)
    }

    /// The full switch path (excluding host links) from `src` to `dest`.
    #[must_use]
    pub fn switch_path(&self, topo: &Topology, src: HostId, dest: HostId) -> Option<Vec<SwitchId>> {
        let mut s = topo.host_switch(src);
        let target = topo.host_switch(dest);
        let mut path = vec![s];
        while s != target {
            let p = self.port(s, dest);
            match topo.peer(s, p) {
                PortPeer::Switch { switch, .. } => s = switch,
                _ => return None,
            }
            if path.contains(&s) {
                return None; // loop
            }
            path.push(s);
        }
        Some(path)
    }
}

/// Direction of a switch-to-switch hop under the tree levelling.
fn is_up(levels: &[u32], from: SwitchId, to: SwitchId) -> bool {
    // Up = towards the root: strictly lower level, or equal level and
    // lower switch id (the standard total-order tie-break).
    (levels[to.index()], to.index()) < (levels[from.index()], from.index())
}

/// Computes up*/down* forwarding tables over a connected topology.
///
/// The root is the switch of maximum connectivity (ties to the lowest
/// id), which keeps tree depth small. For each destination, a reverse
/// BFS over the two-phase state graph `(switch, may-still-go-up)` finds
/// shortest *legal* distances; each switch then forwards over the first
/// port (lowest number) leading to a neighbour on such a path.
#[must_use]
pub fn compute(topo: &Topology) -> RoutingTable {
    let n = topo.num_switches();
    let root = topo
        .switch_ids()
        .max_by_key(|&s| (topo.switch_links(s).count(), std::cmp::Reverse(s.index())))
        .expect("at least one switch");

    // BFS levels from the root.
    let mut levels = vec![u32::MAX; n];
    levels[root.index()] = 0;
    let mut queue = VecDeque::from([root]);
    while let Some(s) = queue.pop_front() {
        for (_, peer, _) in topo.switch_links(s) {
            if levels[peer.index()] == u32::MAX {
                levels[peer.index()] = levels[s.index()] + 1;
                queue.push_back(peer);
            }
        }
    }
    assert!(
        levels.iter().all(|&l| l != u32::MAX),
        "topology must be connected"
    );

    let mut ports = vec![vec![0u8; topo.num_hosts()]; n];

    for dest in topo.host_ids() {
        let target = topo.host_switch(dest);
        // dist[s][phase]: shortest legal distance from s to target when
        // the path may still go up (phase 0) or is committed to going
        // down (phase 1). Legal forward transitions:
        //   (s, up-phase)  --up-->   (t, up-phase)
        //   (s, up-phase)  --down--> (t, down-phase)
        //   (s, down-phase)--down--> (t, down-phase)
        // We BFS backwards from the target (distance 0 in both phases).
        const INF: u32 = u32::MAX;
        let mut dist = vec![[INF; 2]; n];
        dist[target.index()] = [0, 0];
        let mut queue = VecDeque::from([(target, 0usize), (target, 1usize)]);
        while let Some((t, phase)) = queue.pop_front() {
            let d = dist[t.index()][phase];
            for (_, s, _) in topo.switch_links(t) {
                // Hop s -> t. Which predecessor states can use it?
                let hop_up = is_up(&levels, s, t);
                let preds: &[usize] = if hop_up {
                    // An up hop keeps the up phase and requires the
                    // successor state to still be in the up phase.
                    if phase == 0 {
                        &[0]
                    } else {
                        &[]
                    }
                } else {
                    // A down hop: predecessor in up phase (first down)
                    // or already in down phase — successor state must be
                    // the down phase.
                    if phase == 1 {
                        &[0, 1]
                    } else {
                        &[]
                    }
                };
                for &p in preds {
                    if dist[s.index()][p] == INF {
                        dist[s.index()][p] = d + 1;
                        queue.push_back((s, p));
                    }
                }
            }
        }

        for s in topo.switch_ids() {
            if s == target {
                let (port, _) = topo
                    .switch_hosts(s)
                    .find(|&(_, h)| h == dest)
                    .expect("dest host on its switch");
                ports[s.index()][dest.index()] = port;
                continue;
            }
            // Destination-based tables cannot carry the up/down phase,
            // so per-switch choices must compose into legal paths on
            // their own. The consistent rule is **down-preference**:
            //
            // * if the destination is reachable from here going only
            //   down (`dist[s][1]` finite), take the shortest such down
            //   hop — every switch it leads to also has a finite
            //   down-only distance, so the suffix stays down;
            // * otherwise take the shortest legal up hop.
            //
            // A packet that has already descended only ever visits
            // switches with finite down-only distance, so it never turns
            // back up: the composed route is always up* then down*.
            assert!(
                dist[s.index()][0] != INF,
                "up*/down* must reach every destination on a connected fabric"
            );
            let down_distance = dist[s.index()][1];
            let mut chosen = None;
            for (port, t, _) in topo.switch_links(s) {
                let hop_up = is_up(&levels, s, t);
                let good = if down_distance != INF {
                    !hop_up && dist[t.index()][1] != INF && dist[t.index()][1] + 1 == down_distance
                } else {
                    hop_up
                        && dist[t.index()][0] != INF
                        && dist[t.index()][0] + 1 == dist[s.index()][0]
                };
                if good {
                    chosen = Some(port);
                    break;
                }
            }
            ports[s.index()][dest.index()] = chosen.expect("some neighbour lies on a legal path");
        }
    }

    RoutingTable {
        ports,
        levels,
        root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irregular::{generate, IrregularConfig};

    fn line3() -> Topology {
        // S0 - S1 - S2, one host each.
        let mut t = Topology::new(3, 4);
        t.connect_switches(SwitchId(0), 2, SwitchId(1), 2);
        t.connect_switches(SwitchId(1), 3, SwitchId(2), 2);
        t.attach_host(SwitchId(0), 0);
        t.attach_host(SwitchId(1), 0);
        t.attach_host(SwitchId(2), 0);
        t
    }

    #[test]
    fn line_routes_straight() {
        let t = line3();
        let r = compute(&t);
        // Root is S1 (2 links).
        assert_eq!(r.root(), SwitchId(1));
        assert_eq!(r.level(SwitchId(1)), 0);
        assert_eq!(r.level(SwitchId(0)), 1);
        // H0 (on S0) -> H2 (on S2): S0 out port 2 (to S1), S1 out port 3
        // (to S2), S2 out port 0 (host).
        assert_eq!(r.port(SwitchId(0), HostId(2)), 2);
        assert_eq!(r.port(SwitchId(1), HostId(2)), 3);
        assert_eq!(r.port(SwitchId(2), HostId(2)), 0);
        assert_eq!(r.path_hops(&t, HostId(0), HostId(2)), Some(3));
        assert_eq!(
            r.switch_path(&t, HostId(0), HostId(2)).unwrap(),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)]
        );
    }

    #[test]
    fn local_delivery_uses_host_port() {
        let t = line3();
        let r = compute(&t);
        assert_eq!(r.port(SwitchId(0), HostId(0)), 0);
        assert_eq!(r.path_hops(&t, HostId(0), HostId(0)), Some(1));
    }

    #[test]
    fn all_pairs_reachable_on_random_fabrics() {
        for seed in 0..8 {
            let t = generate(IrregularConfig::paper_default(seed));
            let r = compute(&t);
            for src in t.host_ids() {
                for dest in t.host_ids() {
                    let hops = r.path_hops(&t, src, dest);
                    assert!(hops.is_some(), "no route {src}->{dest} (seed {seed})");
                    assert!(hops.unwrap() <= t.num_switches() + 1);
                }
            }
        }
    }

    #[test]
    fn routes_are_legal_up_down() {
        for seed in 0..8 {
            let t = generate(IrregularConfig::paper_default(seed));
            let r = compute(&t);
            for src in t.host_ids() {
                for dest in t.host_ids() {
                    let path = r.switch_path(&t, src, dest).unwrap();
                    let mut gone_down = false;
                    for w in path.windows(2) {
                        let up = super::is_up(
                            &(0..t.num_switches())
                                .map(|i| r.level(SwitchId(i as u16)))
                                .collect::<Vec<_>>(),
                            w[0],
                            w[1],
                        );
                        if up {
                            assert!(!gone_down, "up after down {src}->{dest} seed {seed}");
                        } else {
                            gone_down = true;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn routes_are_shortest_legal() {
        // On the 3-switch line every route is also globally shortest.
        let t = line3();
        let r = compute(&t);
        assert_eq!(r.path_hops(&t, HostId(0), HostId(1)), Some(2));
        assert_eq!(r.path_hops(&t, HostId(1), HostId(2)), Some(2));
    }

    #[test]
    fn single_switch_fabric() {
        let mut t = Topology::new(1, 4);
        t.attach_host(SwitchId(0), 0);
        t.attach_host(SwitchId(0), 1);
        let r = compute(&t);
        assert_eq!(r.port(SwitchId(0), HostId(0)), 0);
        assert_eq!(r.port(SwitchId(0), HostId(1)), 1);
    }
}
