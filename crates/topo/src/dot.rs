//! Graphviz DOT export of fabric topologies (for papers, debugging and
//! the CLI).

use crate::graph::{PortPeer, Topology};
use crate::updown::RoutingTable;
use std::fmt::Write as _;

/// Renders the fabric as an undirected DOT graph: switches as boxes
/// (labelled with their up*/down* level when a routing table is given),
/// hosts as small circles.
#[must_use]
pub fn to_dot(topo: &Topology, routing: Option<&RoutingTable>) -> String {
    let mut out = String::from("graph fabric {\n");
    let _ = writeln!(out, "  layout=neato; overlap=false; splines=true;");
    for s in topo.switch_ids() {
        let label = match routing {
            Some(r) => format!("{s}\\nlevel {}", r.level(s)),
            None => s.to_string(),
        };
        let root_mark = routing.is_some_and(|r| r.root() == s);
        let _ = writeln!(
            out,
            "  \"{s}\" [shape=box style=filled fillcolor=\"{}\" label=\"{label}\"];",
            if root_mark { "#ffd27f" } else { "#cfe2ff" }
        );
    }
    for h in topo.host_ids() {
        let _ = writeln!(
            out,
            "  \"{h}\" [shape=circle width=0.25 fontsize=8 style=filled fillcolor=\"#e6ffe6\"];"
        );
    }
    // Each undirected link once: emit only from the lexicographically
    // smaller endpoint.
    for s in topo.switch_ids() {
        for (p, peer) in topo
            .switch_links(s)
            .map(|(p, sw, pp)| (p, (sw, pp)))
            .collect::<Vec<_>>()
        {
            let (peer_sw, peer_port) = peer;
            if (s.0, p) < (peer_sw.0, peer_port) {
                let _ = writeln!(
                    out,
                    "  \"{s}\" -- \"{peer_sw}\" [taillabel=\"{p}\" headlabel=\"{peer_port}\" fontsize=7];"
                );
            }
        }
        for (p, h) in topo.switch_hosts(s) {
            let _ = writeln!(out, "  \"{s}\" -- \"{h}\" [taillabel=\"{p}\" fontsize=7];");
        }
    }
    // Unwired ports are worth seeing in debugging dumps.
    for s in topo.switch_ids() {
        let free = (0..topo.ports_per_switch())
            .filter(|&p| topo.peer(s, p) == PortPeer::Free)
            .count();
        if free > 0 {
            let _ = writeln!(out, "  // {s}: {free} free port(s)");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irregular::{generate, IrregularConfig};
    use crate::updown;

    #[test]
    fn dot_contains_every_node_once() {
        let t = generate(IrregularConfig::with_switches(4, 1));
        let dot = to_dot(&t, None);
        assert!(dot.starts_with("graph fabric {"));
        assert!(dot.trim_end().ends_with('}'));
        for s in t.switch_ids() {
            assert_eq!(
                dot.matches(&format!("\"{s}\" [shape=box")).count(),
                1,
                "{s}"
            );
        }
        for h in t.host_ids() {
            assert_eq!(dot.matches(&format!("\"{h}\" [shape=circle")).count(), 1);
        }
    }

    #[test]
    fn each_switch_link_emitted_once() {
        let t = generate(IrregularConfig::with_switches(8, 2));
        let dot = to_dot(&t, None);
        let total_links: usize = t
            .switch_ids()
            .map(|s| t.switch_links(s).count())
            .sum::<usize>()
            / 2;
        let edges = dot.lines().filter(|l| l.contains("-- \"S")).count();
        assert_eq!(edges, total_links);
    }

    #[test]
    fn routing_adds_levels_and_root() {
        let t = generate(IrregularConfig::with_switches(4, 3));
        let r = updown::compute(&t);
        let dot = to_dot(&t, Some(&r));
        assert!(dot.contains("level 0"));
        assert!(dot.contains("#ffd27f"), "root not highlighted");
    }
}
