//! Topology data model: switches with numbered ports, hosts attached to
//! switch ports, and bidirectional switch-to-switch links.

use std::fmt;

/// Identifier of a switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SwitchId(pub u16);

/// Identifier of a host (also its LID in the simulator).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u16);

impl SwitchId {
    /// Index form.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl HostId {
    /// Index form.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0)
    }
}

/// What a switch port is wired to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortPeer {
    /// A host channel adapter.
    Host(HostId),
    /// Another switch's port.
    Switch {
        /// Peer switch.
        switch: SwitchId,
        /// Peer port number on that switch.
        port: u8,
    },
    /// Nothing attached.
    Free,
}

/// A switch: a fixed array of ports.
#[derive(Clone, Debug)]
pub struct Switch {
    ports: Vec<PortPeer>,
}

impl Switch {
    /// The peers of all ports.
    #[must_use]
    pub fn ports(&self) -> &[PortPeer] {
        &self.ports
    }
}

/// A host and its attachment point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Host {
    /// Switch it hangs off.
    pub switch: SwitchId,
    /// Port number on that switch.
    pub port: u8,
}

/// A complete fabric topology.
///
/// Invariants (enforced by the builder methods):
/// * every switch has exactly `ports_per_switch` ports;
/// * switch-to-switch links are symmetric;
/// * every host is attached to exactly one switch port, and that port
///   points back at the host.
#[derive(Clone, Debug)]
pub struct Topology {
    switches: Vec<Switch>,
    hosts: Vec<Host>,
    ports_per_switch: u8,
}

impl Topology {
    /// An unwired fabric of `switches` switches with `ports_per_switch`
    /// ports each.
    #[must_use]
    pub fn new(switches: usize, ports_per_switch: u8) -> Self {
        assert!(switches > 0 && switches <= u16::MAX as usize);
        Topology {
            switches: vec![
                Switch {
                    ports: vec![PortPeer::Free; ports_per_switch as usize],
                };
                switches
            ],
            hosts: Vec::new(),
            ports_per_switch,
        }
    }

    /// Number of switches.
    #[must_use]
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts.
    #[must_use]
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Ports per switch.
    #[must_use]
    pub fn ports_per_switch(&self) -> u8 {
        self.ports_per_switch
    }

    /// All switch ids.
    pub fn switch_ids(&self) -> impl Iterator<Item = SwitchId> {
        (0..self.switches.len() as u16).map(SwitchId)
    }

    /// All host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> {
        (0..self.hosts.len() as u16).map(HostId)
    }

    /// The peer of a switch port.
    #[must_use]
    pub fn peer(&self, switch: SwitchId, port: u8) -> PortPeer {
        self.switches[switch.index()].ports[port as usize]
    }

    /// Host attachment info.
    #[must_use]
    pub fn host(&self, host: HostId) -> Host {
        self.hosts[host.index()]
    }

    /// The switch a host is attached to.
    #[must_use]
    pub fn host_switch(&self, host: HostId) -> SwitchId {
        self.hosts[host.index()].switch
    }

    /// A switch's ports wired to other switches, as
    /// `(local_port, peer_switch, peer_port)`.
    pub fn switch_links(&self, switch: SwitchId) -> impl Iterator<Item = (u8, SwitchId, u8)> + '_ {
        self.switches[switch.index()]
            .ports
            .iter()
            .enumerate()
            .filter_map(|(p, peer)| match *peer {
                PortPeer::Switch { switch: s, port } => Some((p as u8, s, port)),
                _ => None,
            })
    }

    /// A switch's host-attached ports, as `(local_port, host)`.
    pub fn switch_hosts(&self, switch: SwitchId) -> impl Iterator<Item = (u8, HostId)> + '_ {
        self.switches[switch.index()]
            .ports
            .iter()
            .enumerate()
            .filter_map(|(p, peer)| match *peer {
                PortPeer::Host(h) => Some((p as u8, h)),
                _ => None,
            })
    }

    /// The lowest-numbered free port of a switch, if any.
    #[must_use]
    pub fn free_port(&self, switch: SwitchId) -> Option<u8> {
        self.switches[switch.index()]
            .ports
            .iter()
            .position(|p| matches!(p, PortPeer::Free))
            .map(|p| p as u8)
    }

    /// Number of free ports of a switch.
    #[must_use]
    pub fn free_ports(&self, switch: SwitchId) -> usize {
        self.switches[switch.index()]
            .ports
            .iter()
            .filter(|p| matches!(p, PortPeer::Free))
            .count()
    }

    /// Wires two free switch ports together. Panics if either port is
    /// taken or the link is a self-loop on the same port.
    pub fn connect_switches(&mut self, a: SwitchId, pa: u8, b: SwitchId, pb: u8) {
        assert!(!(a == b && pa == pb), "cannot wire a port to itself");
        assert!(
            matches!(self.peer(a, pa), PortPeer::Free),
            "{a} port {pa} is taken"
        );
        assert!(
            matches!(self.peer(b, pb), PortPeer::Free),
            "{b} port {pb} is taken"
        );
        self.switches[a.index()].ports[pa as usize] = PortPeer::Switch {
            switch: b,
            port: pb,
        };
        self.switches[b.index()].ports[pb as usize] = PortPeer::Switch {
            switch: a,
            port: pa,
        };
    }

    /// Attaches a new host to a free switch port; returns its id.
    pub fn attach_host(&mut self, switch: SwitchId, port: u8) -> HostId {
        assert!(
            matches!(self.peer(switch, port), PortPeer::Free),
            "{switch} port {port} is taken"
        );
        let id = HostId(self.hosts.len() as u16);
        self.switches[switch.index()].ports[port as usize] = PortPeer::Host(id);
        self.hosts.push(Host { switch, port });
        id
    }

    /// Whether the switch graph is connected (ignores hosts; a
    /// single-switch fabric is connected).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.num_switches();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(s) = stack.pop() {
            for (_, peer, _) in self.switch_links(SwitchId(s as u16)) {
                if !seen[peer.index()] {
                    seen[peer.index()] = true;
                    count += 1;
                    stack.push(peer.index());
                }
            }
        }
        count == n
    }

    /// Structural integrity check: link symmetry and host back-pointers.
    pub fn check_integrity(&self) -> Result<(), String> {
        for s in self.switch_ids() {
            for (p, peer) in self.switches[s.index()].ports.iter().enumerate() {
                match *peer {
                    PortPeer::Switch { switch, port } => {
                        let back = self.peer(switch, port);
                        if back
                            != (PortPeer::Switch {
                                switch: s,
                                port: p as u8,
                            })
                        {
                            return Err(format!("asymmetric link {s}:{p} -> {switch}:{port}"));
                        }
                    }
                    PortPeer::Host(h) => {
                        let host = self.hosts.get(h.index()).copied();
                        if host
                            != Some(Host {
                                switch: s,
                                port: p as u8,
                            })
                        {
                            return Err(format!("host {h} back-pointer broken at {s}:{p}"));
                        }
                    }
                    PortPeer::Free => {}
                }
            }
        }
        for (i, h) in self.hosts.iter().enumerate() {
            if self.peer(h.switch, h.port) != PortPeer::Host(HostId(i as u16)) {
                return Err(format!(
                    "host H{i} not present on {0}:{1}",
                    h.switch, h.port
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch() -> Topology {
        let mut t = Topology::new(2, 4);
        t.connect_switches(SwitchId(0), 0, SwitchId(1), 0);
        t.attach_host(SwitchId(0), 1);
        t.attach_host(SwitchId(1), 1);
        t
    }

    #[test]
    fn wiring_is_symmetric() {
        let t = two_switch();
        assert_eq!(
            t.peer(SwitchId(0), 0),
            PortPeer::Switch {
                switch: SwitchId(1),
                port: 0
            }
        );
        assert_eq!(
            t.peer(SwitchId(1), 0),
            PortPeer::Switch {
                switch: SwitchId(0),
                port: 0
            }
        );
        t.check_integrity().unwrap();
    }

    #[test]
    fn hosts_attach_and_enumerate() {
        let t = two_switch();
        assert_eq!(t.num_hosts(), 2);
        assert_eq!(t.host_switch(HostId(0)), SwitchId(0));
        assert_eq!(t.host_switch(HostId(1)), SwitchId(1));
        let hosts: Vec<_> = t.switch_hosts(SwitchId(0)).collect();
        assert_eq!(hosts, vec![(1, HostId(0))]);
    }

    #[test]
    fn connectivity_detection() {
        let t = two_switch();
        assert!(t.is_connected());
        let mut u = Topology::new(3, 4);
        u.connect_switches(SwitchId(0), 0, SwitchId(1), 0);
        assert!(!u.is_connected());
    }

    #[test]
    fn free_port_accounting() {
        let mut t = Topology::new(1, 4);
        assert_eq!(t.free_ports(SwitchId(0)), 4);
        assert_eq!(t.free_port(SwitchId(0)), Some(0));
        t.attach_host(SwitchId(0), 0);
        assert_eq!(t.free_ports(SwitchId(0)), 3);
        assert_eq!(t.free_port(SwitchId(0)), Some(1));
    }

    #[test]
    #[should_panic(expected = "is taken")]
    fn double_wiring_panics() {
        let mut t = two_switch();
        t.connect_switches(SwitchId(0), 0, SwitchId(1), 2);
    }

    #[test]
    #[should_panic(expected = "port to itself")]
    fn self_port_loop_panics() {
        let mut t = Topology::new(1, 4);
        t.connect_switches(SwitchId(0), 0, SwitchId(0), 0);
    }

    #[test]
    fn self_switch_loop_on_distinct_ports_allowed() {
        // Unusual but legal in hardware; routing simply never uses it.
        let mut t = Topology::new(1, 4);
        t.connect_switches(SwitchId(0), 0, SwitchId(0), 1);
        t.check_integrity().unwrap();
    }
}
