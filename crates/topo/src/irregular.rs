//! Random irregular topologies, as used by the paper's evaluation:
//! "all switches have 8 ports, 4 of them having a host attached, and the
//! other 4 are used for interconnection between switches".

use crate::graph::{SwitchId, Topology};
use iba_core::rng::SplitMix64;

/// Parameters of the random irregular generator.
#[derive(Clone, Copy, Debug)]
pub struct IrregularConfig {
    /// Number of switches (the paper sweeps 8–64; headline results use 16).
    pub switches: usize,
    /// Host-attached ports per switch (paper: 4).
    pub hosts_per_switch: u8,
    /// Switch-to-switch ports per switch (paper: 4).
    pub interconnect_ports: u8,
    /// RNG seed — the same seed always yields the same fabric.
    pub seed: u64,
}

impl IrregularConfig {
    /// The paper's headline configuration: 16 switches, 64 hosts.
    #[must_use]
    pub fn paper_default(seed: u64) -> Self {
        IrregularConfig {
            switches: 16,
            hosts_per_switch: 4,
            interconnect_ports: 4,
            seed,
        }
    }

    /// A configuration with a different switch count, otherwise the
    /// paper's shape (used by the size sweep, 8–64 switches).
    #[must_use]
    pub fn with_switches(switches: usize, seed: u64) -> Self {
        IrregularConfig {
            switches,
            ..Self::paper_default(seed)
        }
    }
}

/// Generates a random connected irregular fabric.
///
/// Construction:
/// 1. every switch gets `hosts_per_switch` hosts on its first ports;
/// 2. a random spanning tree over the switches guarantees connectivity
///    (each switch links to a random earlier switch that still has a
///    free interconnect port);
/// 3. remaining interconnect ports are randomly paired, avoiding
///    self-links and (where possible) parallel links; ports that cannot
///    be legally paired stay free.
#[must_use]
pub fn generate(config: IrregularConfig) -> Topology {
    assert!(config.switches >= 1);
    assert!(
        config.switches == 1 || config.interconnect_ports >= 1,
        "need interconnect ports to connect multiple switches"
    );
    let mut rng = SplitMix64::seed_from_u64(config.seed);
    let ports = config.hosts_per_switch + config.interconnect_ports;
    let mut topo = Topology::new(config.switches, ports);

    // Hosts first: ports 0..hosts_per_switch of each switch.
    for s in 0..config.switches {
        for p in 0..config.hosts_per_switch {
            topo.attach_host(SwitchId(s as u16), p);
        }
    }

    // Spanning tree: connect switch i (i >= 1) to a random earlier
    // switch with a free port. With k >= 2 interconnect ports such a
    // switch always exists (an earlier tree node has used at most i-1
    // of them... not guaranteed in general, so we search).
    for i in 1..config.switches {
        let candidates: Vec<u16> = (0..i as u16)
            .filter(|&j| topo.free_port(SwitchId(j)).is_some())
            .collect();
        let &j = rng
            .choose(&candidates)
            .expect("spanning tree always finds a free earlier port");
        let pa = topo.free_port(SwitchId(i as u16)).unwrap();
        let pb = topo.free_port(SwitchId(j)).unwrap();
        topo.connect_switches(SwitchId(i as u16), pa, SwitchId(j), pb);
    }

    // Random pairing of the remaining free interconnect ports.
    let mut free: Vec<(u16, u8)> = Vec::new();
    for s in topo.switch_ids() {
        for p in config.hosts_per_switch..ports {
            if matches!(topo.peer(s, p), crate::graph::PortPeer::Free) {
                free.push((s.0, p));
            }
        }
    }
    rng.shuffle(&mut free);
    while free.len() >= 2 {
        let (sa, pa) = free.pop().unwrap();
        // Prefer a partner on a different switch without an existing
        // parallel link; fall back to any different switch; give up on
        // the port otherwise.
        let already_linked: Vec<u16> = topo
            .switch_links(SwitchId(sa))
            .map(|(_, peer, _)| peer.0)
            .collect();
        let pick = free
            .iter()
            .position(|&(sb, _)| sb != sa && !already_linked.contains(&sb))
            .or_else(|| free.iter().position(|&(sb, _)| sb != sa));
        let Some(k) = pick else { continue };
        let (sb, pb) = free.remove(k);
        topo.connect_switches(SwitchId(sa), pa, SwitchId(sb), pb);
        // Shuffle occasionally to avoid positional bias from `remove`.
        if free.len() > 2 && rng.gen_bool(0.25) {
            rng.shuffle(&mut free);
        }
    }

    debug_assert!(crate::validate::check_well_formed(&topo).is_ok());
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let t = generate(IrregularConfig::paper_default(42));
        assert_eq!(t.num_switches(), 16);
        assert_eq!(t.num_hosts(), 64);
        assert_eq!(t.ports_per_switch(), 8);
        assert!(t.is_connected());
        t.check_integrity().unwrap();
        for s in t.switch_ids() {
            assert_eq!(t.switch_hosts(s).count(), 4);
            assert!(t.switch_links(s).count() <= 4);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(IrregularConfig::paper_default(7));
        let b = generate(IrregularConfig::paper_default(7));
        for s in a.switch_ids() {
            let la: Vec<_> = a.switch_links(s).collect();
            let lb: Vec<_> = b.switch_links(s).collect();
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(IrregularConfig::paper_default(1));
        let b = generate(IrregularConfig::paper_default(2));
        let links = |t: &Topology| -> Vec<Vec<(u8, SwitchId, u8)>> {
            t.switch_ids()
                .map(|s| t.switch_links(s).collect())
                .collect()
        };
        assert_ne!(links(&a), links(&b), "seeds 1 and 2 gave identical fabrics");
    }

    #[test]
    fn size_sweep_all_connected() {
        for n in [1, 2, 4, 8, 16, 32, 64] {
            for seed in 0..5 {
                let t = generate(IrregularConfig::with_switches(n, seed));
                assert!(t.is_connected(), "n={n} seed={seed} disconnected");
                t.check_integrity().unwrap();
                assert_eq!(t.num_hosts(), 4 * n);
            }
        }
    }

    #[test]
    fn no_self_links() {
        for seed in 0..10 {
            let t = generate(IrregularConfig::paper_default(seed));
            for s in t.switch_ids() {
                for (_, peer, _) in t.switch_links(s) {
                    assert_ne!(peer, s, "self link at {s} (seed {seed})");
                }
            }
        }
    }
}
