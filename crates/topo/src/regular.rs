//! Regular topologies for examples and sanity baselines: a 2-D mesh of
//! switches with hosts on every switch.

use crate::graph::{SwitchId, Topology};

/// Builds an `rows × cols` 2-D mesh. Each switch gets
/// `hosts_per_switch` hosts plus up to four mesh links; ports are laid
/// out hosts-first, then +X, -X, +Y, -Y as present.
#[must_use]
pub fn mesh2d(rows: usize, cols: usize, hosts_per_switch: u8) -> Topology {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    // Enough ports: hosts + 4 mesh directions.
    let ports = hosts_per_switch + 4;
    let mut t = Topology::new(n, ports);
    let id = |r: usize, c: usize| SwitchId((r * cols + c) as u16);

    for r in 0..rows {
        for c in 0..cols {
            for p in 0..hosts_per_switch {
                t.attach_host(id(r, c), p);
            }
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let pa = t.free_port(id(r, c)).unwrap();
                let pb = t.free_port(id(r, c + 1)).unwrap();
                t.connect_switches(id(r, c), pa, id(r, c + 1), pb);
            }
            if r + 1 < rows {
                let pa = t.free_port(id(r, c)).unwrap();
                let pb = t.free_port(id(r + 1, c)).unwrap();
                t.connect_switches(id(r, c), pa, id(r + 1, c), pb);
            }
        }
    }
    debug_assert!(crate::validate::check_well_formed(&t).is_ok());
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updown;

    #[test]
    fn mesh_shape() {
        let t = mesh2d(3, 3, 2);
        assert_eq!(t.num_switches(), 9);
        assert_eq!(t.num_hosts(), 18);
        assert!(t.is_connected());
        // Corner switch has 2 links, centre has 4.
        assert_eq!(t.switch_links(SwitchId(0)).count(), 2);
        assert_eq!(t.switch_links(SwitchId(4)).count(), 4);
    }

    #[test]
    fn mesh_routes_everywhere() {
        let t = mesh2d(4, 4, 1);
        let r = updown::compute(&t);
        for a in t.host_ids() {
            for b in t.host_ids() {
                assert!(r.path_hops(&t, a, b).is_some());
            }
        }
    }

    #[test]
    fn degenerate_1x1() {
        let t = mesh2d(1, 1, 3);
        assert_eq!(t.num_switches(), 1);
        assert_eq!(t.num_hosts(), 3);
        let r = updown::compute(&t);
        assert_eq!(r.path_hops(&t, crate::HostId(0), crate::HostId(2)), Some(1));
    }
}
