//! # iba-topo — fabric topologies and deadlock-free routing
//!
//! The paper evaluates on *irregular networks randomly generated*, with
//! 8-port switches (4 ports host-attached, 4 for switch-to-switch
//! links). This crate provides:
//!
//! * the topology data model ([`graph`]),
//! * the random irregular generator ([`irregular`]) and a regular 2-D
//!   mesh for examples ([`regular`]),
//! * **up*/down*** routing — the standard deadlock-free routing for
//!   irregular NOWs — producing per-switch forwarding tables
//!   ([`updown`]),
//! * validation: connectivity, routing completeness, and a channel
//!   dependency graph acyclicity check that certifies deadlock freedom
//!   ([`validate`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dot;
pub mod graph;
pub mod irregular;
pub mod regular;
pub mod updown;
pub mod validate;

pub use graph::{HostId, PortPeer, SwitchId, Topology};
pub use irregular::IrregularConfig;
pub use updown::RoutingTable;
