//! Property tests: any randomly generated fabric must be connected,
//! fully routable and deadlock-free.

use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::validate::{check_deadlock_freedom, check_routing_completeness};
use iba_topo::{updown, Topology};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = IrregularConfig> {
    (1usize..=24, 1u8..=4, 2u8..=5, any::<u64>()).prop_map(
        |(switches, hosts, inter, seed)| IrregularConfig {
            switches,
            hosts_per_switch: hosts,
            interconnect_ports: inter,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_fabrics_are_well_formed(config in arb_config()) {
        let t = generate(config);
        prop_assert_eq!(t.num_switches(), config.switches);
        prop_assert_eq!(
            t.num_hosts(),
            config.switches * config.hosts_per_switch as usize
        );
        t.check_integrity().unwrap();
        prop_assert!(t.is_connected());
    }

    #[test]
    fn routing_is_complete_and_deadlock_free(config in arb_config()) {
        let t = generate(config);
        let r = updown::compute(&t);
        check_routing_completeness(&t, &r).unwrap();
        check_deadlock_freedom(&t, &r).unwrap();
    }

    #[test]
    fn paths_are_bounded(config in arb_config()) {
        let t = generate(config);
        let r = updown::compute(&t);
        // An up*/down* path visits each switch at most once, plus the
        // two host links.
        let bound = t.num_switches() + 1;
        for src in t.host_ids() {
            for dest in t.host_ids() {
                let hops = r.path_hops(&t, src, dest).unwrap();
                prop_assert!(hops <= bound, "{src}->{dest} took {hops} links");
            }
        }
    }

    /// Same-seed determinism over arbitrary seeds (experiments depend on
    /// reproducible fabrics).
    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let digest = |t: &Topology| -> Vec<(u16, u8, u16, u8)> {
            t.switch_ids()
                .flat_map(|s| {
                    t.switch_links(s)
                        .map(move |(p, peer, pp)| (s.0, p, peer.0, pp))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let a = generate(IrregularConfig::paper_default(seed));
        let b = generate(IrregularConfig::paper_default(seed));
        prop_assert_eq!(digest(&a), digest(&b));
    }
}
