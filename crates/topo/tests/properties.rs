//! Property tests: any randomly generated fabric must be connected,
//! fully routable and deadlock-free. Cases come from the workspace's
//! deterministic [`SplitMix64`] generator.

use iba_core::rng::SplitMix64;
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::validate::{check_deadlock_freedom, check_routing_completeness};
use iba_topo::{updown, Topology};

fn arb_config(rng: &mut SplitMix64) -> IrregularConfig {
    IrregularConfig {
        switches: rng.gen_range(1usize..=24),
        hosts_per_switch: rng.gen_range(1u8..=4),
        interconnect_ports: rng.gen_range(2u8..=5),
        seed: rng.next_u64(),
    }
}

#[test]
fn generated_fabrics_are_well_formed() {
    let mut rng = SplitMix64::seed_from_u64(0xA0);
    for case in 0..48 {
        let config = arb_config(&mut rng);
        let t = generate(config);
        assert_eq!(t.num_switches(), config.switches, "case {case}");
        assert_eq!(
            t.num_hosts(),
            config.switches * config.hosts_per_switch as usize
        );
        t.check_integrity().unwrap();
        assert!(t.is_connected(), "case {case}: {config:?}");
    }
}

#[test]
fn routing_is_complete_and_deadlock_free() {
    let mut rng = SplitMix64::seed_from_u64(0xB0);
    for _ in 0..48 {
        let config = arb_config(&mut rng);
        let t = generate(config);
        let r = updown::compute(&t);
        check_routing_completeness(&t, &r).unwrap();
        check_deadlock_freedom(&t, &r).unwrap();
    }
}

#[test]
fn paths_are_bounded() {
    let mut rng = SplitMix64::seed_from_u64(0xC0);
    for _ in 0..20 {
        let config = arb_config(&mut rng);
        let t = generate(config);
        let r = updown::compute(&t);
        // An up*/down* path visits each switch at most once, plus the
        // two host links.
        let bound = t.num_switches() + 1;
        for src in t.host_ids() {
            for dest in t.host_ids() {
                let hops = r.path_hops(&t, src, dest).unwrap();
                assert!(hops <= bound, "{src}->{dest} took {hops} links");
            }
        }
    }
}

/// Same-seed determinism over arbitrary seeds (experiments depend on
/// reproducible fabrics).
#[test]
fn generation_is_deterministic() {
    let mut rng = SplitMix64::seed_from_u64(0xD0);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let digest = |t: &Topology| -> Vec<(u16, u8, u16, u8)> {
            t.switch_ids()
                .flat_map(|s| {
                    t.switch_links(s)
                        .map(move |(p, peer, pp)| (s.0, p, peer.0, pp))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let a = generate(IrregularConfig::paper_default(seed));
        let b = generate(IrregularConfig::paper_default(seed));
        assert_eq!(digest(&a), digest(&b));
    }
}
