//! Property-based tests reproducing the theorems of the companion
//! technical report: the bit-reversal allocator plus defragmentation
//! keep the table canonical, so a request is admitted **iff** enough
//! free entries (and weight headroom) exist.

use iba_core::alloc::AllocatorKind;
use iba_core::defrag::{canonical_plan, is_canonical};
use iba_core::invariants::check_table;
use iba_core::sequence::SequenceId;
use iba_core::table::TableError;
use iba_core::{
    effective_request, Distance, ESet, HighPriorityTable, ServiceLevel, VirtualLane, Weight,
};
use proptest::prelude::*;

fn arb_distance() -> impl Strategy<Value = Distance> {
    prop::sample::select(Distance::ALL.to_vec())
}

fn arb_weight() -> impl Strategy<Value = Weight> {
    // Span the whole admissible spectrum including multi-entry weights.
    prop_oneof![1u32..=255, 256u32..=2048, 2049u32..=8160]
}

#[derive(Clone, Debug)]
enum Op {
    Admit { sl: u8, distance: Distance, weight: Weight },
    Release { victim: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..10, arb_distance(), arb_weight())
            .prop_map(|(sl, distance, weight)| Op::Admit { sl, distance, weight }),
        2 => (0usize..64).prop_map(|victim| Op::Release { victim }),
    ]
}

/// Drives a table through a random op script, checking invariants after
/// every step. Returns the table for final assertions.
fn drive(table: &mut HighPriorityTable, ops: &[Op], check_canonical: bool) {
    // (sequence, weight) for each live admission (a sequence may appear
    // several times — once per sharing connection).
    let mut live: Vec<(SequenceId, Weight)> = Vec::new();
    for op in ops {
        match op {
            Op::Admit { sl, distance, weight } => {
                let sl = ServiceLevel::new(*sl).unwrap();
                let vl = VirtualLane::data(sl.raw());
                match table.admit(sl, vl, *distance, *weight) {
                    Ok(adm) => live.push((adm.sequence, *weight)),
                    Err(TableError::NoFreeSequence) => {
                        // Only acceptable when the free entries really
                        // cannot host the request (canonical tables).
                        if check_canonical {
                            let (_, n) = effective_request(*distance, *weight).unwrap();
                            assert!(
                                table.free_entries() < n,
                                "canonical table rejected a feasible request: \
                                 {n} entries needed, {} free",
                                table.free_entries()
                            );
                        }
                    }
                    Err(TableError::CapacityExceeded | TableError::RequestTooLarge) => {}
                    Err(e) => panic!("unexpected admit error: {e}"),
                }
            }
            Op::Release { victim } => {
                if live.is_empty() {
                    continue;
                }
                let (id, w) = live.swap_remove(victim % live.len());
                table.release(id, w).unwrap();
            }
        }
        table.check_consistency().unwrap();
        if check_canonical {
            check_table(table).unwrap();
        }
    }
}

proptest! {
    /// Theorem 1 (allocation-only): starting from an empty table, the
    /// bit-reversal policy keeps the layout canonical, and a request is
    /// rejected only when fewer free entries remain than it needs.
    #[test]
    fn bitrev_alloc_only_is_canonical(
        reqs in prop::collection::vec((0u8..10, arb_distance(), arb_weight()), 1..60)
    ) {
        let mut table = HighPriorityTable::new();
        let ops: Vec<Op> = reqs
            .into_iter()
            .map(|(sl, distance, weight)| Op::Admit { sl, distance, weight })
            .collect();
        drive(&mut table, &ops, true);
    }

    /// Theorem 2 (dynamic): with releases and automatic defragmentation
    /// the canonical property — and hence the admit-iff-enough-entries
    /// guarantee — continues to hold.
    #[test]
    fn bitrev_with_defrag_stays_canonical(
        ops in prop::collection::vec(arb_op(), 1..120)
    ) {
        let mut table = HighPriorityTable::new();
        drive(&mut table, &ops, true);
    }

    /// The capacity limit is never breached, whatever the op sequence.
    #[test]
    fn capacity_limit_is_respected(
        ops in prop::collection::vec(arb_op(), 1..80),
        limit in 1u32..16320,
    ) {
        let mut table = HighPriorityTable::new();
        table.set_capacity_limit(limit);
        drive(&mut table, &ops, true);
        prop_assert!(table.reserved_weight() <= limit);
    }

    /// Baseline sanity: first-fit stays *consistent* (no overlap, weights
    /// balance) even though it loses canonicity.
    #[test]
    fn first_fit_is_consistent(
        ops in prop::collection::vec(arb_op(), 1..100)
    ) {
        let mut table = HighPriorityTable::with_allocator(AllocatorKind::FirstFit);
        table.set_auto_defrag(false);
        drive(&mut table, &ops, false);
    }

    /// canonical_plan never overlaps sequences, preserves distances, and
    /// produces a canonical occupancy — for any packable input set.
    #[test]
    fn canonical_plan_is_sound(picks in prop::collection::vec((arb_distance(), 0usize..64), 0..12)) {
        // Build a random non-overlapping live set greedily.
        let mut occ = 0u64;
        let mut live = Vec::new();
        for (i, (d, j)) in picks.into_iter().enumerate() {
            let e = ESet::new(d, j % d.slots());
            if e.is_free_in(occ) {
                occ |= e.mask();
                live.push((SequenceId::new(i as u32), e));
            }
        }
        let plan = canonical_plan(&live).expect("live sets always re-pack");
        let mut new_occ = 0u64;
        for r in &plan {
            prop_assert_eq!(r.from.distance(), r.to.distance());
            prop_assert_eq!(new_occ & r.to.mask(), 0);
            new_occ |= r.to.mask();
        }
        prop_assert_eq!(new_occ.count_ones(), occ.count_ones());
        prop_assert!(is_canonical(new_occ));
    }

    /// The arbitration engine only ever grants VLs that are ready and
    /// present with nonzero weight in some table.
    #[test]
    fn vlarb_grants_only_ready_configured_vls(
        weights in prop::collection::vec((0u8..15, 0u8..=255), 1..32),
        ready_mask in 0u16..0x7FFF,
        limit in 0u8..=255,
        pkt in 1u64..5000,
    ) {
        use iba_core::{ArbEntry, VlArbConfig, VlArbEngine};
        let high: Vec<ArbEntry> = weights
            .iter()
            .map(|&(v, w)| ArbEntry { vl: VirtualLane::data(v), weight: w })
            .collect();
        let mut engine = VlArbEngine::new(VlArbConfig {
            high: high.clone(),
            low: vec![],
            limit_of_high_priority: limit,
        });
        for _ in 0..64 {
            let grant = engine.select(|vl| {
                (ready_mask & (1 << vl.raw()) != 0).then_some(pkt)
            });
            if let Some(g) = grant {
                prop_assert!(ready_mask & (1 << g.vl.raw()) != 0, "granted non-ready VL");
                prop_assert!(
                    high.iter().any(|e| e.vl == g.vl && e.weight > 0),
                    "granted VL without weighted entry"
                );
                prop_assert_eq!(g.bytes, pkt);
            }
        }
    }

    /// Weight mapping: monotone in bandwidth and always covering.
    #[test]
    fn weight_mapping_monotone(a in 0.1f64..2500.0, b in 0.1f64..2500.0) {
        use iba_core::{bandwidth_for_weight, weight_for_bandwidth};
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let wl = weight_for_bandwidth(lo, 2500.0).unwrap();
        let wh = weight_for_bandwidth(hi, 2500.0).unwrap();
        prop_assert!(wl <= wh);
        prop_assert!(bandwidth_for_weight(wh, 2500.0) >= hi - 1e-9);
    }
}
