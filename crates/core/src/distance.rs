//! Request distances: the maximum separation between two consecutive
//! entries of a sequence in the high-priority table.
//!
//! The paper restricts distances to the divisors of 64 that yield
//! symmetric arithmetic progressions — the powers of two — and drops
//! distance 1 as "too strict to be considered in a practical way",
//! leaving `{2, 4, 8, 16, 32, 64}`.

use crate::entry::TABLE_ENTRIES;
use crate::weight::{Weight, MAX_ENTRY_WEIGHT};
use std::fmt;

/// A permitted maximum distance between consecutive sequence entries.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Distance {
    /// Entries every 2 slots — 32 entries, the most restrictive request.
    D2,
    /// Entries every 4 slots — 16 entries.
    D4,
    /// Entries every 8 slots — 8 entries.
    D8,
    /// Entries every 16 slots — 4 entries.
    D16,
    /// Entries every 32 slots — 2 entries.
    D32,
    /// A single entry anywhere in the table — the least restrictive.
    D64,
}

impl Distance {
    /// All permitted distances, most restrictive first.
    pub const ALL: [Distance; 6] = [
        Distance::D2,
        Distance::D4,
        Distance::D8,
        Distance::D16,
        Distance::D32,
        Distance::D64,
    ];

    /// The numeric distance `d`.
    #[must_use]
    pub fn slots(self) -> usize {
        match self {
            Distance::D2 => 2,
            Distance::D4 => 4,
            Distance::D8 => 8,
            Distance::D16 => 16,
            Distance::D32 => 32,
            Distance::D64 => 64,
        }
    }

    /// `log2(d)` — the paper's index `i`.
    #[must_use]
    pub fn log2(self) -> u32 {
        self.slots().trailing_zeros()
    }

    /// Number of equally spaced entries a sequence of this distance
    /// occupies: `64 / d`.
    #[must_use]
    pub fn entries(self) -> usize {
        TABLE_ENTRIES / self.slots()
    }

    /// Builds a distance from the numeric slot count, if permitted.
    #[must_use]
    pub fn from_slots(d: usize) -> Option<Distance> {
        match d {
            2 => Some(Distance::D2),
            4 => Some(Distance::D4),
            8 => Some(Distance::D8),
            16 => Some(Distance::D16),
            32 => Some(Distance::D32),
            64 => Some(Distance::D64),
            _ => None,
        }
    }

    /// Rounds an arbitrary requested distance **down** to the closest
    /// permitted one ("the requests must be considered in terms of the
    /// closest lower power of 2, perhaps using more entries than
    /// needed"). Requests below 2 are unsatisfiable; requests above 64
    /// saturate to [`Distance::D64`].
    #[must_use]
    pub fn round_down(requested: usize) -> Option<Distance> {
        if requested < 2 {
            return None;
        }
        let p = usize::min(1 << requested.ilog2(), 64);
        Distance::from_slots(p)
    }

    /// The next more restrictive distance (smaller `d`), if any.
    #[must_use]
    pub fn tighter(self) -> Option<Distance> {
        // ALL is sorted by log2: D2 is index 0, D64 index 5.
        let i = self.log2() as usize - 1;
        (i > 0).then(|| Distance::ALL[i - 1])
    }

    /// The next less restrictive distance (larger `d`), if any.
    #[must_use]
    pub fn looser(self) -> Option<Distance> {
        let i = self.log2() as usize - 1;
        Distance::ALL.get(i + 1).copied()
    }

    /// Is `self` at least as restrictive as `other` (`d_self <= d_other`)?
    #[must_use]
    pub fn at_least_as_strict(self, other: Distance) -> bool {
        self.slots() <= other.slots()
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d={}", self.slots())
    }
}

/// The number of table entries a request needs, combining its latency
/// requirement (distance `d`) and its bandwidth requirement (weight `w`):
/// `max(64/d, ceil(w/255))`, as in §3.1 of the paper.
#[must_use]
pub fn entries_needed(distance: Distance, weight: Weight) -> usize {
    let by_distance = distance.entries();
    let by_weight = weight.div_ceil(MAX_ENTRY_WEIGHT as u32) as usize;
    by_distance.max(by_weight)
}

/// The *effective* distance of a request once both requirements are
/// folded in: the entry count is rounded up to the next power of two
/// (so the progression stays symmetric), and the effective distance is
/// `64 / entries`.
///
/// Distance 1 is not a permitted progression (the paper drops it as
/// impractically strict), so a single sequence spans at most 32 entries;
/// a request whose weight alone needs more than `32 · 255` units is
/// rejected with `None`.
#[must_use]
pub fn effective_request(distance: Distance, weight: Weight) -> Option<(Distance, usize)> {
    let n = entries_needed(distance, weight).next_power_of_two();
    if n > TABLE_ENTRIES / 2 {
        return None;
    }
    let d = Distance::from_slots(TABLE_ENTRIES / n)?;
    Some((d, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_and_entries_are_consistent() {
        for d in Distance::ALL {
            assert_eq!(d.slots() * d.entries(), TABLE_ENTRIES);
            assert_eq!(1usize << d.log2(), d.slots());
            assert_eq!(Distance::from_slots(d.slots()), Some(d));
        }
    }

    #[test]
    fn round_down_picks_closest_lower_power() {
        assert_eq!(Distance::round_down(0), None);
        assert_eq!(Distance::round_down(1), None);
        assert_eq!(Distance::round_down(2), Some(Distance::D2));
        assert_eq!(Distance::round_down(3), Some(Distance::D2));
        assert_eq!(Distance::round_down(7), Some(Distance::D4));
        assert_eq!(Distance::round_down(8), Some(Distance::D8));
        assert_eq!(Distance::round_down(63), Some(Distance::D32));
        assert_eq!(Distance::round_down(64), Some(Distance::D64));
        assert_eq!(Distance::round_down(1000), Some(Distance::D64));
    }

    #[test]
    fn round_down_never_loosens() {
        for req in 2..200 {
            let d = Distance::round_down(req).unwrap();
            assert!(d.slots() <= req, "rounded {req} up to {d}");
        }
    }

    #[test]
    fn tighter_looser_walk_the_ladder() {
        assert_eq!(Distance::D2.tighter(), None);
        assert_eq!(Distance::D64.looser(), None);
        assert_eq!(Distance::D8.tighter(), Some(Distance::D4));
        assert_eq!(Distance::D8.looser(), Some(Distance::D16));
    }

    #[test]
    fn entries_needed_takes_the_max() {
        // Latency dominates: d=2 with tiny weight still needs 32 entries.
        assert_eq!(entries_needed(Distance::D2, 1), 32);
        // Bandwidth dominates: d=64 with weight 836 needs 4 entries.
        assert_eq!(entries_needed(Distance::D64, 836), 4);
        // Exactly at the entry boundary.
        assert_eq!(entries_needed(Distance::D64, 255), 1);
        assert_eq!(entries_needed(Distance::D64, 256), 2);
    }

    #[test]
    fn effective_request_rounds_to_power_of_two() {
        // 3 entries by weight -> 4 entries -> effective distance 16.
        let (d, n) = effective_request(Distance::D64, 3 * 255).unwrap();
        assert_eq!(n, 4);
        assert_eq!(d, Distance::D16);
        // Latency-dominated requests keep their distance.
        let (d, n) = effective_request(Distance::D8, 10).unwrap();
        assert_eq!((d, n), (Distance::D8, 8));
    }

    #[test]
    fn effective_request_caps_at_half_table() {
        // 32 entries (distance 2) is the largest possible sequence...
        let (d, n) = effective_request(Distance::D64, 32 * 255).unwrap();
        assert_eq!((d, n), (Distance::D2, 32));
        // ...one more weight unit would need a distance-1 progression,
        // which the paper excludes.
        assert_eq!(effective_request(Distance::D64, 32 * 255 + 1), None);
    }

    #[test]
    fn effective_request_preserves_latency_requirement() {
        // The effective distance never loosens the requested one.
        for d in Distance::ALL {
            for w in [1u32, 100, 255, 256, 1000, 4000] {
                if let Some((eff, n)) = effective_request(d, w) {
                    assert!(eff.at_least_as_strict(d));
                    assert!(n * eff.slots() == TABLE_ENTRIES);
                    assert!(n as u32 * 255 >= w, "entries cannot carry weight");
                }
            }
        }
    }
}
