//! # iba-core — InfiniBand arbitration tables and the ICPP'03 filling algorithm
//!
//! This crate implements the primary contribution of
//! *F. J. Alfaro, J. L. Sánchez, J. Duato — "A New Proposal to Fill in the
//! InfiniBand Arbitration Tables", ICPP 2003*:
//!
//! * the data model of the IBA `VLArbitrationTable` (two weighted
//!   round-robin tables of up to 64 `(VL, weight)` entries plus a
//!   `LimitOfHighPriority` counter — [`vlarb`]),
//! * the **bit-reversal sequence allocator** that fills the high-priority
//!   table so that a new request always fits whenever enough free entries
//!   exist ([`table`], [`alloc`], [`bitrev`], [`eset`]),
//! * **sequence sharing** — connections of the same service level
//!   accumulate weight in a common sequence of entries ([`sequence`]),
//! * the **defragmentation** pass applied after connections finish
//!   ([`defrag`]),
//! * the **latency-based service-level classification** of the paper
//!   (distance between consecutive table entries, Table 1 — [`sl`]),
//! * the runtime **weighted round-robin arbitration engine** that an
//!   output port runs over a configured table ([`vlarb`]),
//! * the **schedule compiler** that turns a table into a flat
//!   `(vl, burst_bytes)` grant stream for the simulator's hot path
//!   ([`schedule`]),
//! * baseline allocators used by the ablation experiments ([`alloc`]).
//!
//! Everything here is pure, deterministic and allocation-light; the
//! discrete-event fabric simulator lives in `iba-sim` and the end-to-end
//! admission-control frame in `iba-qos`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod bitrev;
pub mod defrag;
pub mod distance;
pub mod entry;
pub mod eset;
pub mod invariants;
pub mod model;
pub mod rng;
pub mod schedule;
pub mod sequence;
pub mod sl;
pub mod table;
pub mod vlarb;
pub mod weight;
pub mod wire;

pub use alloc::{AllocatorKind, BitReversalAllocator, FirstFitAllocator, SequenceAllocator};
pub use defrag::{is_canonical, Relocation};
pub use distance::{effective_request, entries_needed, Distance};
pub use entry::{TableSlot, VirtualLane, MAX_DATA_VLS, TABLE_ENTRIES};
pub use eset::ESet;
pub use rng::SplitMix64;
pub use schedule::{CompiledVlArb, GrantStream};
pub use sequence::{SequenceId, SequenceInfo};
pub use sl::{ServiceLevel, SlProfile, SlTable, SlToVlMap, TrafficClass};
pub use table::{Admission, EvictedSequence, HighPriorityTable, RepairReport, TableError};
pub use vlarb::{ArbEntry, Grant, ServedBy, VlArbConfig, VlArbEngine};
pub use weight::{
    bandwidth_for_weight, bytes_to_weight_units, weight_for_bandwidth, Weight, MAX_ENTRY_WEIGHT,
    MAX_TABLE_WEIGHT, WEIGHT_UNIT_BYTES,
};
