//! The paper's `E_{i,j}` sets: the entries of the table separated by an
//! equal distance `d = 2^i`, starting at offset `j`.
//!
//! An `E_{i,j}` is represented compactly as a 64-bit mask over the table
//! slots, which makes freeness tests and occupancy updates single AND/OR
//! operations.

use crate::bitrev::probe_order;
use crate::distance::Distance;
use crate::entry::TABLE_ENTRIES;

/// The set `E_{i,j} = { t_{j + n·2^i} : n = 0 .. 64/2^i - 1 }`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ESet {
    distance: Distance,
    offset: u8,
}

impl ESet {
    /// Creates `E_{i,j}` for `i = log2(distance)` and offset `j`.
    ///
    /// Panics if `offset >= distance` (offsets beyond the distance alias
    /// sets that already exist at smaller offsets).
    #[must_use]
    pub fn new(distance: Distance, offset: usize) -> Self {
        assert!(
            offset < distance.slots(),
            "offset {offset} out of range for {distance}"
        );
        ESet {
            distance,
            offset: offset as u8,
        }
    }

    /// The distance `d = 2^i` of this set.
    #[must_use]
    pub fn distance(self) -> Distance {
        self.distance
    }

    /// The start offset `j`.
    #[must_use]
    pub fn offset(self) -> usize {
        self.offset as usize
    }

    /// Number of table slots in the set (`64 / d`).
    #[must_use]
    pub fn len(self) -> usize {
        self.distance.entries()
    }

    /// E-sets are never empty (even `E` at distance 64 holds one slot).
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Iterator over the slot indices `j, j+d, j+2d, …`.
    pub fn slots(self) -> impl Iterator<Item = usize> {
        let d = self.distance.slots();
        let j = self.offset as usize;
        (0..self.len()).map(move |n| j + n * d)
    }

    /// The set as a bitmask over the 64 table slots.
    #[must_use]
    pub fn mask(self) -> u64 {
        // Base pattern for distance d: bits 0, d, 2d, ... then shift by j.
        let d = self.distance.slots();
        let mut base: u64 = 0;
        let mut k = 0;
        while k < TABLE_ENTRIES {
            base |= 1u64 << k;
            k += d;
        }
        base << self.offset
    }

    /// Whether every slot of the set is free under the given occupancy
    /// bitmask (bit set = slot busy).
    #[must_use]
    pub fn is_free_in(self, occupancy: u64) -> bool {
        self.mask() & occupancy == 0
    }

    /// `occupancy` with this set's slots additionally marked busy.
    /// Keeps the bit twiddling inside this crate so callers building a
    /// scenario never manipulate raw occupancy masks.
    #[must_use]
    pub fn occupy(self, occupancy: u64) -> u64 {
        occupancy | self.mask()
    }

    /// Splits this set into its two child sets at double the distance:
    /// `E_{i,j} = E_{i+1,j} ∪ E_{i+1,j+2^i}`.
    ///
    /// Returns `None` for distance-64 sets (single slot, nothing to split).
    #[must_use]
    pub fn split(self) -> Option<(ESet, ESet)> {
        let looser = self.distance.looser()?;
        let d = self.distance.slots();
        Some((
            ESet::new(looser, self.offset as usize),
            ESet::new(looser, self.offset as usize + d),
        ))
    }

    /// The sibling set that, merged with `self`, forms the parent set at
    /// half the distance. Returns `None` at distance 2 (no tighter set).
    #[must_use]
    pub fn buddy(self) -> Option<ESet> {
        self.distance.tighter()?;
        let d = self.distance.slots();
        let j = self.offset as usize;
        let half = d / 2;
        let buddy_offset = if j < half { j + half } else { j - half };
        Some(ESet::new(self.distance, buddy_offset))
    }

    /// Merges `self` with its buddy into the parent set at half the
    /// distance. Returns `None` at distance 2.
    #[must_use]
    pub fn merge_with_buddy(self) -> Option<ESet> {
        let tighter = self.distance.tighter()?;
        let j = self.offset as usize % (self.distance.slots() / 2);
        Some(ESet::new(tighter, j))
    }

    /// All `E_{i,j}` for a given distance, in the paper's bit-reversal
    /// probe order.
    pub fn probe_sequence(distance: Distance) -> impl Iterator<Item = ESet> {
        probe_order(distance.log2()).map(move |j| ESet::new(distance, j as usize))
    }

    /// All `E_{i,j}` for a given distance in natural offset order.
    pub fn all(distance: Distance) -> impl Iterator<Item = ESet> {
        (0..distance.slots()).map(move |j| ESet::new(distance, j))
    }
}

impl std::fmt::Display for ESet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "E{},{}", self.distance.log2(), self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_equally_spaced() {
        let e = ESet::new(Distance::D8, 3);
        let slots: Vec<usize> = e.slots().collect();
        assert_eq!(slots, vec![3, 11, 19, 27, 35, 43, 51, 59]);
    }

    #[test]
    fn mask_matches_slots() {
        for d in Distance::ALL {
            for e in ESet::all(d) {
                let from_slots = e.slots().fold(0u64, |m, s| m | 1 << s);
                assert_eq!(e.mask(), from_slots, "{e}");
                assert_eq!(e.mask().count_ones() as usize, e.len());
            }
        }
    }

    #[test]
    fn sets_of_same_distance_partition_the_table() {
        for d in Distance::ALL {
            let mut acc = 0u64;
            for e in ESet::all(d) {
                assert_eq!(acc & e.mask(), 0, "sets overlap");
                acc |= e.mask();
            }
            assert_eq!(acc, u64::MAX, "sets do not cover the table");
        }
    }

    #[test]
    fn freeness_against_occupancy() {
        let e = ESet::new(Distance::D32, 5); // slots 5 and 37
        assert!(e.is_free_in(0));
        assert!(e.is_free_in(1 << 4 | 1 << 6));
        assert!(!e.is_free_in(1 << 5));
        assert!(!e.is_free_in(1 << 37));
    }

    #[test]
    fn split_children_partition_parent() {
        for d in [Distance::D2, Distance::D8, Distance::D32] {
            for e in ESet::all(d) {
                let (a, b) = e.split().unwrap();
                assert_eq!(a.mask() | b.mask(), e.mask());
                assert_eq!(a.mask() & b.mask(), 0);
            }
        }
        assert!(ESet::new(Distance::D64, 7).split().is_none());
    }

    #[test]
    fn buddy_is_symmetric_and_merges_to_parent() {
        for d in [Distance::D4, Distance::D16, Distance::D64] {
            for e in ESet::all(d) {
                let b = e.buddy().unwrap();
                assert_eq!(b.buddy().unwrap(), e);
                let parent = e.merge_with_buddy().unwrap();
                assert_eq!(parent, b.merge_with_buddy().unwrap());
                assert_eq!(parent.mask(), e.mask() | b.mask());
            }
        }
        assert!(ESet::new(Distance::D2, 1).buddy().is_none());
    }

    #[test]
    fn probe_sequence_matches_paper_order_for_d8() {
        let offsets: Vec<usize> = ESet::probe_sequence(Distance::D8)
            .map(|e| e.offset())
            .collect();
        assert_eq!(offsets, vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_must_be_below_distance() {
        let _ = ESet::new(Distance::D4, 4);
    }
}
