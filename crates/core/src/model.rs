//! Bounded model checking of the allocator's formal properties.
//!
//! The companion technical report (Alfaro et al., *Formalizing the
//! Fill-In of the InfiniBand Arbitration Table*, TR DIAB-03-01) proves
//! theorems about the bit-reversal policy. This module reproduces them
//! as **exhaustive state-space exploration** over scaled-down tables
//! (2^k entries): starting from the empty table, every reachable state
//! under {allocate at any distance, free any live sequence (+ defrag)}
//! is enumerated and the canonical invariant — *free entries can always
//! serve the most restrictive request their count permits* — is checked
//! in every state.
//!
//! Exhaustive at size 8/16/32; the 64-entry production table is covered
//! by the property tests (the state space is the same construction, one
//! level deeper).

use crate::bitrev::bit_reverse;
// lint: allow(no-unordered-iter) -- BFS dedup set: membership tests only, never iterated
use std::collections::{HashSet, VecDeque};

/// A live sequence in the scaled model: distance `d` (power of two) and
/// offset `j < d`, occupying slots `j, j+d, …` of a `size`-entry table.
pub type ModelSeq = (u8, u8);

/// A state: the sorted set of live sequences.
pub type ModelState = Vec<ModelSeq>;

/// Result of an exploration.
#[derive(Clone, Debug, Default)]
pub struct ExplorationReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions examined.
    pub transitions: usize,
    /// States violating the canonical invariant (with the state).
    pub violations: Vec<ModelState>,
    /// True when the exploration hit its state bound before the
    /// frontier drained — the report then covers a prefix of the space.
    pub truncated: bool,
}

/// The scaled-down table model.
#[derive(Clone, Copy, Debug)]
pub struct MiniTable {
    size: u32,
    log2: u32,
}

impl MiniTable {
    /// A model of a `size`-entry table (`size` a power of two, 2..=64).
    #[must_use]
    pub fn new(size: u32) -> Self {
        assert!(size.is_power_of_two() && (2..=64).contains(&size));
        MiniTable {
            size,
            log2: size.trailing_zeros(),
        }
    }

    /// Permitted distances: powers of two from 2 to `size`.
    pub fn distances(self) -> impl Iterator<Item = u32> {
        (1..=self.log2).map(|i| 1u32 << i)
    }

    /// Occupancy mask of a sequence.
    #[must_use]
    pub fn mask(self, seq: ModelSeq) -> u64 {
        let (d, j) = (u32::from(seq.0), u32::from(seq.1));
        let mut m = 0u64;
        let mut s = j;
        while s < self.size {
            m |= 1 << s;
            s += d;
        }
        m
    }

    /// Occupancy of a whole state.
    #[must_use]
    pub fn occupancy(self, state: &ModelState) -> u64 {
        state.iter().fold(0, |m, &s| m | self.mask(s))
    }

    /// `occupancy` with `seq`'s slots additionally marked busy. Keeps
    /// the bit twiddling inside this crate so callers (the verify
    /// crate's cross-validation) never touch raw occupancy masks.
    #[must_use]
    pub fn occupancy_with(self, occupancy: u64, seq: ModelSeq) -> u64 {
        occupancy | self.mask(seq)
    }

    /// The canonical invariant at this table size.
    #[must_use]
    pub fn is_canonical(self, occupancy: u64) -> bool {
        let free = self.size - occupancy.count_ones();
        self.distances().all(|d| {
            let entries = self.size / d;
            entries > free || self.has_free_set(occupancy, d)
        })
    }

    fn has_free_set(self, occupancy: u64, d: u32) -> bool {
        (0..d).any(|j| self.mask((d as u8, j as u8)) & occupancy == 0)
    }

    /// Bit-reversal allocation: the first free set for distance `d` in
    /// probe order.
    #[must_use]
    pub fn alloc(self, occupancy: u64, d: u32) -> Option<ModelSeq> {
        let bits = d.trailing_zeros();
        (0..d)
            .map(|k| bit_reverse(k, bits))
            .map(|j| (d as u8, j as u8))
            .find(|&s| self.mask(s) & occupancy == 0)
    }

    /// Defragmentation: re-place all sequences largest-first with the
    /// bit-reversal policy (the production algorithm, scaled).
    #[must_use]
    pub fn defrag(self, state: &ModelState) -> ModelState {
        let mut order: Vec<ModelSeq> = state.clone();
        order.sort_by_key(|&(d, j)| (d, j));
        let mut occ = 0u64;
        let mut out = Vec::with_capacity(order.len());
        for (d, _) in order {
            let s = self.alloc(occ, u32::from(d));
            // Theorem (TR DIAB-03-01): largest-first re-placement of a
            // feasible sequence set always fits.
            assert!(s.is_some(), "descending-size packing must fit (d={d})");
            if let Some(s) = s {
                occ |= self.mask(s);
                out.push(s);
            }
        }
        out.sort_unstable();
        out
    }

    /// Explores every reachable state of the dynamic system
    /// (alloc at any distance, free any sequence then defrag if
    /// `with_defrag`), checking the invariant everywhere.
    ///
    /// Exploration stops after `max_states` states; the report's
    /// `truncated` flag says whether the bound was hit (callers that
    /// need exhaustiveness must assert it is false).
    #[must_use]
    pub fn explore(self, with_defrag: bool, max_states: usize) -> ExplorationReport {
        let mut report = ExplorationReport::default();
        // Hash-based on purpose: ~2M states at size 16, membership-only
        // (visit order comes from the VecDeque, so no order escapes).
        // lint: allow(no-unordered-iter) -- membership-only dedup on the hot BFS path
        let mut seen: HashSet<ModelState> = HashSet::new();
        let mut queue: VecDeque<ModelState> = VecDeque::new();
        let empty: ModelState = Vec::new();
        seen.insert(empty.clone());
        queue.push_back(empty);

        while let Some(state) = queue.pop_front() {
            if report.states >= max_states {
                report.truncated = true;
                break;
            }
            report.states += 1;
            let occ = self.occupancy(&state);
            if !self.is_canonical(occ) {
                report.violations.push(state.clone());
            }

            // Allocation transitions.
            for d in self.distances() {
                report.transitions += 1;
                if let Some(s) = self.alloc(occ, d) {
                    let mut next = state.clone();
                    next.push(s);
                    next.sort_unstable();
                    if seen.insert(next.clone()) {
                        queue.push_back(next);
                    }
                }
            }
            // Free transitions.
            for i in 0..state.len() {
                report.transitions += 1;
                let mut next = state.clone();
                next.remove(i);
                if with_defrag {
                    next = self.defrag(&next);
                }
                next.sort_unstable();
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_partition() {
        let t = MiniTable::new(16);
        for d in t.distances() {
            let mut acc = 0u64;
            for j in 0..d {
                let m = t.mask((d as u8, j as u8));
                assert_eq!(acc & m, 0);
                acc |= m;
            }
            assert_eq!(acc, (1u64 << 16) - 1);
        }
    }

    #[test]
    fn theorem_size8_dynamic_system_is_always_canonical() {
        let t = MiniTable::new(8);
        let report = t.explore(true, 100_000);
        assert!(!report.truncated, "state bound hit");
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        assert!(report.states > 10, "exploration too shallow");
    }

    #[test]
    fn theorem_size16_dynamic_system_is_always_canonical() {
        let t = MiniTable::new(16);
        let report = t.explore(true, 2_000_000);
        assert!(!report.truncated, "state bound hit");
        assert!(
            report.violations.is_empty(),
            "first violation: {:?}",
            report.violations.first()
        );
        assert!(report.states > 100);
    }

    #[test]
    fn without_defrag_violations_exist_and_are_detected() {
        // Sanity of the checker itself: dropping defragmentation must
        // expose non-canonical reachable states.
        let t = MiniTable::new(8);
        let report = t.explore(false, 200_000);
        assert!(
            !report.violations.is_empty(),
            "checker failed to find known violations"
        );
    }

    #[test]
    fn alloc_matches_production_probe_order() {
        // At size 64 the model must agree with the production allocator.
        use crate::alloc::{BitReversalAllocator, SequenceAllocator};
        use crate::distance::Distance;
        let t = MiniTable::new(64);
        let mut occ = 0u64;
        for d in [Distance::D64, Distance::D8, Distance::D2, Distance::D16] {
            let model = t.alloc(occ, d.slots() as u32).unwrap();
            let prod = BitReversalAllocator.select(occ, d).unwrap();
            assert_eq!(u32::from(model.1), prod.offset() as u32, "{d}");
            occ |= t.mask(model);
        }
    }

    #[test]
    fn defrag_is_idempotent() {
        let t = MiniTable::new(16);
        let state: ModelState = vec![(4, 1), (8, 6), (16, 11)];
        let once = t.defrag(&state);
        let twice = t.defrag(&once);
        assert_eq!(once, twice);
        assert!(t.is_canonical(t.occupancy(&once)));
    }
}
