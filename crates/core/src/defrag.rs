//! Defragmentation: restoring the canonical free-entry layout after
//! sequences die ("it puts together free small sets to form a larger
//! free set").
//!
//! # The reversed-space view
//!
//! Let `σ(slot) = bit_reverse(slot, 6)`. Under σ, the set `E_{i,j}`
//! maps to a **contiguous, naturally aligned block** of `64/2^i` slots
//! at block index `rev_i(j)` — so the paper's probe order is exactly a
//! leftmost-first *buddy allocator* in reversed space, and
//! defragmentation is buddy compaction: re-place every live sequence
//! leftmost-first in descending size order. Descending-size placement of
//! power-of-two, naturally aligned blocks always packs without gaps,
//! which leaves the free slots as a contiguous suffix in reversed space;
//! a contiguous suffix of length `f` contains an aligned block of every
//! power-of-two size `≤ f`, hence the canonical invariant: *any request
//! whose entry count does not exceed the free-entry count is
//! satisfiable*.

use crate::alloc::{BitReversalAllocator, SequenceAllocator};
use crate::eset::ESet;
use crate::sequence::SequenceId;

/// One sequence move produced by the defragmentation pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relocation {
    /// The sequence being (possibly) moved.
    pub sequence: SequenceId,
    /// Where it was.
    pub from: ESet,
    /// Where it is now (equal to `from` when it did not move).
    pub to: ESet,
}

/// Computes the canonical placement for a set of live sequences.
///
/// Sequences are re-placed by the bit-reversal policy, largest (most
/// entries, i.e. smallest distance) first; ties are broken by the current
/// offset and then the id, which keeps the plan deterministic and avoids
/// gratuitous swaps between equal-sized sequences.
///
/// Returns `None` only if re-packing fails, which is impossible for any
/// set of non-overlapping live sequences (their total size is ≤ 64 and
/// descending-size buddy packing never fragments); the `Option` exists
/// so callers can keep the proof obligation visible.
#[must_use]
pub fn canonical_plan(live: &[(SequenceId, ESet)]) -> Option<Vec<Relocation>> {
    let mut order: Vec<&(SequenceId, ESet)> = live.iter().collect();
    order.sort_by_key(|(id, e)| (e.distance().slots(), e.offset(), *id));

    let mut occupancy = 0u64;
    let mut plan = Vec::with_capacity(live.len());
    for (id, from) in order {
        let to = BitReversalAllocator.select(occupancy, from.distance())?;
        occupancy |= to.mask();
        plan.push(Relocation {
            sequence: *id,
            from: *from,
            to,
        });
    }
    Some(plan)
}

/// Whether an occupancy mask is canonical: for every distance `d`, if at
/// least `64/d` entries are free then some `E_{i,j}` of that distance is
/// entirely free. This is the invariant defragmentation restores and the
/// bit-reversal allocator preserves.
#[must_use]
pub fn is_canonical(occupancy: u64) -> bool {
    use crate::distance::Distance;
    let free = 64 - occupancy.count_ones() as usize;
    Distance::ALL
        .iter()
        .all(|&d| d.entries() > free || ESet::all(d).any(|e| e.is_free_in(occupancy)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Distance;

    fn id(i: u32) -> SequenceId {
        SequenceId(i)
    }

    #[test]
    fn empty_plan_is_empty() {
        assert_eq!(canonical_plan(&[]).unwrap().len(), 0);
        assert!(is_canonical(0));
    }

    #[test]
    fn already_canonical_layout_does_not_move() {
        // Allocate in the canonical way: a d2 (32 entries) then d4.
        let live = vec![
            (id(0), ESet::new(Distance::D2, 0)),
            (id(1), ESet::new(Distance::D4, 1)),
        ];
        let plan = canonical_plan(&live).unwrap();
        for r in &plan {
            assert_eq!(r.from, r.to, "no moves expected");
        }
    }

    #[test]
    fn fragmented_singles_are_compacted() {
        // Singles on both parities block every d=2 set.
        let live = vec![
            (id(0), ESet::new(Distance::D64, 1)),
            (id(1), ESet::new(Distance::D64, 2)),
        ];
        let mut occ = 0u64;
        for (_, e) in &live {
            occ |= e.mask();
        }
        assert!(!is_canonical(occ));

        let plan = canonical_plan(&live).unwrap();
        let mut new_occ = 0u64;
        for r in &plan {
            new_occ |= r.to.mask();
        }
        assert!(is_canonical(new_occ));
        assert_eq!(new_occ.count_ones(), 2);
    }

    #[test]
    fn plan_never_overlaps() {
        let live = vec![
            (id(0), ESet::new(Distance::D8, 5)),
            (id(1), ESet::new(Distance::D8, 2)),
            (id(2), ESet::new(Distance::D16, 1)),
            (id(3), ESet::new(Distance::D64, 11)),
            (id(4), ESet::new(Distance::D64, 19)),
        ];
        let plan = canonical_plan(&live).unwrap();
        let mut occ = 0u64;
        for r in &plan {
            assert_eq!(occ & r.to.mask(), 0, "overlap at {}", r.to);
            occ |= r.to.mask();
        }
        assert!(is_canonical(occ));
    }

    #[test]
    fn largest_first_ordering() {
        // A d2 sequence must be placed before singles so it can span the
        // evens.
        let live = vec![
            (id(0), ESet::new(Distance::D64, 7)),
            (id(1), ESet::new(Distance::D2, 1)),
        ];
        let plan = canonical_plan(&live).unwrap();
        let d2 = plan.iter().find(|r| r.sequence == id(1)).unwrap();
        assert_eq!(d2.to, ESet::new(Distance::D2, 0));
    }

    #[test]
    fn is_canonical_detects_mixed_parity_singles() {
        // A single busy slot leaves the opposite-parity d=2 set free, so
        // it is canonical at either parity...
        assert!(is_canonical(1u64 << 0));
        assert!(is_canonical(1u64 << 1));
        // ...but singles on both parities kill both d=2 sets while 62
        // entries remain free => not canonical.
        assert!(!is_canonical(1u64 << 0 | 1u64 << 1));
    }

    #[test]
    fn full_table_is_canonical() {
        assert!(is_canonical(u64::MAX));
    }
}
