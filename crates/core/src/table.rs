//! The stateful high-priority arbitration table of one output port:
//! admission of connections (with sequence sharing), release, and
//! defragmentation.

use crate::alloc::AllocatorKind;
use crate::defrag::{canonical_plan, Relocation};
use crate::distance::{effective_request, Distance};
use crate::entry::{TableSlot, VirtualLane, TABLE_ENTRIES};
use crate::eset::ESet;
use crate::rng::SplitMix64;
use crate::sequence::{Sequence, SequenceId, SequenceInfo};
use crate::sl::ServiceLevel;
use crate::weight::{Weight, MAX_TABLE_WEIGHT};

/// Errors returned by table operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableError {
    /// The request needs more entries than any permitted progression
    /// provides (weight above `32 · 255` units).
    RequestTooLarge,
    /// Admitting the request would exceed the configured reservation
    /// limit (e.g. the 80% QoS share of the link).
    CapacityExceeded,
    /// No free `E_{i,j}` exists for the request's distance.
    NoFreeSequence,
    /// The sequence handle is stale or was never issued.
    UnknownSequence,
    /// Releasing more weight than the sequence holds.
    WeightUnderflow,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TableError::RequestTooLarge => "request needs more than 32 table entries",
            TableError::CapacityExceeded => "reservation limit exceeded",
            TableError::NoFreeSequence => "no free entry sequence for the requested distance",
            TableError::UnknownSequence => "unknown sequence id",
            TableError::WeightUnderflow => "released more weight than reserved",
        };
        f.write_str(s)
    }
}

impl std::error::Error for TableError {}

/// A granted admission: which sequence the connection joined and whether
/// a brand-new sequence had to be allocated for it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Admission {
    /// Sequence the connection now shares.
    pub sequence: SequenceId,
    /// `true` when a new sequence was allocated (vs joining an existing
    /// one).
    pub new_sequence: bool,
}

/// A sequence that [`HighPriorityTable::repair`] had to evict because
/// its bookkeeping could not be trusted (overlapping entry set, drained
/// weight). Carries everything an admission layer needs to re-install
/// the reservation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EvictedSequence {
    /// Service level of the evicted reservation.
    pub sl: ServiceLevel,
    /// Virtual lane it was served on.
    pub vl: VirtualLane,
    /// Entry spacing the reservation held before eviction.
    pub distance: Distance,
    /// Total reserved weight (0 when the damage drained it).
    pub weight: Weight,
    /// Connections that shared the sequence.
    pub connections: u32,
}

/// Outcome of one [`HighPriorityTable::repair`] pass.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Whether the table failed its consistency check before repair.
    pub was_damaged: bool,
    /// Sequences evicted because their bookkeeping was untrustworthy;
    /// re-admitting them is the caller's (recovery manager's) job.
    pub evicted: Vec<EvictedSequence>,
    /// Relocations performed by the post-repair defragmentation.
    pub relocations: usize,
}

/// The high-priority table of one output port.
///
/// Owns the 64 slots, the live sequences and the reservation accounting.
/// All mutation goes through [`HighPriorityTable::admit`] /
/// [`HighPriorityTable::release`]; the slot array is always kept
/// consistent with the sequence set.
///
/// # Examples
///
/// ```
/// use iba_core::{Distance, HighPriorityTable, ServiceLevel, VirtualLane};
///
/// let mut table = HighPriorityTable::new();
/// let sl = ServiceLevel::new(2).unwrap();
///
/// // A connection needing entries every 8 slots with weight 80.
/// let a = table.admit(sl, VirtualLane::data(2), Distance::D8, 80).unwrap();
/// assert!(a.new_sequence);
/// assert_eq!(table.free_entries(), 56);
///
/// // A second connection of the same SL shares the sequence.
/// let b = table.admit(sl, VirtualLane::data(2), Distance::D8, 40).unwrap();
/// assert_eq!(a.sequence, b.sequence);
/// assert_eq!(table.sequence(a.sequence).unwrap().total_weight, 120);
///
/// // Releases return capacity; defragmentation keeps the layout optimal.
/// table.release(b.sequence, 40).unwrap();
/// table.release(a.sequence, 80).unwrap();
/// assert_eq!(table.free_entries(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct HighPriorityTable {
    slots: [TableSlot; TABLE_ENTRIES],
    occupancy: u64,
    sequences: Vec<Option<Sequence>>,
    reserved_weight: Weight,
    capacity_limit: Weight,
    allocator: AllocatorKind,
    auto_defrag: bool,
}

impl Default for HighPriorityTable {
    fn default() -> Self {
        Self::new()
    }
}

impl HighPriorityTable {
    /// An empty table using the paper's bit-reversal allocator, automatic
    /// defragmentation on release and no reservation limit.
    #[must_use]
    pub fn new() -> Self {
        HighPriorityTable {
            slots: [TableSlot::FREE; TABLE_ENTRIES],
            occupancy: 0,
            sequences: Vec::new(),
            reserved_weight: 0,
            capacity_limit: MAX_TABLE_WEIGHT,
            allocator: AllocatorKind::BitReversal,
            auto_defrag: true,
        }
    }

    /// An empty table with an explicit allocation policy (for ablations).
    #[must_use]
    pub fn with_allocator(allocator: AllocatorKind) -> Self {
        HighPriorityTable {
            allocator,
            ..Self::new()
        }
    }

    /// Caps the total admissible weight (e.g. `0.8 · MAX_TABLE_WEIGHT`
    /// to reserve 20% of the link for best-effort traffic).
    pub fn set_capacity_limit(&mut self, limit: Weight) {
        self.capacity_limit = limit.min(MAX_TABLE_WEIGHT);
    }

    /// Enables/disables automatic defragmentation when a sequence dies.
    pub fn set_auto_defrag(&mut self, on: bool) {
        self.auto_defrag = on;
    }

    /// The configured reservation cap.
    #[must_use]
    pub fn capacity_limit(&self) -> Weight {
        self.capacity_limit
    }

    /// The allocation policy in use.
    #[must_use]
    pub fn allocator(&self) -> AllocatorKind {
        self.allocator
    }

    /// Bitmask of busy slots.
    #[must_use]
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// Number of free slots.
    #[must_use]
    pub fn free_entries(&self) -> usize {
        TABLE_ENTRIES - self.occupancy.count_ones() as usize
    }

    /// Total weight currently reserved by admitted connections.
    #[must_use]
    pub fn reserved_weight(&self) -> Weight {
        self.reserved_weight
    }

    /// The raw slot array (what would be written to the hardware table).
    #[must_use]
    pub fn slots(&self) -> &[TableSlot; TABLE_ENTRIES] {
        &self.slots
    }

    /// Live sequences with their public info.
    pub fn sequences(&self) -> impl Iterator<Item = (SequenceId, SequenceInfo)> + '_ {
        self.sequences.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref()
                .map(|s| (SequenceId(i as u32), SequenceInfo::from(s)))
        })
    }

    /// Info for one sequence.
    #[must_use]
    pub fn sequence(&self, id: SequenceId) -> Option<SequenceInfo> {
        self.sequences
            .get(id.0 as usize)?
            .as_ref()
            .map(SequenceInfo::from)
    }

    /// Non-mutating admission check: would `admit` succeed?
    #[must_use]
    pub fn can_admit(&self, sl: ServiceLevel, distance: Distance, weight: Weight) -> bool {
        self.check_admit(sl, distance, weight).is_ok()
    }

    /// Non-mutating dry run of [`HighPriorityTable::admit`]: returns
    /// exactly the error `admit` would return for the same request,
    /// checked in `admit`'s order (weight underflow, request size,
    /// capacity cap, join, fresh E-set). Performs no allocator probes
    /// against a recorder, so a vote taken with `check_admit` followed
    /// by the real `admit_observed` keeps metrics identical to calling
    /// `admit_observed` alone.
    pub fn check_admit(
        &self,
        sl: ServiceLevel,
        distance: Distance,
        weight: Weight,
    ) -> Result<(), TableError> {
        if weight == 0 {
            return Err(TableError::WeightUnderflow);
        }
        let (d_eff, _entries) =
            effective_request(distance, weight).ok_or(TableError::RequestTooLarge)?;
        if self.reserved_weight + weight > self.capacity_limit {
            return Err(TableError::CapacityExceeded);
        }
        if self.find_joinable(sl, distance, weight).is_some() {
            return Ok(());
        }
        self.allocator
            .select(self.occupancy, d_eff)
            .map(|_| ())
            .ok_or(TableError::NoFreeSequence)
    }

    /// Admits a connection of service level `sl` (travelling on `vl`)
    /// that needs entry spacing `distance` and table weight `weight`.
    ///
    /// Following §3.3: first an already-established sequence of the same
    /// SL with enough room is reused; only if none exists is a fresh
    /// `E_{i,j}` looked up with the configured allocator.
    pub fn admit(
        &mut self,
        sl: ServiceLevel,
        vl: VirtualLane,
        distance: Distance,
        weight: Weight,
    ) -> Result<Admission, TableError> {
        self.admit_observed(sl, vl, distance, weight, &mut iba_obs::NullRecorder)
    }

    /// [`HighPriorityTable::admit`] with instrumentation: allocator
    /// probes (`alloc_probe_total`, `alloc_probe_depth`, ...) performed
    /// while placing a new sequence are recorded into `rec`. Joining an
    /// existing sequence performs no probes and records nothing.
    pub fn admit_observed(
        &mut self,
        sl: ServiceLevel,
        vl: VirtualLane,
        distance: Distance,
        weight: Weight,
        rec: &mut dyn iba_obs::Recorder,
    ) -> Result<Admission, TableError> {
        assert!(
            !vl.is_management(),
            "VL15 never enters the arbitration table"
        );
        if weight == 0 {
            return Err(TableError::WeightUnderflow);
        }
        let (d_eff, _entries) =
            effective_request(distance, weight).ok_or(TableError::RequestTooLarge)?;
        if self.reserved_weight + weight > self.capacity_limit {
            return Err(TableError::CapacityExceeded);
        }

        if let Some(id) = self.find_joinable(sl, distance, weight) {
            // find_joinable only returns live ids.
            let Some(seq) = self.sequences[id.0 as usize].as_mut() else {
                return Err(TableError::UnknownSequence);
            };
            seq.total_weight += weight;
            seq.connections += 1;
            self.reserved_weight += weight;
            self.rewrite_sequence_slots(id);
            return Ok(Admission {
                sequence: id,
                new_sequence: false,
            });
        }

        rec.span_begin("alloc.select");
        let selected = self.allocator.select_observed(self.occupancy, d_eff, rec);
        rec.span_end("alloc.select");
        let eset = selected.ok_or(TableError::NoFreeSequence)?;
        let id = self.insert_sequence(Sequence {
            eset,
            vl,
            sl,
            total_weight: weight,
            connections: 1,
        });
        self.occupancy |= eset.mask();
        self.reserved_weight += weight;
        self.rewrite_sequence_slots(id);
        Ok(Admission {
            sequence: id,
            new_sequence: true,
        })
    }

    /// Releases one connection of weight `weight` from `id`.
    ///
    /// When the sequence's accumulated weight reaches zero its entries
    /// are freed and (if auto-defrag is on) the defragmentation pass
    /// restores the canonical layout. Returns the relocations performed
    /// (empty when the sequence survives or defrag moved nothing).
    pub fn release(
        &mut self,
        id: SequenceId,
        weight: Weight,
    ) -> Result<Vec<Relocation>, TableError> {
        let seq = self
            .sequences
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(TableError::UnknownSequence)?;
        if seq.total_weight < weight || seq.connections == 0 {
            return Err(TableError::WeightUnderflow);
        }
        seq.total_weight -= weight;
        seq.connections -= 1;
        self.reserved_weight -= weight;

        if seq.connections == 0 {
            debug_assert!(
                crate::invariants::released_sequence_is_drained(seq.connections, seq.total_weight),
                "weights must balance per connection"
            );
            let mask = seq.eset.mask();
            self.sequences[id.0 as usize] = None;
            self.occupancy &= !mask;
            for (slot, s) in self.slots.iter_mut().enumerate() {
                if mask & (1 << slot) != 0 {
                    *s = TableSlot::FREE;
                }
            }
            if self.auto_defrag {
                return Ok(self.defragment());
            }
        } else {
            self.rewrite_sequence_slots(id);
        }
        Ok(Vec::new())
    }

    /// Runs the defragmentation algorithm: every live sequence is
    /// re-placed by the bit-reversal policy in descending-size order,
    /// which provably packs them and leaves the free slots in the
    /// canonical layout (free entries can always serve the most
    /// restrictive request their count permits).
    pub fn defragment(&mut self) -> Vec<Relocation> {
        let live: Vec<(SequenceId, ESet)> = self
            .sequences
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (SequenceId(i as u32), s.eset)))
            .collect();
        let plan = canonical_plan(&live);
        // Theorem: descending-size re-placement of a feasible live set
        // always fits.
        assert!(plan.is_some(), "live sequences always re-pack");
        let Some(plan) = plan else { return Vec::new() };
        let moves: Vec<Relocation> = plan.iter().filter(|r| r.from != r.to).cloned().collect();
        if moves.is_empty() {
            return moves;
        }
        // Apply: clear all slots of moved sequences, then rewrite.
        self.occupancy = 0;
        self.slots = [TableSlot::FREE; TABLE_ENTRIES];
        for r in &plan {
            // The plan only names live sequences.
            if let Some(seq) = self.sequences[r.sequence.0 as usize].as_mut() {
                seq.eset = r.to;
                self.occupancy |= r.to.mask();
            }
        }
        let ids: Vec<SequenceId> = plan.iter().map(|r| r.sequence).collect();
        for id in ids {
            self.rewrite_sequence_slots(id);
        }
        moves
    }

    /// Looks for an established sequence the request may join: same SL,
    /// spacing at least as strict as required, and room for the weight.
    fn find_joinable(
        &self,
        sl: ServiceLevel,
        distance: Distance,
        weight: Weight,
    ) -> Option<SequenceId> {
        self.sequences
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (SequenceId(i as u32), s)))
            .find(|(_, s)| s.sl == sl && s.satisfies_distance(distance) && s.fits(weight))
            .map(|(id, _)| id)
    }

    fn insert_sequence(&mut self, seq: Sequence) -> SequenceId {
        if let Some(i) = self.sequences.iter().position(Option::is_none) {
            self.sequences[i] = Some(seq);
            SequenceId(i as u32)
        } else {
            self.sequences.push(Some(seq));
            SequenceId((self.sequences.len() - 1) as u32)
        }
    }

    fn rewrite_sequence_slots(&mut self, id: SequenceId) {
        // Callers only pass live ids; a dead id has no slots to rewrite.
        let Some(seq) = self.sequences[id.0 as usize].as_ref() else {
            return;
        };
        let w = Sequence::per_slot_weight(seq.total_weight, seq.eset.len());
        let vl = seq.vl.raw();
        let eset = seq.eset;
        for slot in eset.slots() {
            self.slots[slot] = TableSlot {
                vl,
                weight: w as u8,
            };
        }
    }

    /// Debug self-check: slots, occupancy and sequences agree.
    ///
    /// Used by tests and the property suite; cheap enough to call after
    /// every operation.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut occ = 0u64;
        let mut weight = 0;
        for s in self.sequences.iter().flatten() {
            let mask = s.eset.mask();
            if occ & mask != 0 {
                return Err(format!("sequences overlap on mask {mask:#x}"));
            }
            occ |= mask;
            weight += s.total_weight;
            let w = Sequence::per_slot_weight(s.total_weight, s.eset.len());
            for slot in s.eset.slots() {
                let t = self.slots[slot];
                if t.weight as u16 != w || t.vl != s.vl.raw() {
                    return Err(format!("slot {slot} out of sync with its sequence"));
                }
            }
        }
        if occ != self.occupancy {
            return Err(format!(
                "occupancy mask {:#x} != sequences {occ:#x}",
                self.occupancy
            ));
        }
        if weight != self.reserved_weight {
            return Err(format!(
                "reserved weight {} != sequences {weight}",
                self.reserved_weight
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            let busy = occ & (1 << i) != 0;
            if slot.is_free() && busy {
                return Err(format!("slot {i} free but marked busy"));
            }
            if !slot.is_free() && !busy {
                return Err(format!("slot {i} weighted but not owned"));
            }
        }
        Ok(())
    }

    /// Deterministically damages the table (for fault injection):
    /// garbles or drops slot contents, flips occupancy bits, orphans a
    /// sequence's slots and collides entry sets — the failure modes a
    /// VLArb table update loss or partial write would produce. Returns
    /// the number of damage operations applied (0 on an empty table).
    ///
    /// The damage is repairable: [`HighPriorityTable::repair`] always
    /// restores consistency afterwards.
    pub fn inject_corruption(&mut self, rng: &mut SplitMix64) -> usize {
        let busy_slots: Vec<usize> = (0..TABLE_ENTRIES)
            .filter(|i| self.occupancy & (1 << i) != 0)
            .collect();
        let live_ids: Vec<usize> = (0..self.sequences.len())
            .filter(|&i| self.sequences[i].is_some())
            .collect();
        if busy_slots.is_empty() || live_ids.is_empty() {
            return 0;
        }
        let ops = 1 + (rng.next_u64() % 3) as usize;
        for _ in 0..ops {
            match rng.next_u64() % 5 {
                0 => {
                    // Garble a busy slot's weight.
                    let slot = busy_slots[(rng.next_u64() as usize) % busy_slots.len()];
                    self.slots[slot].weight = (rng.next_u64() & 0xFF) as u8;
                }
                1 => {
                    // Entry loss: a busy slot reads back as free.
                    let slot = busy_slots[(rng.next_u64() as usize) % busy_slots.len()];
                    self.slots[slot] = TableSlot::FREE;
                }
                2 => {
                    // Occupancy bit flip.
                    let slot = busy_slots[(rng.next_u64() as usize) % busy_slots.len()];
                    self.occupancy ^= 1 << slot;
                }
                3 => {
                    // Orphan: drop a sequence's bookkeeping, leaving its
                    // slots and occupancy bits behind.
                    let id = live_ids[(rng.next_u64() as usize) % live_ids.len()];
                    if let Some(seq) = self.sequences[id].take() {
                        self.reserved_weight =
                            self.reserved_weight.saturating_sub(seq.total_weight);
                    }
                }
                _ => {
                    // Entry-set collision: move a sequence onto a random
                    // same-distance offset, possibly on top of another.
                    let id = live_ids[(rng.next_u64() as usize) % live_ids.len()];
                    if let Some(seq) = self.sequences[id].as_mut() {
                        let d = seq.eset.distance();
                        let offset = (rng.next_u64() as usize) % d.slots();
                        seq.eset = ESet::new(d, offset);
                    }
                }
            }
        }
        ops
    }

    /// Hot table repair: rebuilds a consistent table from the sequence
    /// bookkeeping, evicting every sequence whose state cannot be
    /// trusted (entry sets overlapping a lower-numbered survivor,
    /// drained weight or zero connections), then re-packs the survivors
    /// with the canonical bit-reversal defragmentation.
    ///
    /// Postcondition: [`HighPriorityTable::check_consistency`] passes.
    /// Evicted reservations are reported for re-admission by the
    /// recovery layer; their capacity is released here.
    pub fn repair(&mut self) -> RepairReport {
        let was_damaged = self.check_consistency().is_err();
        let mut evicted = Vec::new();
        // Eviction pass in ascending id order (deterministic): a
        // sequence survives only if it does not overlap the already
        // accepted set and still holds live weight.
        let mut occ = 0u64;
        for i in 0..self.sequences.len() {
            let Some(seq) = self.sequences[i].as_ref() else {
                continue;
            };
            let mask = seq.eset.mask();
            if occ & mask != 0 || seq.total_weight == 0 || seq.connections == 0 {
                if let Some(seq) = self.sequences[i].take() {
                    evicted.push(EvictedSequence {
                        sl: seq.sl,
                        vl: seq.vl,
                        distance: seq.eset.distance(),
                        weight: seq.total_weight,
                        connections: seq.connections,
                    });
                }
                continue;
            }
            occ |= mask;
        }
        // Rebuild the derived state — occupancy, reserved weight and
        // every slot — from the surviving sequences alone.
        self.occupancy = occ;
        self.reserved_weight = self
            .sequences
            .iter()
            .flatten()
            .map(|s| s.total_weight)
            .sum();
        self.slots = [TableSlot::FREE; TABLE_ENTRIES];
        let ids: Vec<SequenceId> = self
            .sequences
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| SequenceId(i as u32)))
            .collect();
        for id in ids {
            self.rewrite_sequence_slots(id);
        }
        // Canonical re-pack: the repaired table serves the strictest
        // requests its free-entry count permits.
        let relocations = self.defragment().len();
        debug_assert!(self.check_consistency().is_ok(), "repair left damage");
        RepairReport {
            was_damaged,
            evicted,
            relocations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sl(i: u8) -> ServiceLevel {
        ServiceLevel::new(i).unwrap()
    }
    fn vl(i: u8) -> VirtualLane {
        VirtualLane::data(i)
    }

    #[test]
    fn admit_creates_then_shares() {
        let mut t = HighPriorityTable::new();
        let a = t.admit(sl(3), vl(3), Distance::D16, 40).unwrap();
        assert!(a.new_sequence);
        // Same SL, fits: joins the same sequence.
        let b = t.admit(sl(3), vl(3), Distance::D16, 40).unwrap();
        assert!(!b.new_sequence);
        assert_eq!(a.sequence, b.sequence);
        let info = t.sequence(a.sequence).unwrap();
        assert_eq!(info.total_weight, 80);
        assert_eq!(info.connections, 2);
        assert_eq!(info.per_slot_weight, 20); // 80 weight over 4 entries
        t.check_consistency().unwrap();
    }

    #[test]
    fn different_sls_get_different_sequences() {
        let mut t = HighPriorityTable::new();
        let a = t.admit(sl(4), vl(4), Distance::D32, 10).unwrap();
        let b = t.admit(sl(5), vl(5), Distance::D32, 10).unwrap();
        assert_ne!(a.sequence, b.sequence);
        t.check_consistency().unwrap();
    }

    #[test]
    fn full_sequence_spills_into_a_new_one() {
        let mut t = HighPriorityTable::new();
        // d=64 sequence holds one entry, cap 255.
        let a = t.admit(sl(6), vl(6), Distance::D64, 200).unwrap();
        let b = t.admit(sl(6), vl(6), Distance::D64, 100).unwrap();
        assert!(b.new_sequence);
        assert_ne!(a.sequence, b.sequence);
        t.check_consistency().unwrap();
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut t = HighPriorityTable::new();
        t.set_capacity_limit(100);
        assert!(t.admit(sl(6), vl(6), Distance::D64, 60).is_ok());
        assert_eq!(
            t.admit(sl(7), vl(7), Distance::D64, 41).unwrap_err(),
            TableError::CapacityExceeded
        );
        // Exactly at the cap is fine.
        assert!(t.admit(sl(7), vl(7), Distance::D64, 40).is_ok());
        t.check_consistency().unwrap();
    }

    #[test]
    fn release_frees_and_reuses() {
        let mut t = HighPriorityTable::new();
        let a = t.admit(sl(0), vl(0), Distance::D2, 32).unwrap();
        assert_eq!(t.free_entries(), 32);
        t.release(a.sequence, 32).unwrap();
        assert_eq!(t.free_entries(), 64);
        assert_eq!(t.reserved_weight(), 0);
        assert!(t.sequence(a.sequence).is_none());
        t.check_consistency().unwrap();
    }

    #[test]
    fn partial_release_keeps_sequence() {
        let mut t = HighPriorityTable::new();
        let a = t.admit(sl(2), vl(2), Distance::D8, 30).unwrap();
        let _ = t.admit(sl(2), vl(2), Distance::D8, 50).unwrap();
        let moves = t.release(a.sequence, 30).unwrap();
        assert!(moves.is_empty());
        let info = t.sequence(a.sequence).unwrap();
        assert_eq!(info.total_weight, 50);
        assert_eq!(info.connections, 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn release_errors() {
        let mut t = HighPriorityTable::new();
        assert_eq!(
            t.release(SequenceId(9), 1).unwrap_err(),
            TableError::UnknownSequence
        );
        let a = t.admit(sl(2), vl(2), Distance::D8, 30).unwrap();
        assert_eq!(
            t.release(a.sequence, 31).unwrap_err(),
            TableError::WeightUnderflow
        );
    }

    #[test]
    fn weight_zero_rejected() {
        let mut t = HighPriorityTable::new();
        assert!(t.admit(sl(1), vl(1), Distance::D4, 0).is_err());
    }

    #[test]
    fn oversized_weight_rejected() {
        let mut t = HighPriorityTable::new();
        assert_eq!(
            t.admit(sl(9), vl(9), Distance::D64, 32 * 255 + 1)
                .unwrap_err(),
            TableError::RequestTooLarge
        );
    }

    #[test]
    fn can_admit_matches_admit() {
        let mut t = HighPriorityTable::new();
        t.set_capacity_limit(500);
        for (d, w) in [
            (Distance::D2, 100u32),
            (Distance::D64, 200),
            (Distance::D8, 150),
            (Distance::D4, 60),
        ] {
            let predicted = t.can_admit(sl(1), d, w);
            let actual = t.admit(sl(1), vl(1), d, w).is_ok();
            assert_eq!(predicted, actual, "mismatch for {d} w={w}");
        }
    }

    #[test]
    fn defrag_restores_strict_capability() {
        let mut t = HighPriorityTable::new();
        // Fill with 32 single-entry sequences on distinct SL/VL... use
        // distinct SLs cyclically so nothing joins.
        let mut ids = Vec::new();
        for k in 0..32 {
            let s = sl((k % 10) as u8);
            let adm = t.admit(s, vl((k % 10) as u8), Distance::D64, 255).unwrap();
            ids.push(adm.sequence);
        }
        // All even slots busy. Free every second sequence.
        for (k, id) in ids.iter().enumerate() {
            if k % 2 == 0 {
                t.release(*id, 255).unwrap();
            }
        }
        t.check_consistency().unwrap();
        // 48 slots free; a d=2 request (32 entries) must be admissible
        // thanks to defragmentation.
        assert!(t.can_admit(sl(0), Distance::D2, 32));
        let adm = t.admit(sl(0), vl(0), Distance::D2, 32).unwrap();
        assert!(adm.new_sequence);
        t.check_consistency().unwrap();
    }

    fn filled_table(seed: u64) -> HighPriorityTable {
        let mut t = HighPriorityTable::new();
        let mut rng = SplitMix64::seed_from_u64(seed);
        for k in 0..8u8 {
            let d = match rng.next_u64() % 4 {
                0 => Distance::D8,
                1 => Distance::D16,
                2 => Distance::D32,
                _ => Distance::D64,
            };
            let w = 10 + (rng.next_u64() % 80) as u32;
            // Distinct SLs so nothing joins; ignore full-table rejects.
            let _ = t.admit(sl(k % 10), vl(k % 10), d, w);
        }
        t.check_consistency().unwrap();
        t
    }

    #[test]
    fn corruption_damages_and_repair_heals() {
        let mut t = filled_table(11);
        let mut rng = SplitMix64::seed_from_u64(0xDEAD);
        let ops = t.inject_corruption(&mut rng);
        assert!(ops > 0);
        let report = t.repair();
        t.check_consistency().unwrap();
        assert!(report.was_damaged || report.evicted.is_empty());
    }

    #[test]
    fn repair_on_healthy_table_is_a_noop() {
        let mut t = filled_table(3);
        let before: Vec<_> = t.sequences().collect();
        let report = t.repair();
        assert!(!report.was_damaged);
        assert!(report.evicted.is_empty());
        let after: Vec<_> = t.sequences().collect();
        assert_eq!(before.len(), after.len());
        t.check_consistency().unwrap();
    }

    #[test]
    fn repair_always_restores_consistency_property() {
        // Seeded property sweep: whatever the damage, repair ends in a
        // consistent table whose free entries serve the strictest
        // request their count permits (canonical layout).
        for seed in 0..200u64 {
            let mut t = filled_table(seed);
            let mut rng = SplitMix64::seed_from_u64(seed ^ 0xC0FFEE);
            t.inject_corruption(&mut rng);
            let report = t.repair();
            t.check_consistency()
                .unwrap_or_else(|e| panic!("seed {seed}: repair left damage: {e}"));
            assert!(crate::defrag::is_canonical(t.occupancy()));
            // Evicted capacity was released: survivors account for all
            // reserved weight, so every eviction is re-admissible in
            // principle.
            for ev in &report.evicted {
                assert!(ev.weight == 0 || ev.distance.slots() >= 2);
            }
        }
    }

    #[test]
    fn repair_reports_overlap_evictions() {
        let mut t = HighPriorityTable::new();
        let a = t.admit(sl(1), vl(1), Distance::D16, 40).unwrap();
        let b = t.admit(sl(2), vl(2), Distance::D16, 60).unwrap();
        // Force b onto a's entry set: an overlap repair must resolve by
        // evicting the higher-numbered sequence.
        let eset_a = t.sequences[a.sequence.0 as usize].as_ref().unwrap().eset;
        t.sequences[b.sequence.0 as usize].as_mut().unwrap().eset = eset_a;
        assert!(t.check_consistency().is_err());
        let report = t.repair();
        assert!(report.was_damaged);
        assert_eq!(report.evicted.len(), 1);
        let ev = report.evicted[0];
        assert_eq!(ev.weight, 60);
        assert_eq!(ev.distance, Distance::D16);
        t.check_consistency().unwrap();
        // The survivor keeps its reservation; the evicted weight is
        // released and re-admissible.
        assert_eq!(t.reserved_weight(), 40);
        assert!(t.can_admit(sl(2), Distance::D16, 60));
    }

    #[test]
    fn no_defrag_strands_entries_with_first_fit() {
        let mut t = HighPriorityTable::with_allocator(AllocatorKind::FirstFit);
        t.set_auto_defrag(false);
        let mut ids = Vec::new();
        for k in 0..4 {
            let s = sl(k);
            ids.push(t.admit(s, vl(k), Distance::D64, 255).unwrap().sequence);
        }
        // first-fit used slots 0,1,2,3; free slots 0 and 2.
        t.release(ids[0], 255).unwrap();
        t.release(ids[2], 255).unwrap();
        // 62 free slots but no free d=2 set (slots 1 and 3 busy kill
        // both offsets' sets? slot 1 kills E(2,1), slot 3 also odd).
        // E(2,0) = evens: free. So d2 admissible here; check a stricter
        // scenario: occupy slots 0 and 1 instead.
        let mut t = HighPriorityTable::with_allocator(AllocatorKind::FirstFit);
        t.set_auto_defrag(false);
        let a = t.admit(sl(0), vl(0), Distance::D64, 255).unwrap();
        let _b = t.admit(sl(1), vl(1), Distance::D64, 255).unwrap();
        // slots 0 (even) and 1 (odd) busy: no d=2 set free although 62
        // entries are free.
        assert!(!t.can_admit(sl(2), Distance::D2, 32));
        // The bit-reversal policy would have put the second sequence on
        // slot 32, keeping d=2 alive; show defrag repairs it too.
        t.release(a.sequence, 255).unwrap();
        t.defragment();
        assert!(t.can_admit(sl(2), Distance::D2, 32));
        t.check_consistency().unwrap();
    }
}
