//! The stateful high-priority arbitration table of one output port:
//! admission of connections (with sequence sharing), release, and
//! defragmentation.

use crate::alloc::AllocatorKind;
use crate::defrag::{canonical_plan, Relocation};
use crate::distance::{effective_request, Distance};
use crate::entry::{TableSlot, VirtualLane, TABLE_ENTRIES};
use crate::eset::ESet;
use crate::sequence::{Sequence, SequenceId, SequenceInfo};
use crate::sl::ServiceLevel;
use crate::weight::{Weight, MAX_TABLE_WEIGHT};

/// Errors returned by table operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableError {
    /// The request needs more entries than any permitted progression
    /// provides (weight above `32 · 255` units).
    RequestTooLarge,
    /// Admitting the request would exceed the configured reservation
    /// limit (e.g. the 80% QoS share of the link).
    CapacityExceeded,
    /// No free `E_{i,j}` exists for the request's distance.
    NoFreeSequence,
    /// The sequence handle is stale or was never issued.
    UnknownSequence,
    /// Releasing more weight than the sequence holds.
    WeightUnderflow,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TableError::RequestTooLarge => "request needs more than 32 table entries",
            TableError::CapacityExceeded => "reservation limit exceeded",
            TableError::NoFreeSequence => "no free entry sequence for the requested distance",
            TableError::UnknownSequence => "unknown sequence id",
            TableError::WeightUnderflow => "released more weight than reserved",
        };
        f.write_str(s)
    }
}

impl std::error::Error for TableError {}

/// A granted admission: which sequence the connection joined and whether
/// a brand-new sequence had to be allocated for it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Admission {
    /// Sequence the connection now shares.
    pub sequence: SequenceId,
    /// `true` when a new sequence was allocated (vs joining an existing
    /// one).
    pub new_sequence: bool,
}

/// The high-priority table of one output port.
///
/// Owns the 64 slots, the live sequences and the reservation accounting.
/// All mutation goes through [`HighPriorityTable::admit`] /
/// [`HighPriorityTable::release`]; the slot array is always kept
/// consistent with the sequence set.
///
/// # Examples
///
/// ```
/// use iba_core::{Distance, HighPriorityTable, ServiceLevel, VirtualLane};
///
/// let mut table = HighPriorityTable::new();
/// let sl = ServiceLevel::new(2).unwrap();
///
/// // A connection needing entries every 8 slots with weight 80.
/// let a = table.admit(sl, VirtualLane::data(2), Distance::D8, 80).unwrap();
/// assert!(a.new_sequence);
/// assert_eq!(table.free_entries(), 56);
///
/// // A second connection of the same SL shares the sequence.
/// let b = table.admit(sl, VirtualLane::data(2), Distance::D8, 40).unwrap();
/// assert_eq!(a.sequence, b.sequence);
/// assert_eq!(table.sequence(a.sequence).unwrap().total_weight, 120);
///
/// // Releases return capacity; defragmentation keeps the layout optimal.
/// table.release(b.sequence, 40).unwrap();
/// table.release(a.sequence, 80).unwrap();
/// assert_eq!(table.free_entries(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct HighPriorityTable {
    slots: [TableSlot; TABLE_ENTRIES],
    occupancy: u64,
    sequences: Vec<Option<Sequence>>,
    reserved_weight: Weight,
    capacity_limit: Weight,
    allocator: AllocatorKind,
    auto_defrag: bool,
}

impl Default for HighPriorityTable {
    fn default() -> Self {
        Self::new()
    }
}

impl HighPriorityTable {
    /// An empty table using the paper's bit-reversal allocator, automatic
    /// defragmentation on release and no reservation limit.
    #[must_use]
    pub fn new() -> Self {
        HighPriorityTable {
            slots: [TableSlot::FREE; TABLE_ENTRIES],
            occupancy: 0,
            sequences: Vec::new(),
            reserved_weight: 0,
            capacity_limit: MAX_TABLE_WEIGHT,
            allocator: AllocatorKind::BitReversal,
            auto_defrag: true,
        }
    }

    /// An empty table with an explicit allocation policy (for ablations).
    #[must_use]
    pub fn with_allocator(allocator: AllocatorKind) -> Self {
        HighPriorityTable {
            allocator,
            ..Self::new()
        }
    }

    /// Caps the total admissible weight (e.g. `0.8 · MAX_TABLE_WEIGHT`
    /// to reserve 20% of the link for best-effort traffic).
    pub fn set_capacity_limit(&mut self, limit: Weight) {
        self.capacity_limit = limit.min(MAX_TABLE_WEIGHT);
    }

    /// Enables/disables automatic defragmentation when a sequence dies.
    pub fn set_auto_defrag(&mut self, on: bool) {
        self.auto_defrag = on;
    }

    /// The configured reservation cap.
    #[must_use]
    pub fn capacity_limit(&self) -> Weight {
        self.capacity_limit
    }

    /// The allocation policy in use.
    #[must_use]
    pub fn allocator(&self) -> AllocatorKind {
        self.allocator
    }

    /// Bitmask of busy slots.
    #[must_use]
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// Number of free slots.
    #[must_use]
    pub fn free_entries(&self) -> usize {
        TABLE_ENTRIES - self.occupancy.count_ones() as usize
    }

    /// Total weight currently reserved by admitted connections.
    #[must_use]
    pub fn reserved_weight(&self) -> Weight {
        self.reserved_weight
    }

    /// The raw slot array (what would be written to the hardware table).
    #[must_use]
    pub fn slots(&self) -> &[TableSlot; TABLE_ENTRIES] {
        &self.slots
    }

    /// Live sequences with their public info.
    pub fn sequences(&self) -> impl Iterator<Item = (SequenceId, SequenceInfo)> + '_ {
        self.sequences.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref()
                .map(|s| (SequenceId(i as u32), SequenceInfo::from(s)))
        })
    }

    /// Info for one sequence.
    #[must_use]
    pub fn sequence(&self, id: SequenceId) -> Option<SequenceInfo> {
        self.sequences
            .get(id.0 as usize)?
            .as_ref()
            .map(SequenceInfo::from)
    }

    /// Non-mutating admission check: would `admit` succeed?
    #[must_use]
    pub fn can_admit(&self, sl: ServiceLevel, distance: Distance, weight: Weight) -> bool {
        if self.reserved_weight + weight > self.capacity_limit {
            return false;
        }
        let Some((d_eff, _)) = effective_request(distance, weight) else {
            return false;
        };
        if self.find_joinable(sl, distance, weight).is_some() {
            return true;
        }
        self.allocator.select(self.occupancy, d_eff).is_some()
    }

    /// Admits a connection of service level `sl` (travelling on `vl`)
    /// that needs entry spacing `distance` and table weight `weight`.
    ///
    /// Following §3.3: first an already-established sequence of the same
    /// SL with enough room is reused; only if none exists is a fresh
    /// `E_{i,j}` looked up with the configured allocator.
    pub fn admit(
        &mut self,
        sl: ServiceLevel,
        vl: VirtualLane,
        distance: Distance,
        weight: Weight,
    ) -> Result<Admission, TableError> {
        self.admit_observed(sl, vl, distance, weight, &mut iba_obs::NullRecorder)
    }

    /// [`HighPriorityTable::admit`] with instrumentation: allocator
    /// probes (`alloc_probe_total`, `alloc_probe_depth`, ...) performed
    /// while placing a new sequence are recorded into `rec`. Joining an
    /// existing sequence performs no probes and records nothing.
    pub fn admit_observed(
        &mut self,
        sl: ServiceLevel,
        vl: VirtualLane,
        distance: Distance,
        weight: Weight,
        rec: &mut dyn iba_obs::Recorder,
    ) -> Result<Admission, TableError> {
        assert!(
            !vl.is_management(),
            "VL15 never enters the arbitration table"
        );
        if weight == 0 {
            return Err(TableError::WeightUnderflow);
        }
        let (d_eff, _entries) =
            effective_request(distance, weight).ok_or(TableError::RequestTooLarge)?;
        if self.reserved_weight + weight > self.capacity_limit {
            return Err(TableError::CapacityExceeded);
        }

        if let Some(id) = self.find_joinable(sl, distance, weight) {
            // find_joinable only returns live ids.
            let Some(seq) = self.sequences[id.0 as usize].as_mut() else {
                return Err(TableError::UnknownSequence);
            };
            seq.total_weight += weight;
            seq.connections += 1;
            self.reserved_weight += weight;
            self.rewrite_sequence_slots(id);
            return Ok(Admission {
                sequence: id,
                new_sequence: false,
            });
        }

        rec.span_begin("alloc.select");
        let selected = self.allocator.select_observed(self.occupancy, d_eff, rec);
        rec.span_end("alloc.select");
        let eset = selected.ok_or(TableError::NoFreeSequence)?;
        let id = self.insert_sequence(Sequence {
            eset,
            vl,
            sl,
            total_weight: weight,
            connections: 1,
        });
        self.occupancy |= eset.mask();
        self.reserved_weight += weight;
        self.rewrite_sequence_slots(id);
        Ok(Admission {
            sequence: id,
            new_sequence: true,
        })
    }

    /// Releases one connection of weight `weight` from `id`.
    ///
    /// When the sequence's accumulated weight reaches zero its entries
    /// are freed and (if auto-defrag is on) the defragmentation pass
    /// restores the canonical layout. Returns the relocations performed
    /// (empty when the sequence survives or defrag moved nothing).
    pub fn release(
        &mut self,
        id: SequenceId,
        weight: Weight,
    ) -> Result<Vec<Relocation>, TableError> {
        let seq = self
            .sequences
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(TableError::UnknownSequence)?;
        if seq.total_weight < weight || seq.connections == 0 {
            return Err(TableError::WeightUnderflow);
        }
        seq.total_weight -= weight;
        seq.connections -= 1;
        self.reserved_weight -= weight;

        if seq.connections == 0 {
            debug_assert!(
                crate::invariants::released_sequence_is_drained(seq.connections, seq.total_weight),
                "weights must balance per connection"
            );
            let mask = seq.eset.mask();
            self.sequences[id.0 as usize] = None;
            self.occupancy &= !mask;
            for (slot, s) in self.slots.iter_mut().enumerate() {
                if mask & (1 << slot) != 0 {
                    *s = TableSlot::FREE;
                }
            }
            if self.auto_defrag {
                return Ok(self.defragment());
            }
        } else {
            self.rewrite_sequence_slots(id);
        }
        Ok(Vec::new())
    }

    /// Runs the defragmentation algorithm: every live sequence is
    /// re-placed by the bit-reversal policy in descending-size order,
    /// which provably packs them and leaves the free slots in the
    /// canonical layout (free entries can always serve the most
    /// restrictive request their count permits).
    pub fn defragment(&mut self) -> Vec<Relocation> {
        let live: Vec<(SequenceId, ESet)> = self
            .sequences
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (SequenceId(i as u32), s.eset)))
            .collect();
        let plan = canonical_plan(&live);
        // Theorem: descending-size re-placement of a feasible live set
        // always fits.
        assert!(plan.is_some(), "live sequences always re-pack");
        let Some(plan) = plan else { return Vec::new() };
        let moves: Vec<Relocation> = plan.iter().filter(|r| r.from != r.to).cloned().collect();
        if moves.is_empty() {
            return moves;
        }
        // Apply: clear all slots of moved sequences, then rewrite.
        self.occupancy = 0;
        self.slots = [TableSlot::FREE; TABLE_ENTRIES];
        for r in &plan {
            // The plan only names live sequences.
            if let Some(seq) = self.sequences[r.sequence.0 as usize].as_mut() {
                seq.eset = r.to;
                self.occupancy |= r.to.mask();
            }
        }
        let ids: Vec<SequenceId> = plan.iter().map(|r| r.sequence).collect();
        for id in ids {
            self.rewrite_sequence_slots(id);
        }
        moves
    }

    /// Looks for an established sequence the request may join: same SL,
    /// spacing at least as strict as required, and room for the weight.
    fn find_joinable(
        &self,
        sl: ServiceLevel,
        distance: Distance,
        weight: Weight,
    ) -> Option<SequenceId> {
        self.sequences
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (SequenceId(i as u32), s)))
            .find(|(_, s)| s.sl == sl && s.satisfies_distance(distance) && s.fits(weight))
            .map(|(id, _)| id)
    }

    fn insert_sequence(&mut self, seq: Sequence) -> SequenceId {
        if let Some(i) = self.sequences.iter().position(Option::is_none) {
            self.sequences[i] = Some(seq);
            SequenceId(i as u32)
        } else {
            self.sequences.push(Some(seq));
            SequenceId((self.sequences.len() - 1) as u32)
        }
    }

    fn rewrite_sequence_slots(&mut self, id: SequenceId) {
        // Callers only pass live ids; a dead id has no slots to rewrite.
        let Some(seq) = self.sequences[id.0 as usize].as_ref() else {
            return;
        };
        let w = Sequence::per_slot_weight(seq.total_weight, seq.eset.len());
        let vl = seq.vl.raw();
        let eset = seq.eset;
        for slot in eset.slots() {
            self.slots[slot] = TableSlot {
                vl,
                weight: w as u8,
            };
        }
    }

    /// Debug self-check: slots, occupancy and sequences agree.
    ///
    /// Used by tests and the property suite; cheap enough to call after
    /// every operation.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut occ = 0u64;
        let mut weight = 0;
        for s in self.sequences.iter().flatten() {
            let mask = s.eset.mask();
            if occ & mask != 0 {
                return Err(format!("sequences overlap on mask {mask:#x}"));
            }
            occ |= mask;
            weight += s.total_weight;
            let w = Sequence::per_slot_weight(s.total_weight, s.eset.len());
            for slot in s.eset.slots() {
                let t = self.slots[slot];
                if t.weight as u16 != w || t.vl != s.vl.raw() {
                    return Err(format!("slot {slot} out of sync with its sequence"));
                }
            }
        }
        if occ != self.occupancy {
            return Err(format!(
                "occupancy mask {:#x} != sequences {occ:#x}",
                self.occupancy
            ));
        }
        if weight != self.reserved_weight {
            return Err(format!(
                "reserved weight {} != sequences {weight}",
                self.reserved_weight
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            let busy = occ & (1 << i) != 0;
            if slot.is_free() && busy {
                return Err(format!("slot {i} free but marked busy"));
            }
            if !slot.is_free() && !busy {
                return Err(format!("slot {i} weighted but not owned"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sl(i: u8) -> ServiceLevel {
        ServiceLevel::new(i).unwrap()
    }
    fn vl(i: u8) -> VirtualLane {
        VirtualLane::data(i)
    }

    #[test]
    fn admit_creates_then_shares() {
        let mut t = HighPriorityTable::new();
        let a = t.admit(sl(3), vl(3), Distance::D16, 40).unwrap();
        assert!(a.new_sequence);
        // Same SL, fits: joins the same sequence.
        let b = t.admit(sl(3), vl(3), Distance::D16, 40).unwrap();
        assert!(!b.new_sequence);
        assert_eq!(a.sequence, b.sequence);
        let info = t.sequence(a.sequence).unwrap();
        assert_eq!(info.total_weight, 80);
        assert_eq!(info.connections, 2);
        assert_eq!(info.per_slot_weight, 20); // 80 weight over 4 entries
        t.check_consistency().unwrap();
    }

    #[test]
    fn different_sls_get_different_sequences() {
        let mut t = HighPriorityTable::new();
        let a = t.admit(sl(4), vl(4), Distance::D32, 10).unwrap();
        let b = t.admit(sl(5), vl(5), Distance::D32, 10).unwrap();
        assert_ne!(a.sequence, b.sequence);
        t.check_consistency().unwrap();
    }

    #[test]
    fn full_sequence_spills_into_a_new_one() {
        let mut t = HighPriorityTable::new();
        // d=64 sequence holds one entry, cap 255.
        let a = t.admit(sl(6), vl(6), Distance::D64, 200).unwrap();
        let b = t.admit(sl(6), vl(6), Distance::D64, 100).unwrap();
        assert!(b.new_sequence);
        assert_ne!(a.sequence, b.sequence);
        t.check_consistency().unwrap();
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut t = HighPriorityTable::new();
        t.set_capacity_limit(100);
        assert!(t.admit(sl(6), vl(6), Distance::D64, 60).is_ok());
        assert_eq!(
            t.admit(sl(7), vl(7), Distance::D64, 41).unwrap_err(),
            TableError::CapacityExceeded
        );
        // Exactly at the cap is fine.
        assert!(t.admit(sl(7), vl(7), Distance::D64, 40).is_ok());
        t.check_consistency().unwrap();
    }

    #[test]
    fn release_frees_and_reuses() {
        let mut t = HighPriorityTable::new();
        let a = t.admit(sl(0), vl(0), Distance::D2, 32).unwrap();
        assert_eq!(t.free_entries(), 32);
        t.release(a.sequence, 32).unwrap();
        assert_eq!(t.free_entries(), 64);
        assert_eq!(t.reserved_weight(), 0);
        assert!(t.sequence(a.sequence).is_none());
        t.check_consistency().unwrap();
    }

    #[test]
    fn partial_release_keeps_sequence() {
        let mut t = HighPriorityTable::new();
        let a = t.admit(sl(2), vl(2), Distance::D8, 30).unwrap();
        let _ = t.admit(sl(2), vl(2), Distance::D8, 50).unwrap();
        let moves = t.release(a.sequence, 30).unwrap();
        assert!(moves.is_empty());
        let info = t.sequence(a.sequence).unwrap();
        assert_eq!(info.total_weight, 50);
        assert_eq!(info.connections, 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn release_errors() {
        let mut t = HighPriorityTable::new();
        assert_eq!(
            t.release(SequenceId(9), 1).unwrap_err(),
            TableError::UnknownSequence
        );
        let a = t.admit(sl(2), vl(2), Distance::D8, 30).unwrap();
        assert_eq!(
            t.release(a.sequence, 31).unwrap_err(),
            TableError::WeightUnderflow
        );
    }

    #[test]
    fn weight_zero_rejected() {
        let mut t = HighPriorityTable::new();
        assert!(t.admit(sl(1), vl(1), Distance::D4, 0).is_err());
    }

    #[test]
    fn oversized_weight_rejected() {
        let mut t = HighPriorityTable::new();
        assert_eq!(
            t.admit(sl(9), vl(9), Distance::D64, 32 * 255 + 1)
                .unwrap_err(),
            TableError::RequestTooLarge
        );
    }

    #[test]
    fn can_admit_matches_admit() {
        let mut t = HighPriorityTable::new();
        t.set_capacity_limit(500);
        for (d, w) in [
            (Distance::D2, 100u32),
            (Distance::D64, 200),
            (Distance::D8, 150),
            (Distance::D4, 60),
        ] {
            let predicted = t.can_admit(sl(1), d, w);
            let actual = t.admit(sl(1), vl(1), d, w).is_ok();
            assert_eq!(predicted, actual, "mismatch for {d} w={w}");
        }
    }

    #[test]
    fn defrag_restores_strict_capability() {
        let mut t = HighPriorityTable::new();
        // Fill with 32 single-entry sequences on distinct SL/VL... use
        // distinct SLs cyclically so nothing joins.
        let mut ids = Vec::new();
        for k in 0..32 {
            let s = sl((k % 10) as u8);
            let adm = t.admit(s, vl((k % 10) as u8), Distance::D64, 255).unwrap();
            ids.push(adm.sequence);
        }
        // All even slots busy. Free every second sequence.
        for (k, id) in ids.iter().enumerate() {
            if k % 2 == 0 {
                t.release(*id, 255).unwrap();
            }
        }
        t.check_consistency().unwrap();
        // 48 slots free; a d=2 request (32 entries) must be admissible
        // thanks to defragmentation.
        assert!(t.can_admit(sl(0), Distance::D2, 32));
        let adm = t.admit(sl(0), vl(0), Distance::D2, 32).unwrap();
        assert!(adm.new_sequence);
        t.check_consistency().unwrap();
    }

    #[test]
    fn no_defrag_strands_entries_with_first_fit() {
        let mut t = HighPriorityTable::with_allocator(AllocatorKind::FirstFit);
        t.set_auto_defrag(false);
        let mut ids = Vec::new();
        for k in 0..4 {
            let s = sl(k);
            ids.push(t.admit(s, vl(k), Distance::D64, 255).unwrap().sequence);
        }
        // first-fit used slots 0,1,2,3; free slots 0 and 2.
        t.release(ids[0], 255).unwrap();
        t.release(ids[2], 255).unwrap();
        // 62 free slots but no free d=2 set (slots 1 and 3 busy kill
        // both offsets' sets? slot 1 kills E(2,1), slot 3 also odd).
        // E(2,0) = evens: free. So d2 admissible here; check a stricter
        // scenario: occupy slots 0 and 1 instead.
        let mut t = HighPriorityTable::with_allocator(AllocatorKind::FirstFit);
        t.set_auto_defrag(false);
        let a = t.admit(sl(0), vl(0), Distance::D64, 255).unwrap();
        let _b = t.admit(sl(1), vl(1), Distance::D64, 255).unwrap();
        // slots 0 (even) and 1 (odd) busy: no d=2 set free although 62
        // entries are free.
        assert!(!t.can_admit(sl(2), Distance::D2, 32));
        // The bit-reversal policy would have put the second sequence on
        // slot 32, keeping d=2 alive; show defrag repairs it too.
        t.release(a.sequence, 255).unwrap();
        t.defragment();
        assert!(t.can_admit(sl(2), Distance::D2, 32));
        t.check_consistency().unwrap();
    }
}
