//! Service levels, traffic classes and the SL→VL mapping.
//!
//! The paper's key classification move: SLs are assigned by **maximum
//! latency** — i.e. by the maximum distance between two consecutive
//! entries of the high-priority table — rather than by bandwidth. All
//! connections of one SL therefore need the same entry spacing and can
//! share sequences, and for the most used distances (32 and 64) several
//! SLs are distinguished by mean bandwidth.

use crate::distance::Distance;
use crate::entry::VirtualLane;
use std::fmt;

/// A service level (0..=15) carried in every packet header.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ServiceLevel(u8);

impl ServiceLevel {
    /// Creates a service level; `None` when `id > 15`.
    #[must_use]
    pub fn new(id: u8) -> Option<Self> {
        (id <= 15).then_some(ServiceLevel(id))
    }

    /// Raw SL number.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw SL number as `u8`.
    #[must_use]
    pub fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for ServiceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SL{}", self.0)
    }
}

/// Pelissier's traffic taxonomy, extended by the authors with PBE.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrafficClass {
    /// Dedicated Bandwidth Time Sensitive — bandwidth *and* latency
    /// guarantees (multimedia streams).
    Bts,
    /// Dedicated Bandwidth — bandwidth guarantee only; treated by the
    /// paper as BTS with "a big enough time deadline".
    Db,
    /// Preferential Best Effort — no guarantees, preferred over BE
    /// (web / database access).
    Pbe,
    /// Best Effort (mail, ftp, …).
    Be,
    /// Challenged — below best effort.
    Ch,
}

impl TrafficClass {
    /// Classes whose requirements are guaranteed through the
    /// high-priority table under the paper's proposal.
    #[must_use]
    pub fn is_guaranteed(self) -> bool {
        matches!(self, TrafficClass::Bts | TrafficClass::Db)
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Bts => "BTS",
            TrafficClass::Db => "DB",
            TrafficClass::Pbe => "PBE",
            TrafficClass::Be => "BE",
            TrafficClass::Ch => "CH",
        };
        f.write_str(s)
    }
}

/// Static features of one service level (a row of the paper's Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlProfile {
    /// The service level.
    pub sl: ServiceLevel,
    /// Traffic class served by the SL.
    pub class: TrafficClass,
    /// Maximum distance between consecutive high-priority entries
    /// (`None` for best-effort SLs, which use the low-priority table).
    pub distance: Option<Distance>,
    /// Mean-bandwidth range (Mbps) of connections admitted on the SL.
    pub bandwidth_mbps: (f64, f64),
}

impl SlProfile {
    /// Whether a connection of mean bandwidth `mbps` belongs in this SL's
    /// bandwidth stratum.
    #[must_use]
    pub fn bandwidth_in_range(&self, mbps: f64) -> bool {
        mbps >= self.bandwidth_mbps.0 && mbps <= self.bandwidth_mbps.1
    }
}

/// The complete SL configuration of a subnet: which SLs exist, their
/// distances and bandwidth strata, plus the best-effort levels.
#[derive(Clone, Debug)]
pub struct SlTable {
    profiles: Vec<SlProfile>,
}

/// Number of QoS (guaranteed) service levels in the paper's Table 1.
pub const QOS_SLS: usize = 10;
/// SL used for preferential best effort under this configuration.
pub const SL_PBE: u8 = 10;
/// SL used for best effort.
pub const SL_BE: u8 = 11;
/// SL used for challenged traffic.
pub const SL_CH: u8 = 12;

impl SlTable {
    /// The paper's Table 1 (values reconstructed — see DESIGN.md §4):
    /// ten QoS SLs classified by maximum distance, with the most used
    /// distances (32 and 64) subdivided by mean bandwidth, plus the three
    /// best-effort levels served from the low-priority table.
    #[must_use]
    pub fn paper_table1() -> Self {
        // Literal SL ids, all <= 12 (in-module access to the private field).
        let sl = |i: u8| ServiceLevel(i);
        let profiles = vec![
            SlProfile {
                sl: sl(0),
                class: TrafficClass::Bts,
                distance: Some(Distance::D2),
                bandwidth_mbps: (1.0, 4.0),
            },
            SlProfile {
                sl: sl(1),
                class: TrafficClass::Bts,
                distance: Some(Distance::D4),
                bandwidth_mbps: (1.0, 4.0),
            },
            SlProfile {
                sl: sl(2),
                class: TrafficClass::Bts,
                distance: Some(Distance::D8),
                bandwidth_mbps: (1.0, 8.0),
            },
            SlProfile {
                sl: sl(3),
                class: TrafficClass::Bts,
                distance: Some(Distance::D16),
                bandwidth_mbps: (1.0, 8.0),
            },
            SlProfile {
                sl: sl(4),
                class: TrafficClass::Bts,
                distance: Some(Distance::D32),
                bandwidth_mbps: (1.0, 8.0),
            },
            SlProfile {
                sl: sl(5),
                class: TrafficClass::Bts,
                distance: Some(Distance::D32),
                bandwidth_mbps: (8.0, 32.0),
            },
            SlProfile {
                sl: sl(6),
                class: TrafficClass::Db,
                distance: Some(Distance::D64),
                bandwidth_mbps: (1.0, 8.0),
            },
            SlProfile {
                sl: sl(7),
                class: TrafficClass::Db,
                distance: Some(Distance::D64),
                bandwidth_mbps: (8.0, 32.0),
            },
            SlProfile {
                sl: sl(8),
                class: TrafficClass::Db,
                distance: Some(Distance::D64),
                bandwidth_mbps: (32.0, 64.0),
            },
            SlProfile {
                sl: sl(9),
                class: TrafficClass::Db,
                distance: Some(Distance::D64),
                bandwidth_mbps: (64.0, 128.0),
            },
            SlProfile {
                sl: sl(SL_PBE),
                class: TrafficClass::Pbe,
                distance: None,
                bandwidth_mbps: (0.0, f64::INFINITY),
            },
            SlProfile {
                sl: sl(SL_BE),
                class: TrafficClass::Be,
                distance: None,
                bandwidth_mbps: (0.0, f64::INFINITY),
            },
            SlProfile {
                sl: sl(SL_CH),
                class: TrafficClass::Ch,
                distance: None,
                bandwidth_mbps: (0.0, f64::INFINITY),
            },
        ];
        SlTable { profiles }
    }

    /// Builds a custom SL table. Panics if two profiles claim the same SL.
    #[must_use]
    pub fn custom(profiles: Vec<SlProfile>) -> Self {
        let mut seen = [false; 16];
        for p in &profiles {
            assert!(
                !std::mem::replace(&mut seen[p.sl.index()], true),
                "duplicate profile for {}",
                p.sl
            );
        }
        SlTable { profiles }
    }

    /// All configured profiles.
    #[must_use]
    pub fn profiles(&self) -> &[SlProfile] {
        &self.profiles
    }

    /// Profiles of the guaranteed (QoS) service levels only.
    pub fn qos_profiles(&self) -> impl Iterator<Item = &SlProfile> {
        self.profiles.iter().filter(|p| p.class.is_guaranteed())
    }

    /// The profile of a given SL, if configured.
    #[must_use]
    pub fn profile(&self, sl: ServiceLevel) -> Option<&SlProfile> {
        self.profiles.iter().find(|p| p.sl == sl)
    }

    /// Classifies a QoS connection request into an SL: among the
    /// profiles whose distance is **at least as strict** as required and
    /// whose bandwidth stratum contains `mbps`, the loosest-distance one
    /// is chosen (using a stricter SL than needed wastes table entries).
    ///
    /// Falls back to ignoring the bandwidth stratum (any SL of a valid
    /// distance) before giving up, so out-of-range bandwidths still get
    /// the correct latency treatment.
    #[must_use]
    pub fn classify(&self, required: Distance, mbps: f64) -> Option<ServiceLevel> {
        let candidates = || {
            self.qos_profiles().filter_map(move |p| {
                let d = p.distance?;
                d.at_least_as_strict(required).then_some((p, d))
            })
        };
        candidates()
            .filter(|(p, _)| p.bandwidth_in_range(mbps))
            .max_by_key(|(_, d)| d.slots())
            .or_else(|| candidates().max_by_key(|(_, d)| d.slots()))
            .map(|(p, _)| p.sl)
    }
}

/// The `SLtoVLMappingTable` configured at the input of each link.
///
/// The default maps each SL to its own data VL (possible when the port
/// implements 16 VLs, as in the paper's evaluation). When fewer VLs are
/// available the administrator collapses several SLs onto one VL — the
/// mapped VL then carries the most restrictive requirement among them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlToVlMap {
    map: [VirtualLane; 16],
}

impl Default for SlToVlMap {
    fn default() -> Self {
        Self::identity()
    }
}

impl SlToVlMap {
    /// SLn → VLn for n in 0..=14; SL15 → VL15.
    #[must_use]
    pub fn identity() -> Self {
        let mut map = [VirtualLane::VL15; 16];
        for (i, slot) in map.iter_mut().enumerate().take(15) {
            *slot = VirtualLane::data(i as u8);
        }
        SlToVlMap { map }
    }

    /// A mapping collapsing all SLs onto `n_data_vls` data lanes
    /// round-robin by SL index (a simple model of a switch with fewer
    /// VLs; SL15 stays on VL15).
    #[must_use]
    pub fn collapsed(n_data_vls: u8) -> Self {
        assert!((1..=15).contains(&n_data_vls));
        let mut map = [VirtualLane::VL15; 16];
        for (i, slot) in map.iter_mut().enumerate().take(15) {
            *slot = VirtualLane::data((i as u8) % n_data_vls);
        }
        SlToVlMap { map }
    }

    /// A mapping for a port with fewer VLs that keeps the QoS/best-effort
    /// separation intact: the ten QoS SLs (0–9) are folded round-robin
    /// onto `n_qos_vls` lanes, and the three best-effort SLs keep three
    /// dedicated lanes right after them (so low-priority traffic can
    /// never ride a high-priority table entry).
    ///
    /// Uses `n_qos_vls + 3` data VLs in total; `n_qos_vls` must be
    /// 1..=12.
    #[must_use]
    pub fn collapsed_qos(n_qos_vls: u8) -> Self {
        assert!((1..=12).contains(&n_qos_vls), "need room for 3 BE lanes");
        let mut map = [VirtualLane::VL15; 16];
        for (i, slot) in map.iter_mut().enumerate().take(QOS_SLS) {
            *slot = VirtualLane::data((i as u8) % n_qos_vls);
        }
        map[SL_PBE as usize] = VirtualLane::data(n_qos_vls);
        map[SL_BE as usize] = VirtualLane::data(n_qos_vls + 1);
        map[SL_CH as usize] = VirtualLane::data(n_qos_vls + 2);
        // Remaining SLs (13, 14) share the last best-effort lane.
        map[13] = VirtualLane::data(n_qos_vls + 2);
        map[14] = VirtualLane::data(n_qos_vls + 2);
        SlToVlMap { map }
    }

    /// Overrides the VL for one SL.
    pub fn set(&mut self, sl: ServiceLevel, vl: VirtualLane) {
        assert!(sl.index() != 15, "SL15 mapping is fixed to VL15");
        self.map[sl.index()] = vl;
    }

    /// The VL packets of `sl` travel on.
    #[must_use]
    pub fn vl(&self, sl: ServiceLevel) -> VirtualLane {
        self.map[sl.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let t = SlTable::paper_table1();
        assert_eq!(t.qos_profiles().count(), QOS_SLS);
        assert_eq!(t.profiles().len(), QOS_SLS + 3);
        // Distances cover the whole permitted spectrum.
        for d in Distance::ALL {
            assert!(
                t.qos_profiles().any(|p| p.distance == Some(d)),
                "no SL with {d}"
            );
        }
        // The most used distances are subdivided by bandwidth.
        assert_eq!(
            t.qos_profiles()
                .filter(|p| p.distance == Some(Distance::D32))
                .count(),
            2
        );
        assert_eq!(
            t.qos_profiles()
                .filter(|p| p.distance == Some(Distance::D64))
                .count(),
            4
        );
    }

    #[test]
    fn classify_prefers_loosest_sufficient_distance() {
        let t = SlTable::paper_table1();
        // A 2 Mbps connection content with d=64 goes to SL6 (1-8 Mbps @ d64).
        assert_eq!(t.classify(Distance::D64, 2.0).unwrap().raw(), 6);
        // Same bandwidth but needing d=8 goes to SL2.
        assert_eq!(t.classify(Distance::D8, 2.0).unwrap().raw(), 2);
        // High-bandwidth loose-latency goes to the right stratum.
        assert_eq!(t.classify(Distance::D64, 100.0).unwrap().raw(), 9);
        assert_eq!(t.classify(Distance::D64, 20.0).unwrap().raw(), 7);
    }

    #[test]
    fn classify_falls_back_when_bandwidth_out_of_stratum() {
        let t = SlTable::paper_table1();
        // 100 Mbps at d=8: no d<=8 stratum contains it, but SL2 still
        // provides the latency guarantee.
        let sl = t.classify(Distance::D8, 100.0).unwrap();
        assert_eq!(sl.raw(), 2);
    }

    #[test]
    fn classify_respects_strictness() {
        let t = SlTable::paper_table1();
        for req in Distance::ALL {
            for mbps in [1.0, 4.0, 16.0, 64.0, 128.0] {
                if let Some(sl) = t.classify(req, mbps) {
                    let d = t.profile(sl).unwrap().distance.unwrap();
                    assert!(d.at_least_as_strict(req));
                }
            }
        }
    }

    #[test]
    fn identity_map() {
        let m = SlToVlMap::identity();
        for i in 0..15u8 {
            assert_eq!(m.vl(ServiceLevel::new(i).unwrap()).raw(), i);
        }
        assert!(m.vl(ServiceLevel::new(15).unwrap()).is_management());
    }

    #[test]
    fn collapsed_qos_keeps_be_separate() {
        let m = SlToVlMap::collapsed_qos(4);
        let qos_vls: std::collections::BTreeSet<u8> = (0..10)
            .map(|i| m.vl(ServiceLevel::new(i).unwrap()).raw())
            .collect();
        assert!(qos_vls.iter().all(|&v| v < 4));
        for be in [SL_PBE, SL_BE, SL_CH] {
            let v = m.vl(ServiceLevel::new(be).unwrap()).raw();
            assert!(!qos_vls.contains(&v), "SL{be} shares a QoS lane");
        }
        // Distinct BE lanes.
        assert_eq!(m.vl(ServiceLevel::new(SL_PBE).unwrap()).raw(), 4);
        assert_eq!(m.vl(ServiceLevel::new(SL_BE).unwrap()).raw(), 5);
        assert_eq!(m.vl(ServiceLevel::new(SL_CH).unwrap()).raw(), 6);
    }

    #[test]
    #[should_panic(expected = "room for 3 BE lanes")]
    fn collapsed_qos_needs_room() {
        let _ = SlToVlMap::collapsed_qos(13);
    }

    #[test]
    fn collapsed_map_wraps() {
        let m = SlToVlMap::collapsed(4);
        assert_eq!(m.vl(ServiceLevel::new(0).unwrap()).raw(), 0);
        assert_eq!(m.vl(ServiceLevel::new(5).unwrap()).raw(), 1);
        assert_eq!(m.vl(ServiceLevel::new(14).unwrap()).raw(), 2);
        assert!(m.vl(ServiceLevel::new(15).unwrap()).is_management());
    }

    #[test]
    #[should_panic(expected = "duplicate profile")]
    fn custom_rejects_duplicates() {
        let p = SlProfile {
            sl: ServiceLevel::new(1).unwrap(),
            class: TrafficClass::Bts,
            distance: Some(Distance::D2),
            bandwidth_mbps: (1.0, 2.0),
        };
        let _ = SlTable::custom(vec![p, p]);
    }
}
