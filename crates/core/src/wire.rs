//! Wire format of the `VLArbitrationTable` subnet-management attribute.
//!
//! IBA 1.0 (§14.2.5.9) exposes the arbitration tables to the subnet
//! manager as four 64-byte attribute blocks of 32 entries each —
//! blocks 1/2 are the low-priority table, blocks 3/4 the high-priority
//! table. Each entry is 16 bits: 4 reserved bits, a 4-bit VL and an
//! 8-bit weight. (`LimitOfHighPriority` travels separately in
//! `PortInfo`.) This module encodes/decodes [`VlArbConfig`] to those
//! blocks, so a real SM front-end could drive the library.

use crate::entry::VirtualLane;
use crate::vlarb::{ArbEntry, VlArbConfig};

/// Entries per attribute block.
pub const BLOCK_ENTRIES: usize = 32;
/// Bytes per attribute block.
pub const BLOCK_BYTES: usize = BLOCK_ENTRIES * 2;

/// Which block of the attribute is addressed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Block {
    /// Low-priority entries 0–31.
    LowLower,
    /// Low-priority entries 32–63.
    LowUpper,
    /// High-priority entries 0–31.
    HighLower,
    /// High-priority entries 32–63.
    HighUpper,
}

impl Block {
    /// All blocks in attribute order.
    pub const ALL: [Block; 4] = [
        Block::LowLower,
        Block::LowUpper,
        Block::HighLower,
        Block::HighUpper,
    ];

    /// The IBA `AttributeModifier` block number (1-based).
    #[must_use]
    pub fn attribute_modifier(self) -> u32 {
        match self {
            Block::LowLower => 1,
            Block::LowUpper => 2,
            Block::HighLower => 3,
            Block::HighUpper => 4,
        }
    }
}

/// Decoding failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// A block had the wrong length.
    BadLength(usize),
    /// An entry named VL15 with nonzero weight (VL15 never arbitrates).
    Vl15Entry(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadLength(n) => write!(f, "attribute block of {n} bytes (need 64)"),
            WireError::Vl15Entry(i) => write!(f, "entry {i} grants VL15"),
        }
    }
}

impl std::error::Error for WireError {}

fn encode_entries(entries: &[ArbEntry], block_offset: usize) -> [u8; BLOCK_BYTES] {
    let mut out = [0u8; BLOCK_BYTES];
    for i in 0..BLOCK_ENTRIES {
        if let Some(e) = entries.get(block_offset + i) {
            out[2 * i] = e.vl.raw() & 0x0F;
            out[2 * i + 1] = e.weight;
        }
    }
    out
}

fn decode_entries(bytes: &[u8]) -> Result<Vec<ArbEntry>, WireError> {
    if bytes.len() != BLOCK_BYTES {
        return Err(WireError::BadLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(BLOCK_ENTRIES);
    for i in 0..BLOCK_ENTRIES {
        let vl_raw = bytes[2 * i] & 0x0F;
        let weight = bytes[2 * i + 1];
        if vl_raw == 15 && weight != 0 {
            return Err(WireError::Vl15Entry(i));
        }
        let vl = if vl_raw == 15 {
            // Weight-0 placeholder rows decode as an unused VL0 slot.
            VirtualLane::data(0)
        } else {
            VirtualLane::data(vl_raw)
        };
        out.push(ArbEntry { vl, weight });
    }
    Ok(out)
}

/// Encodes one attribute block of a configuration.
#[must_use]
pub fn encode_block(config: &VlArbConfig, block: Block) -> [u8; BLOCK_BYTES] {
    match block {
        Block::LowLower => encode_entries(&config.low, 0),
        Block::LowUpper => encode_entries(&config.low, BLOCK_ENTRIES),
        Block::HighLower => encode_entries(&config.high, 0),
        Block::HighUpper => encode_entries(&config.high, BLOCK_ENTRIES),
    }
}

/// Encodes the whole table as its four blocks in attribute order.
#[must_use]
pub fn encode_all(config: &VlArbConfig) -> [[u8; BLOCK_BYTES]; 4] {
    [
        encode_block(config, Block::LowLower),
        encode_block(config, Block::LowUpper),
        encode_block(config, Block::HighLower),
        encode_block(config, Block::HighUpper),
    ]
}

/// Decodes four attribute blocks back into a configuration (the
/// `limit_of_high_priority` comes from `PortInfo` and is supplied by the
/// caller). Trailing all-zero entries are trimmed.
pub fn decode_all(
    blocks: &[[u8; BLOCK_BYTES]; 4],
    limit_of_high_priority: u8,
) -> Result<VlArbConfig, WireError> {
    let mut low = decode_entries(&blocks[0])?;
    low.extend(decode_entries(&blocks[1])?);
    let mut high = decode_entries(&blocks[2])?;
    high.extend(decode_entries(&blocks[3])?);
    let trim = |v: &mut Vec<ArbEntry>| {
        while v.last().is_some_and(|e| e.weight == 0 && e.vl.raw() == 0) {
            v.pop();
        }
    };
    trim(&mut low);
    trim(&mut high);
    Ok(VlArbConfig {
        high,
        low,
        limit_of_high_priority,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(v: u8, w: u8) -> ArbEntry {
        ArbEntry {
            vl: VirtualLane::data(v),
            weight: w,
        }
    }

    fn sample() -> VlArbConfig {
        VlArbConfig {
            high: (0..40)
                .map(|i| entry((i % 10) as u8, 100 + (i % 50) as u8))
                .collect(),
            low: vec![entry(10, 64), entry(11, 16), entry(12, 2)],
            limit_of_high_priority: 7,
        }
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let cfg = sample();
        let blocks = encode_all(&cfg);
        let back = decode_all(&blocks, cfg.limit_of_high_priority).unwrap();
        assert_eq!(back.high, cfg.high);
        assert_eq!(back.low, cfg.low);
        assert_eq!(back.limit_of_high_priority, 7);
    }

    #[test]
    fn block_layout_is_16bit_per_entry() {
        let cfg = sample();
        let b = encode_block(&cfg, Block::HighLower);
        // Entry 0: VL0 weight 100.
        assert_eq!(b[0], 0);
        assert_eq!(b[1], 100);
        // Entry 5: VL5 weight 105.
        assert_eq!(b[10], 5);
        assert_eq!(b[11], 105);
    }

    #[test]
    fn upper_block_carries_entries_32_plus() {
        let cfg = sample();
        let b = encode_block(&cfg, Block::HighUpper);
        // Entry 32: VL (32%10)=2, weight 100+(32%50)=132.
        assert_eq!(b[0], 2);
        assert_eq!(b[1], 132);
        // Entries beyond 40 are zero-padded.
        assert_eq!(&b[2 * 8..], &[0u8; BLOCK_BYTES - 16]);
    }

    #[test]
    fn attribute_modifiers_are_spec_ordered() {
        let mods: Vec<u32> = Block::ALL.iter().map(|b| b.attribute_modifier()).collect();
        assert_eq!(mods, vec![1, 2, 3, 4]);
    }

    #[test]
    fn bad_length_rejected() {
        assert_eq!(
            decode_entries(&[0u8; 10]).unwrap_err(),
            WireError::BadLength(10)
        );
    }

    #[test]
    fn vl15_with_weight_rejected() {
        let mut blocks = encode_all(&sample());
        blocks[2][0] = 15;
        blocks[2][1] = 9;
        assert_eq!(decode_all(&blocks, 0).unwrap_err(), WireError::Vl15Entry(0));
    }

    #[test]
    fn decoded_config_drives_the_engine() {
        // The decoded table must be directly usable.
        use crate::vlarb::VlArbEngine;
        let cfg = sample();
        let back = decode_all(&encode_all(&cfg), cfg.limit_of_high_priority).unwrap();
        let mut engine = VlArbEngine::new(back);
        let grant = engine.select(|_| Some(256)).unwrap();
        assert!(grant.vl.raw() < 15);
    }
}
