//! The runtime virtual-lane arbitration engine of an output port.
//!
//! Implements the `VLArbitrationTable` semantics of IBA 1.0 §7.6.9 as
//! summarised in §2.1 of the paper: two weighted-round-robin tables
//! (High and Low priority) of up to 64 `(VL, weight)` entries, weights
//! in 64-byte units debited per whole packet, and a
//! `LimitOfHighPriority` counter bounding how many high-priority bytes
//! may be sent before a waiting low-priority packet gets a slot. VL15 is
//! handled outside the tables and always wins.

use crate::entry::{TableSlot, VirtualLane, TABLE_ENTRIES};
use crate::weight::bytes_to_weight_units;

/// Bytes of high-priority credit granted per unit of
/// `LimitOfHighPriority` (IBA: units of 4096 bytes).
pub const LIMIT_UNIT_BYTES: u64 = 4096;

/// `LimitOfHighPriority` value meaning "unlimited" (low priority is
/// served only when no high-priority packet is ready).
pub const LIMIT_UNLIMITED: u8 = 255;

/// One arbitration table entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArbEntry {
    /// VL this entry grants transmission to.
    pub vl: VirtualLane,
    /// Weight in 64-byte units (entries with weight 0 are skipped).
    pub weight: u8,
}

/// Static configuration of a port's `VLArbitrationTable`.
#[derive(Clone, Debug)]
pub struct VlArbConfig {
    /// High-priority table (up to 64 entries).
    pub high: Vec<ArbEntry>,
    /// Low-priority table (up to 64 entries).
    pub low: Vec<ArbEntry>,
    /// `LimitOfHighPriority` (×4096 bytes; 255 = unlimited).
    pub limit_of_high_priority: u8,
}

impl VlArbConfig {
    /// Builds a config from the raw high-priority slots (as produced by
    /// [`crate::table::HighPriorityTable::slots`]) plus a low-priority
    /// table.
    #[must_use]
    pub fn from_slots(
        high: &[TableSlot; TABLE_ENTRIES],
        low: Vec<ArbEntry>,
        limit_of_high_priority: u8,
    ) -> Self {
        let high = high
            .iter()
            .map(|s| ArbEntry {
                // Table slots only ever carry data VLs (asserts if not).
                vl: VirtualLane::data(s.vl),
                weight: s.weight,
            })
            .collect();
        VlArbConfig {
            high,
            low,
            limit_of_high_priority,
        }
    }

    /// A config with an empty high-priority table and one low-priority
    /// entry per given VL/weight (the usual best-effort setup).
    #[must_use]
    pub fn low_only(low: Vec<ArbEntry>) -> Self {
        VlArbConfig {
            high: Vec::new(),
            low,
            limit_of_high_priority: 0,
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.high.len() <= TABLE_ENTRIES, "high table too long");
        assert!(self.low.len() <= TABLE_ENTRIES, "low table too long");
        for e in self.high.iter().chain(&self.low) {
            assert!(!e.vl.is_management(), "VL15 must not appear in the table");
        }
    }
}

/// Which table served a packet — reported to the caller for statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServedBy {
    /// The high-priority table.
    High,
    /// The low-priority table.
    Low,
}

/// A transmission grant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grant {
    /// The VL allowed to transmit its head packet.
    pub vl: VirtualLane,
    /// Size of the granted packet in bytes (echoed from the query).
    pub bytes: u64,
    /// Which priority table granted it.
    pub served_by: ServedBy,
    /// `true` when this grant drained the serving entry's weight credit
    /// (the round-robin pointer will move past it next time). Feeds the
    /// `arb_weight_exhausted_total` metric.
    pub exhausted: bool,
}

/// Per-table weighted-round-robin state.
#[derive(Clone, Debug)]
struct WrrState {
    /// Index of the active entry.
    index: usize,
    /// Remaining weight credit of the active entry, in 64-byte units.
    credit: u32,
}

/// The arbitration engine. Owns a [`VlArbConfig`] plus the round-robin
/// pointers and the high-priority limit counter.
///
/// Drive it with [`VlArbEngine::select`], passing a closure that reports
/// the size of the head packet ready for transmission on a VL (`None`
/// when the VL has no packet or no downstream credit). The engine never
/// fragments packets: weight is debited per whole packet, rounded up to
/// 64-byte units, and an entry with any credit left may send one more
/// whole packet (IBA's "rounded up as a whole packet" rule).
///
/// # Examples
///
/// ```
/// use iba_core::{ArbEntry, VirtualLane, VlArbConfig, VlArbEngine};
///
/// // VL0 gets 3x the weight of VL1.
/// let mut engine = VlArbEngine::new(VlArbConfig {
///     high: vec![
///         ArbEntry { vl: VirtualLane::data(0), weight: 3 },
///         ArbEntry { vl: VirtualLane::data(1), weight: 1 },
///     ],
///     low: vec![],
///     limit_of_high_priority: 255,
/// });
///
/// // Both lanes always have a 64-byte packet ready: the grant ratio
/// // follows the weights.
/// let mut counts = [0u32; 2];
/// for _ in 0..400 {
///     let grant = engine.select(|_| Some(64)).unwrap();
///     counts[grant.vl.index()] += 1;
/// }
/// assert_eq!(counts, [300, 100]);
/// ```
#[derive(Clone, Debug)]
pub struct VlArbEngine {
    config: VlArbConfig,
    high: WrrState,
    low: WrrState,
    /// Remaining high-priority bytes before a mandatory low opportunity.
    hl_budget: u64,
}

impl VlArbEngine {
    /// Creates an engine for the given configuration.
    #[must_use]
    pub fn new(config: VlArbConfig) -> Self {
        config.validate();
        let hl_budget = Self::limit_bytes(config.limit_of_high_priority);
        VlArbEngine {
            config,
            high: WrrState {
                index: 0,
                credit: 0,
            },
            low: WrrState {
                index: 0,
                credit: 0,
            },
            hl_budget,
        }
    }

    /// Replaces the configuration (e.g. after the subnet manager updates
    /// the tables); round-robin state restarts.
    pub fn reconfigure(&mut self, config: VlArbConfig) {
        *self = VlArbEngine::new(config);
    }

    /// Current configuration.
    #[must_use]
    pub fn config(&self) -> &VlArbConfig {
        &self.config
    }

    fn limit_bytes(limit: u8) -> u64 {
        if limit == LIMIT_UNLIMITED {
            u64::MAX
        } else {
            // A limit of 0 still permits one high packet burst of up to
            // one unit; model it as the unit value so that weight-0
            // behaviour matches "one low opportunity per high packet".
            u64::from(limit).max(1) * LIMIT_UNIT_BYTES
        }
    }

    /// Arbitrates one packet. `ready(vl)` must return the byte size of
    /// the head packet transmittable *now* on `vl` (flow-control credit
    /// included), or `None`.
    ///
    /// Returns the granted VL and which table served it, or `None` when
    /// no table entry can currently transmit.
    pub fn select(&mut self, mut ready: impl FnMut(VirtualLane) -> Option<u64>) -> Option<Grant> {
        let high_ready = Self::wrr_peek(&self.config.high, &self.high, &mut ready);
        let low_ready = Self::wrr_peek(&self.config.low, &self.low, &mut ready);

        match (high_ready, low_ready) {
            (Some((idx, vl, bytes)), _) if self.hl_budget > 0 || low_ready.is_none() => {
                let exhausted = Self::wrr_commit(&self.config.high, &mut self.high, idx, bytes);
                self.hl_budget = self.hl_budget.saturating_sub(bytes);
                Some(Grant {
                    vl,
                    bytes,
                    served_by: ServedBy::High,
                    exhausted,
                })
            }
            (_, Some((idx, vl, bytes))) => {
                let exhausted = Self::wrr_commit(&self.config.low, &mut self.low, idx, bytes);
                // Serving a low packet resets the high-priority budget.
                self.hl_budget = Self::limit_bytes(self.config.limit_of_high_priority);
                Some(Grant {
                    vl,
                    bytes,
                    served_by: ServedBy::Low,
                    exhausted,
                })
            }
            _ => None,
        }
    }

    /// Finds the entry the WRR would serve next: the active entry if it
    /// still has credit and a ready packet, else the nearest subsequent
    /// entry (wrapping) with nonzero weight and a ready packet.
    fn wrr_peek(
        table: &[ArbEntry],
        state: &WrrState,
        ready: &mut impl FnMut(VirtualLane) -> Option<u64>,
    ) -> Option<(usize, VirtualLane, u64)> {
        if table.is_empty() {
            return None;
        }
        if state.credit > 0 {
            if let Some(e) = table.get(state.index) {
                if e.weight > 0 {
                    if let Some(bytes) = ready(e.vl) {
                        return Some((state.index, e.vl, bytes));
                    }
                }
            }
        }
        // Scan the whole table once, starting after the active entry.
        for step in 1..=table.len() {
            let idx = (state.index + step) % table.len();
            let e = table[idx];
            if e.weight == 0 {
                continue;
            }
            if let Some(bytes) = ready(e.vl) {
                return Some((idx, e.vl, bytes));
            }
        }
        None
    }

    /// Debits the granted packet against the entry's credit. Returns
    /// `true` when the debit drained the credit to zero (the entry's
    /// turn is over).
    fn wrr_commit(table: &[ArbEntry], state: &mut WrrState, idx: usize, bytes: u64) -> bool {
        if idx != state.index || state.credit == 0 {
            state.index = idx;
            state.credit = u32::from(table[idx].weight);
        }
        let units = bytes_to_weight_units(bytes) as u32;
        state.credit = state.credit.saturating_sub(units);
        state.credit == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vl(i: u8) -> VirtualLane {
        VirtualLane::data(i)
    }

    fn entry(v: u8, w: u8) -> ArbEntry {
        ArbEntry {
            vl: vl(v),
            weight: w,
        }
    }

    /// Runs `n` arbitration rounds with every listed VL always ready
    /// with `pkt`-byte packets; returns how many packets each VL got.
    fn run(engine: &mut VlArbEngine, always_ready: &[u8], pkt: u64, n: usize) -> [usize; 16] {
        let mut counts = [0usize; 16];
        for _ in 0..n {
            let grant = engine.select(|v| always_ready.contains(&v.raw()).then_some(pkt));
            match grant {
                Some(g) => counts[g.vl.index()] += 1,
                None => break,
            }
        }
        counts
    }

    #[test]
    fn empty_tables_grant_nothing() {
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![],
            low: vec![],
            limit_of_high_priority: 10,
        });
        assert!(e.select(|_| Some(64)).is_none());
    }

    #[test]
    fn weights_shape_bandwidth_share() {
        // VL0 weight 3, VL1 weight 1, 64-byte packets: 3:1 split.
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 3), entry(1, 1)],
            low: vec![],
            limit_of_high_priority: LIMIT_UNLIMITED,
        });
        let counts = run(&mut e, &[0, 1], 64, 400);
        assert_eq!(counts[0], 300);
        assert_eq!(counts[1], 100);
    }

    #[test]
    fn zero_weight_entries_are_skipped() {
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 0), entry(1, 1)],
            low: vec![],
            limit_of_high_priority: LIMIT_UNLIMITED,
        });
        let counts = run(&mut e, &[0, 1], 64, 10);
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 10);
    }

    #[test]
    fn not_ready_vls_lose_their_turn() {
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 1), entry(1, 1)],
            low: vec![],
            limit_of_high_priority: LIMIT_UNLIMITED,
        });
        // Only VL1 ever has packets.
        let counts = run(&mut e, &[1], 64, 10);
        assert_eq!(counts[1], 10);
    }

    #[test]
    fn whole_packet_rounding_overdraws_once() {
        // Weight 1 (64 bytes) but 256-byte packets: each turn sends one
        // whole packet, then moves on — the share stays 1:1 with equal
        // weights regardless of overdraw.
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 1), entry(1, 1)],
            low: vec![],
            limit_of_high_priority: LIMIT_UNLIMITED,
        });
        let counts = run(&mut e, &[0, 1], 256, 100);
        assert_eq!(counts[0], 50);
        assert_eq!(counts[1], 50);
    }

    #[test]
    fn high_always_beats_low_when_unlimited() {
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 1)],
            low: vec![entry(1, 255)],
            limit_of_high_priority: LIMIT_UNLIMITED,
        });
        let counts = run(&mut e, &[0, 1], 64, 100);
        assert_eq!(counts[0], 100);
        assert_eq!(counts[1], 0);
    }

    #[test]
    fn low_served_when_high_idle() {
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 1)],
            low: vec![entry(1, 1)],
            limit_of_high_priority: LIMIT_UNLIMITED,
        });
        let counts = run(&mut e, &[1], 64, 10);
        assert_eq!(counts[1], 10);
    }

    #[test]
    fn limit_forces_low_opportunities() {
        // Limit 1 => 4096 high bytes per low opportunity. With 4096-byte
        // packets: alternating high/low.
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 255)],
            low: vec![entry(1, 255)],
            limit_of_high_priority: 1,
        });
        let counts = run(&mut e, &[0, 1], 4096, 100);
        assert_eq!(counts[0], 50);
        assert_eq!(counts[1], 50);
    }

    #[test]
    fn limit_ratio_with_small_packets() {
        // Limit 1 (4096 bytes) with 64-byte packets: 64 high per 1 low.
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 255)],
            low: vec![entry(1, 255)],
            limit_of_high_priority: 1,
        });
        let counts = run(&mut e, &[0, 1], 64, 650);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 64.0).abs() < 2.0, "ratio {ratio}");
    }

    #[test]
    fn grants_flag_weight_exhaustion() {
        // Weight 2 (128 bytes), 64-byte packets: every second grant on a
        // lane drains its credit.
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 2), entry(1, 2)],
            low: vec![],
            limit_of_high_priority: LIMIT_UNLIMITED,
        });
        let mut flags = Vec::new();
        for _ in 0..8 {
            let g = e.select(|_| Some(64)).unwrap();
            flags.push((g.vl.raw(), g.exhausted));
        }
        // The fresh engine starts with zero credit at index 0, so the
        // first scan begins after it and serves VL1 first.
        assert_eq!(
            flags,
            vec![
                (1, false),
                (1, true),
                (0, false),
                (0, true),
                (1, false),
                (1, true),
                (0, false),
                (0, true),
            ]
        );
    }

    #[test]
    fn oversized_packet_exhausts_immediately() {
        // Weight 1 (64 bytes) but a 256-byte packet: the whole-packet
        // overdraw drains the credit in one grant.
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 1)],
            low: vec![],
            limit_of_high_priority: LIMIT_UNLIMITED,
        });
        let g = e.select(|_| Some(256)).unwrap();
        assert!(g.exhausted);
    }

    #[test]
    fn reconfigure_resets_state() {
        let mut e = VlArbEngine::new(VlArbConfig {
            high: vec![entry(0, 1)],
            low: vec![],
            limit_of_high_priority: 5,
        });
        let _ = e.select(|_| Some(64));
        e.reconfigure(VlArbConfig {
            high: vec![entry(2, 1)],
            low: vec![],
            limit_of_high_priority: 5,
        });
        let g = e.select(|_| Some(64)).unwrap();
        assert_eq!(g.vl, vl(2));
    }

    #[test]
    #[should_panic(expected = "VL15 must not appear")]
    fn vl15_rejected() {
        let _ = VlArbEngine::new(VlArbConfig {
            high: vec![ArbEntry {
                vl: VirtualLane::VL15,
                weight: 1,
            }],
            low: vec![],
            limit_of_high_priority: 0,
        });
    }

    #[test]
    fn wrr_is_fair_across_many_vls() {
        let high: Vec<ArbEntry> = (0..8).map(|i| entry(i, 2)).collect();
        let mut e = VlArbEngine::new(VlArbConfig {
            high,
            low: vec![],
            limit_of_high_priority: LIMIT_UNLIMITED,
        });
        let ready: Vec<u8> = (0..8).collect();
        let counts = run(&mut e, &ready, 64, 800);
        for (i, &c) in counts.iter().enumerate().take(8) {
            assert_eq!(c, 100, "VL{i} got {c}");
        }
    }
}
