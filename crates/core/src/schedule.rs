//! Compiled arbitration schedules: the `VLArbitrationTable` turned
//! into a flat grant stream that the hot path can walk without
//! re-interpreting table entries.
//!
//! [`VlArbEngine`](crate::VlArbEngine) re-walks the configured table on
//! every grant: it indexes `Vec<ArbEntry>`, skips weight-0 entries one
//! by one and probes readiness through a closure. Tables only change at
//! admission, teardown, repair and fault-corruption events — thousands
//! of grants apart — so this module *compiles* a [`VlArbConfig`] once
//! per change into a [`GrantStream`]: a dense `(vl, burst_bytes)` array
//! (weight-0 entries removed, weights pre-scaled to byte bursts) plus a
//! per-VL bitmask of entry positions. [`CompiledVlArb`] then arbitrates
//! by bit arithmetic alone: the caller passes a 16-bit ready mask and a
//! per-VL head-packet size array, and the next entry is found with one
//! mask intersection and `trailing_zeros` — no table walk, no closure
//! calls, no branches over skipped entries.
//!
//! The compiled engine is **observationally identical** to the
//! interpreted one: for every configuration and every sequence of ready
//! sets, [`CompiledVlArb::select`] returns exactly the grants
//! [`VlArbEngine::select`](crate::VlArbEngine::select) would (the
//! differential tests below drive both over seeded random traffic).
//! The only state the interpreted engine carries that a dense array
//! cannot express directly — a round-robin pointer parked on a
//! weight-0 entry, which happens solely in the freshly-reset state — is
//! folded into the compiled initial cursor (see
//! [`GrantStream::compile`]).
//!
//! The per-VL service *fractions* of a compiled stream are exposed via
//! [`GrantStream::service_units`]: under saturation a WRR table serves
//! VL `i` a `w_i / Σw` share of bytes, with bounded short-term
//! deviation (the NoC-WRR service-curve analysis, arXiv 2108.09534) —
//! the analytical cross-check test in this module asserts the compiled
//! stream reproduces that closed form.

use crate::entry::{VirtualLane, TABLE_ENTRIES};
use crate::vlarb::{ArbEntry, Grant, ServedBy, VlArbConfig, LIMIT_UNIT_BYTES, LIMIT_UNLIMITED};
use crate::weight::{bytes_to_weight_units, WEIGHT_UNIT_BYTES};
use std::sync::Arc;

/// One weighted-round-robin table compiled to a flat grant stream.
///
/// The stream keeps only entries with nonzero weight, in table order;
/// entry `i` of the stream grants `burst` bytes (= weight × 64) to its
/// VL per round-robin turn. `positions[vl]` is the bitmask of stream
/// indices belonging to `vl`, so "first entry after the cursor whose VL
/// is ready" is a mask-and plus `trailing_zeros`.
#[derive(Clone, Debug)]
pub struct GrantStream {
    /// VL of each stream entry (dense, weight > 0 only).
    vls: [u8; TABLE_ENTRIES],
    /// Per-turn credit of each stream entry, in 64-byte weight units.
    credits: [u32; TABLE_ENTRIES],
    /// Number of live stream entries.
    len: u32,
    /// Bitmask of stream indices per VL (`positions[3]` has bit `i` set
    /// iff stream entry `i` grants to VL3).
    positions: [u64; 16],
    /// VLs with at least one live entry.
    vl_mask: u16,
    /// Cursor value a freshly-reset walk starts from (encodes the
    /// interpreted engine's "pointer at raw index 0" initial state).
    initial_cursor: u32,
    /// Total weight units per VL across the stream (analytical model).
    service_units: [u64; 16],
}

impl GrantStream {
    /// Compiles one table into its grant stream.
    ///
    /// The interpreted engine starts with its round-robin pointer on
    /// *raw* index 0 with zero credit, so its first scan begins at raw
    /// index 1 and ends back on raw index 0. When raw entry 0 is live
    /// the same walk starts from stream cursor 0; when raw entry 0 has
    /// weight 0 (not part of the stream) the first scan must cover the
    /// stream in order `0, 1, …`, which is a walk starting *after* the
    /// last stream entry — hence `initial_cursor = len - 1`.
    #[must_use]
    pub fn compile(table: &[ArbEntry]) -> Self {
        let mut s = GrantStream {
            vls: [0; TABLE_ENTRIES],
            credits: [0; TABLE_ENTRIES],
            len: 0,
            positions: [0; 16],
            vl_mask: 0,
            initial_cursor: 0,
            service_units: [0; 16],
        };
        for e in table {
            if e.weight == 0 {
                continue;
            }
            let i = s.len as usize;
            let vl = e.vl.raw();
            s.vls[i] = vl;
            s.credits[i] = u32::from(e.weight);
            s.positions[vl as usize] |= 1 << i;
            s.vl_mask |= 1 << vl;
            s.service_units[vl as usize] += u64::from(e.weight);
            s.len += 1;
        }
        if table.first().is_some_and(|e| e.weight == 0) {
            s.initial_cursor = s.len.saturating_sub(1);
        }
        s
    }

    /// Number of live entries in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the stream has no live entries (nothing to grant).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// VLs with at least one live entry, as a bitmask (bit `v` = VL v).
    #[must_use]
    pub fn vl_mask(&self) -> u16 {
        self.vl_mask
    }

    /// The flat `(vl, burst_bytes)` stream: each live entry's VL and
    /// the bytes it may burst per round-robin turn (weight × 64).
    pub fn entries(&self) -> impl Iterator<Item = (VirtualLane, u64)> + '_ {
        (0..self.len as usize).map(|i| {
            (
                VirtualLane::data(self.vls[i]),
                u64::from(self.credits[i]) * WEIGHT_UNIT_BYTES,
            )
        })
    }

    /// Total weight units the stream grants `vl` per full round — the
    /// numerator of the closed-form WRR service fraction `w_i / Σw`.
    #[must_use]
    pub fn service_units(&self, vl: VirtualLane) -> u64 {
        self.service_units[vl.index()]
    }

    /// Sum of all weight units in the stream (the denominator of the
    /// service fraction; 0 for an empty stream).
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.service_units.iter().sum()
    }

    /// The fraction of saturated service owed to `vl` by the closed
    /// form `w_i / Σw` (0.0 for an empty stream).
    #[must_use]
    pub fn service_fraction(&self, vl: VirtualLane) -> f64 {
        let total = self.total_units();
        if total == 0 {
            return 0.0;
        }
        self.service_units[vl.index()] as f64 / total as f64
    }

    /// The entry the walk would serve next, or `None` when no ready VL
    /// has a live entry. Mirrors the interpreted peek: the cursor entry
    /// itself while it has credit and a ready head, else the nearest
    /// subsequent entry (wrapping, the cursor included last) whose VL
    /// is ready.
    #[inline]
    fn peek(&self, cursor: u32, credit: u32, ready_mask: u16) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        if credit > 0 && ready_mask & (1 << self.vls[cursor as usize]) != 0 {
            return Some(cursor);
        }
        let mut avail: u64 = 0;
        let mut m = ready_mask & self.vl_mask;
        while m != 0 {
            avail |= self.positions[m.trailing_zeros() as usize];
            m &= m - 1;
        }
        if avail == 0 {
            return None;
        }
        let after = avail & u64::MAX.checked_shl(cursor + 1).unwrap_or(0);
        let pick = if after != 0 { after } else { avail };
        Some(pick.trailing_zeros())
    }

    /// Debits a granted packet against the stream entry, moving the
    /// cursor and reloading credit exactly as the interpreted
    /// `wrr_commit` does. Returns `true` when the grant drained the
    /// entry's credit.
    #[inline]
    fn commit(&self, cursor: &mut u32, credit: &mut u32, idx: u32, bytes: u64) -> bool {
        if idx != *cursor || *credit == 0 {
            *cursor = idx;
            *credit = self.credits[idx as usize];
        }
        let units = bytes_to_weight_units(bytes) as u32;
        *credit = credit.saturating_sub(units);
        *credit == 0
    }
}

/// The compiled arbitration engine: both tables of a [`VlArbConfig`]
/// as [`GrantStream`]s plus the walk state and the pre-computed
/// `LimitOfHighPriority` byte budget.
///
/// Drop-in replacement for [`VlArbEngine`](crate::VlArbEngine) on the
/// hot path — same grants, different query shape: readiness arrives as
/// a bitmask plus a per-VL byte array instead of a closure.
///
/// # Examples
///
/// ```
/// use iba_core::{ArbEntry, CompiledVlArb, VirtualLane, VlArbConfig};
///
/// let mut arb = CompiledVlArb::new(VlArbConfig {
///     high: vec![
///         ArbEntry { vl: VirtualLane::data(0), weight: 3 },
///         ArbEntry { vl: VirtualLane::data(1), weight: 1 },
///     ],
///     low: vec![],
///     limit_of_high_priority: 255,
/// });
///
/// // Both lanes always ready with 64-byte packets: 3:1 share.
/// let mut counts = [0u32; 2];
/// let bytes = [64u64; 16];
/// for _ in 0..400 {
///     let grant = arb.select(0b11, &bytes).unwrap();
///     counts[grant.vl.index()] += 1;
/// }
/// assert_eq!(counts, [300, 100]);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledVlArb {
    /// The immutable compiled schedule, shared by reference: cloning an
    /// engine — how a fabric stamps one prototype onto every port —
    /// copies four cursors and bumps a refcount instead of duplicating
    /// a kilobyte of grant arrays, and all ports compiled from the same
    /// table walk one cache-resident copy of the streams.
    shared: Arc<CompiledSchedule>,
    high_cursor: u32,
    high_credit: u32,
    low_cursor: u32,
    low_credit: u32,
    /// Remaining high-priority bytes before a mandatory low turn.
    hl_budget: u64,
}

/// What compilation produces: both grant streams, the source config and
/// the `LimitOfHighPriority` byte budget. Immutable once built —
/// reconfiguration compiles a fresh schedule, it never edits one in
/// place (other ports may still be walking it).
#[derive(Debug)]
struct CompiledSchedule {
    config: VlArbConfig,
    high: GrantStream,
    low: GrantStream,
    /// Reset value of `hl_budget` (`LimitOfHighPriority` in bytes).
    limit_bytes: u64,
}

impl CompiledVlArb {
    /// Compiles `config` into a ready-to-run engine.
    #[must_use]
    pub fn new(config: VlArbConfig) -> Self {
        config.validate();
        let high = GrantStream::compile(&config.high);
        let low = GrantStream::compile(&config.low);
        let limit_bytes = Self::limit_bytes(config.limit_of_high_priority);
        let shared = Arc::new(CompiledSchedule {
            config,
            high,
            low,
            limit_bytes,
        });
        CompiledVlArb {
            high_cursor: shared.high.initial_cursor,
            high_credit: 0,
            low_cursor: shared.low.initial_cursor,
            low_credit: 0,
            hl_budget: shared.limit_bytes,
            shared,
        }
    }

    /// Recompiles for a new configuration (subnet-manager table
    /// download, fault corruption): the previous compiled schedule is
    /// invalidated and the walk restarts, exactly like
    /// [`VlArbEngine::reconfigure`](crate::VlArbEngine::reconfigure).
    pub fn reconfigure(&mut self, config: VlArbConfig) {
        *self = CompiledVlArb::new(config);
    }

    /// Rewinds the walk to the freshly-compiled state without
    /// recompiling (benchmarks, repeated deterministic runs).
    pub fn reset(&mut self) {
        self.high_cursor = self.shared.high.initial_cursor;
        self.high_credit = 0;
        self.low_cursor = self.shared.low.initial_cursor;
        self.low_credit = 0;
        self.hl_budget = self.shared.limit_bytes;
    }

    /// The configuration this engine was compiled from.
    #[must_use]
    pub fn config(&self) -> &VlArbConfig {
        &self.shared.config
    }

    /// The compiled high-priority grant stream.
    #[must_use]
    pub fn high_stream(&self) -> &GrantStream {
        &self.shared.high
    }

    /// The compiled low-priority grant stream.
    #[must_use]
    pub fn low_stream(&self) -> &GrantStream {
        &self.shared.low
    }

    fn limit_bytes(limit: u8) -> u64 {
        if limit == LIMIT_UNLIMITED {
            u64::MAX
        } else {
            u64::from(limit).max(1) * LIMIT_UNIT_BYTES
        }
    }

    /// Arbitrates one packet. Bit `v` of `ready_mask` must be set iff
    /// VL `v` has a head packet transmittable *now* (flow-control
    /// credit included); `bytes[v]` is that packet's size and is read
    /// only for set bits. Returns the same grant the interpreted
    /// engine would, or `None` when no table entry can transmit.
    #[inline]
    pub fn select(&mut self, ready_mask: u16, bytes: &[u64; 16]) -> Option<Grant> {
        let s = &*self.shared;
        // The low stream is consulted lazily: with budget left (the
        // common steady state — `LimitOfHighPriority = 255` never
        // drains it) a ready high entry wins outright.
        if let Some(idx) = s.high.peek(self.high_cursor, self.high_credit, ready_mask) {
            if self.hl_budget > 0
                || s.low
                    .peek(self.low_cursor, self.low_credit, ready_mask)
                    .is_none()
            {
                let vl = s.high.vls[idx as usize];
                let granted = bytes[vl as usize];
                let exhausted =
                    s.high
                        .commit(&mut self.high_cursor, &mut self.high_credit, idx, granted);
                self.hl_budget = self.hl_budget.saturating_sub(granted);
                return Some(Grant {
                    vl: VirtualLane::data(vl),
                    bytes: granted,
                    served_by: ServedBy::High,
                    exhausted,
                });
            }
        }
        let idx = s.low.peek(self.low_cursor, self.low_credit, ready_mask)?;
        let vl = s.low.vls[idx as usize];
        let granted = bytes[vl as usize];
        let exhausted = s
            .low
            .commit(&mut self.low_cursor, &mut self.low_credit, idx, granted);
        // Serving a low packet resets the high-priority budget.
        self.hl_budget = s.limit_bytes;
        Some(Grant {
            vl: VirtualLane::data(vl),
            bytes: granted,
            served_by: ServedBy::Low,
            exhausted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::VlArbEngine;

    fn entry(v: u8, w: u8) -> ArbEntry {
        ArbEntry {
            vl: VirtualLane::data(v),
            weight: w,
        }
    }

    /// A seeded random configuration: up to 8 entries per table over
    /// VL0..=5 with weights 0..=4 (weight 0 exercises skipping), plus
    /// a random limit including the 0 and 255 edge cases.
    fn random_config(rng: &mut SplitMix64) -> VlArbConfig {
        let table = |rng: &mut SplitMix64| {
            let len = (rng.next_u64() % 9) as usize;
            (0..len)
                .map(|_| entry((rng.next_u64() % 6) as u8, (rng.next_u64() % 5) as u8))
                .collect::<Vec<_>>()
        };
        let high = table(rng);
        let low = table(rng);
        let limit = match rng.next_u64() % 4 {
            0 => 0,
            1 => LIMIT_UNLIMITED,
            _ => (rng.next_u64() % 8) as u8,
        };
        VlArbConfig {
            high,
            low,
            limit_of_high_priority: limit,
        }
    }

    #[test]
    fn compiled_matches_interpreted_grant_for_grant() {
        // The core equivalence claim: over seeded random configs and
        // random ready/byte sequences, both engines emit identical
        // grant streams (VL, bytes, table, exhaustion flag).
        let mut rng = SplitMix64::seed_from_u64(0x5EED_5C4E_D01E);
        for case in 0..200 {
            let config = random_config(&mut rng);
            let mut interpreted = VlArbEngine::new(config.clone());
            let mut compiled = CompiledVlArb::new(config);
            for step in 0..500 {
                let ready_mask = (rng.next_u64() % (1 << 6)) as u16;
                let mut bytes = [0u64; 16];
                for (v, b) in bytes.iter_mut().enumerate() {
                    if ready_mask & (1 << v) != 0 {
                        *b = 64 * (1 + rng.next_u64() % 64);
                    }
                }
                let a = interpreted
                    .select(|vl| (ready_mask & (1 << vl.index()) != 0).then(|| bytes[vl.index()]));
                let b = compiled.select(ready_mask, &bytes);
                assert_eq!(a, b, "case {case} step {step} diverged");
            }
        }
    }

    #[test]
    fn reconfigure_matches_interpreted_restart() {
        // Reconfiguring mid-stream restarts both engines identically.
        let mut rng = SplitMix64::seed_from_u64(0xC0FF_EE00);
        let first = random_config(&mut rng);
        let second = random_config(&mut rng);
        let mut interpreted = VlArbEngine::new(first.clone());
        let mut compiled = CompiledVlArb::new(first);
        let bytes = [64u64; 16];
        for _ in 0..10 {
            let a = interpreted.select(|vl| Some(bytes[vl.index()]));
            assert_eq!(a, compiled.select(0xFFFF, &bytes));
        }
        interpreted.reconfigure(second.clone());
        compiled.reconfigure(second);
        for _ in 0..50 {
            let a = interpreted.select(|vl| Some(bytes[vl.index()]));
            assert_eq!(a, compiled.select(0xFFFF, &bytes));
        }
    }

    #[test]
    fn reset_rewinds_to_the_freshly_compiled_state() {
        let config = VlArbConfig {
            high: vec![entry(0, 2), entry(1, 2)],
            low: vec![],
            limit_of_high_priority: LIMIT_UNLIMITED,
        };
        let mut arb = CompiledVlArb::new(config.clone());
        let bytes = [64u64; 16];
        let first: Vec<_> = (0..6).map(|_| arb.select(0b11, &bytes)).collect();
        arb.reset();
        let again: Vec<_> = (0..6).map(|_| arb.select(0b11, &bytes)).collect();
        assert_eq!(first, again);
        // ... and equals a freshly compiled engine.
        let mut fresh = CompiledVlArb::new(config);
        let fresh_run: Vec<_> = (0..6).map(|_| fresh.select(0b11, &bytes)).collect();
        assert_eq!(first, fresh_run);
    }

    #[test]
    fn grant_stream_drops_zero_weight_entries_and_scales_bursts() {
        let stream = GrantStream::compile(&[entry(0, 3), entry(2, 0), entry(1, 1), entry(0, 2)]);
        let flat: Vec<_> = stream.entries().collect();
        assert_eq!(
            flat,
            vec![
                (VirtualLane::data(0), 192),
                (VirtualLane::data(1), 64),
                (VirtualLane::data(0), 128),
            ]
        );
        assert_eq!(stream.len(), 3);
        assert_eq!(stream.vl_mask(), 0b011);
        assert_eq!(stream.service_units(VirtualLane::data(0)), 5);
        assert_eq!(stream.service_units(VirtualLane::data(1)), 1);
        assert_eq!(stream.total_units(), 6);
    }

    #[test]
    fn empty_and_all_zero_tables_compile_to_empty_streams() {
        assert!(GrantStream::compile(&[]).is_empty());
        let zeros = GrantStream::compile(&[entry(0, 0), entry(1, 0)]);
        assert!(zeros.is_empty());
        let mut arb = CompiledVlArb::new(VlArbConfig {
            high: vec![entry(0, 0)],
            low: vec![],
            limit_of_high_priority: 10,
        });
        assert!(arb.select(0xFFFF, &[64; 16]).is_none());
    }

    #[test]
    fn service_fractions_match_wrr_closed_form() {
        // The analytical cross-check (arXiv 2108.09534): a saturated
        // WRR stream serves VL i exactly w_i/Σw of the bytes over any
        // whole number of rounds, and within one entry burst of it at
        // any cut. Drive the compiled engine with every VL saturated
        // at 64-byte packets (one weight unit per packet, no overdraw)
        // and compare measured shares to the closed form.
        let mut rng = SplitMix64::seed_from_u64(0x2108_0953_4000);
        for _ in 0..50 {
            let mut config = random_config(&mut rng);
            // Saturation analysis is per-table; use high-only streams.
            config.low.clear();
            config.limit_of_high_priority = LIMIT_UNLIMITED;
            let mut arb = CompiledVlArb::new(config);
            let stream = arb.high_stream().clone();
            let total = stream.total_units();
            if total == 0 {
                assert!(arb.select(0xFFFF, &[64; 16]).is_none());
                continue;
            }
            // 200 whole rounds: every entry reloads exactly 200 times.
            let rounds = 200;
            let mut served = [0u64; 16];
            let bytes = [64u64; 16];
            for _ in 0..rounds * total {
                let g = arb.select(0xFFFF, &bytes).expect("saturated stream grants");
                served[g.vl.index()] += g.bytes;
            }
            let total_bytes: u64 = served.iter().sum();
            assert_eq!(total_bytes, rounds * total * 64);
            for (v, &lane_bytes) in served.iter().enumerate() {
                let vl = VirtualLane::new(v as u8).unwrap();
                let measured = lane_bytes as f64 / total_bytes as f64;
                let predicted = stream.service_fraction(vl);
                assert!(
                    (measured - predicted).abs() < 1e-12,
                    "VL{v}: measured {measured} != closed form {predicted}"
                );
            }
        }
    }

    #[test]
    fn initial_cursor_covers_the_weight_zero_head_case() {
        // Raw entry 0 has weight 0: the interpreted engine's first scan
        // serves the stream in order 0,1,… — the compiled initial
        // cursor must reproduce that, not start after stream entry 0.
        let config = VlArbConfig {
            high: vec![entry(3, 0), entry(1, 1), entry(2, 1)],
            low: vec![],
            limit_of_high_priority: LIMIT_UNLIMITED,
        };
        let mut interpreted = VlArbEngine::new(config.clone());
        let mut compiled = CompiledVlArb::new(config);
        let bytes = [64u64; 16];
        for _ in 0..8 {
            let a = interpreted.select(|vl| Some(bytes[vl.index()]));
            assert_eq!(a, compiled.select(0xFFFF, &bytes));
        }
    }
}
