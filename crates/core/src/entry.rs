//! Basic table-entry types: virtual lanes and table geometry.

use std::fmt;

/// Number of entries in each priority table of the `VLArbitrationTable`.
///
/// IBA allows *up to* 64 entries; the paper's algorithm is formulated for
/// the full 64-entry table (64 = 2^6, which is what makes the symmetric
/// arithmetic progressions work out to power-of-two distances).
pub const TABLE_ENTRIES: usize = 64;

/// log2 of [`TABLE_ENTRIES`].
pub const TABLE_ENTRIES_LOG2: u32 = 6;

/// Number of data virtual lanes a port can implement (VL0..VL14).
///
/// VL15 exists too but is reserved for subnet management and never appears
/// in an arbitration table.
pub const MAX_DATA_VLS: usize = 15;

/// A virtual lane identifier (0..=15).
///
/// VL15 is the management lane: it always has absolute priority over data
/// lanes and must never appear in an arbitration table entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VirtualLane(u8);

impl VirtualLane {
    /// The subnet-management lane.
    pub const VL15: VirtualLane = VirtualLane(15);

    /// Creates a data VL. Panics if `id > 14` (use [`VirtualLane::VL15`]
    /// for the management lane).
    #[must_use]
    pub fn data(id: u8) -> Self {
        assert!(
            (id as usize) < MAX_DATA_VLS,
            "data VL id must be 0..=14, got {id}"
        );
        VirtualLane(id)
    }

    /// Creates any VL (0..=15) without the data-lane restriction.
    ///
    /// Returns `None` when `id > 15`.
    #[must_use]
    pub fn new(id: u8) -> Option<Self> {
        (id <= 15).then_some(VirtualLane(id))
    }

    /// Raw lane number.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw lane number as `u8`.
    #[must_use]
    pub fn raw(self) -> u8 {
        self.0
    }

    /// Whether this is the subnet-management lane VL15.
    #[must_use]
    pub fn is_management(self) -> bool {
        self.0 == 15
    }

    /// Iterator over all data lanes `VL0..=VL14`.
    pub fn all_data() -> impl Iterator<Item = VirtualLane> {
        (0..MAX_DATA_VLS as u8).map(VirtualLane)
    }
}

impl fmt::Display for VirtualLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VL{}", self.0)
    }
}

/// One slot of a priority table: which VL it serves and with how much
/// weight (units of 64 bytes, 0 = unused entry).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TableSlot {
    /// Virtual lane served by this slot (meaningless while `weight == 0`).
    pub vl: u8,
    /// Weight in 64-byte units; 0 marks a free slot.
    pub weight: u8,
}

impl TableSlot {
    /// A free slot.
    pub const FREE: TableSlot = TableSlot { vl: 0, weight: 0 };

    /// Whether the slot is free (`weight == 0`), per the paper's
    /// definition "an entry t_i is free if and only if w_i = 0".
    #[must_use]
    pub fn is_free(self) -> bool {
        self.weight == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_vl_roundtrip() {
        for id in 0..15u8 {
            let vl = VirtualLane::data(id);
            assert_eq!(vl.index(), id as usize);
            assert_eq!(vl.raw(), id);
            assert!(!vl.is_management());
        }
    }

    #[test]
    fn vl15_is_management() {
        assert!(VirtualLane::VL15.is_management());
        assert_eq!(VirtualLane::VL15.index(), 15);
    }

    #[test]
    #[should_panic(expected = "data VL id must be 0..=14")]
    fn data_vl_rejects_15() {
        let _ = VirtualLane::data(15);
    }

    #[test]
    fn new_accepts_0_to_15_only() {
        assert!(VirtualLane::new(15).is_some());
        assert!(VirtualLane::new(16).is_none());
    }

    #[test]
    fn all_data_yields_15_lanes() {
        let v: Vec<_> = VirtualLane::all_data().collect();
        assert_eq!(v.len(), 15);
        assert!(v.iter().all(|vl| !vl.is_management()));
    }

    #[test]
    fn slot_free_iff_zero_weight() {
        assert!(TableSlot::FREE.is_free());
        assert!(TableSlot { vl: 3, weight: 0 }.is_free());
        assert!(!TableSlot { vl: 3, weight: 1 }.is_free());
    }

    #[test]
    fn display() {
        assert_eq!(VirtualLane::data(7).to_string(), "VL7");
        assert_eq!(VirtualLane::VL15.to_string(), "VL15");
    }
}
