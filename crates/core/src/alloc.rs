//! Sequence allocators: the paper's bit-reversal algorithm plus the
//! baselines used in the ablation experiments.
//!
//! An allocator only decides **where** a new sequence goes given the
//! current slot occupancy; weight accounting, sharing and defragmentation
//! live in [`crate::table`].
//!
//! # Probe order
//!
//! For a request of distance `d = 2^i` there are `d` candidate sets
//! `E_{i,0} .. E_{i,d-1}`. The three policies differ only in the order
//! they probe those candidates:
//!
//! * **bit-reversal** probes offsets in bit-reversed order of `j`
//!   (`0, d/2, d/4, 3d/4, …`), which leaves the free entries maximally
//!   spread after every allocation — the paper's invariant;
//! * **first-fit** probes `0, 1, 2, …` (the natural order);
//! * **reverse-fit** probes `d-1, d-2, …, 0`.
//!
//! Each probe is a single AND of the set's 64-bit mask against the
//! occupancy word. The observed variants report one
//! `alloc_probe_total` per candidate examined (busy candidates also
//! count toward `alloc_probe_rejected_total`) and the final depth into
//! the `alloc_probe_depth` histogram — see `METRICS.md`.

use crate::distance::Distance;
use crate::eset::ESet;
use iba_obs::Recorder;

/// Walks an iterator of candidate [`ESet`]s, recording one
/// [`Recorder::alloc_probe`] per candidate and a final
/// [`Recorder::alloc_select`] with the probe depth and outcome.
fn probe_observed(
    candidates: impl Iterator<Item = ESet>,
    occupancy: u64,
    rec: &mut dyn Recorder,
) -> Option<ESet> {
    let mut depth = 0u32;
    for e in candidates {
        depth += 1;
        let free = e.is_free_in(occupancy);
        rec.alloc_probe(!free);
        if free {
            rec.alloc_select(depth, true);
            return Some(e);
        }
    }
    rec.alloc_select(depth, false);
    None
}

/// Strategy for choosing a free `E_{i,j}` for a new sequence.
///
/// Object-safe: [`crate::table::HighPriorityTable`] dispatches through
/// `&'static dyn SequenceAllocator`, so the observed variant takes
/// `&mut dyn Recorder` rather than a generic parameter.
pub trait SequenceAllocator {
    /// Returns the first free set for `distance` under `occupancy`
    /// (bit set = slot busy), or `None` when no candidate set is free.
    fn select(&self, occupancy: u64, distance: Distance) -> Option<ESet>;

    /// [`SequenceAllocator::select`] with instrumentation: records one
    /// `alloc_probe` per E-set examined (flagging busy sets as
    /// rejections) and one `alloc_select` with the final probe depth.
    /// The default implementation delegates to `select` without
    /// recording, so external allocator impls keep working unchanged.
    fn select_observed(
        &self,
        occupancy: u64,
        distance: Distance,
        _rec: &mut dyn Recorder,
    ) -> Option<ESet> {
        self.select(occupancy, distance)
    }

    /// Human-readable allocator name (for reports).
    fn name(&self) -> &'static str;
}

/// The paper's allocator: probe `E_{i,j}` in bit-reversal order of `j`
/// and take the first free set.
///
/// Theorem (TR DIAB-03-01, reproduced as property tests in
/// [`crate::invariants`]): starting from an empty table and allocating
/// with this policy, a request is satisfied **whenever enough free
/// entries exist**, because the free entries always remain arranged to
/// serve the most restrictive request their count permits.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitReversalAllocator;

impl SequenceAllocator for BitReversalAllocator {
    fn select(&self, occupancy: u64, distance: Distance) -> Option<ESet> {
        ESet::probe_sequence(distance).find(|e| e.is_free_in(occupancy))
    }

    fn select_observed(
        &self,
        occupancy: u64,
        distance: Distance,
        rec: &mut dyn Recorder,
    ) -> Option<ESet> {
        probe_observed(ESet::probe_sequence(distance), occupancy, rec)
    }

    fn name(&self) -> &'static str {
        "bit-reversal"
    }
}

/// Baseline: probe offsets in natural order `0, 1, 2, …` (first fit).
///
/// Satisfies individual requests, but interleaves odd and even offsets
/// early, stranding free entries in layouts that cannot serve later
/// strict-distance requests — the failure mode the ablation demonstrates.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstFitAllocator;

impl SequenceAllocator for FirstFitAllocator {
    fn select(&self, occupancy: u64, distance: Distance) -> Option<ESet> {
        ESet::all(distance).find(|e| e.is_free_in(occupancy))
    }

    fn select_observed(
        &self,
        occupancy: u64,
        distance: Distance,
        rec: &mut dyn Recorder,
    ) -> Option<ESet> {
        probe_observed(ESet::all(distance), occupancy, rec)
    }

    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// Baseline: probe offsets from the **highest** down (worst fit for the
/// bit-reversal invariant; a stress baseline for the ablation).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReverseFitAllocator;

impl SequenceAllocator for ReverseFitAllocator {
    fn select(&self, occupancy: u64, distance: Distance) -> Option<ESet> {
        (0..distance.slots())
            .rev()
            .map(|j| ESet::new(distance, j))
            .find(|e| e.is_free_in(occupancy))
    }

    fn select_observed(
        &self,
        occupancy: u64,
        distance: Distance,
        rec: &mut dyn Recorder,
    ) -> Option<ESet> {
        let candidates = (0..distance.slots()).rev().map(|j| ESet::new(distance, j));
        probe_observed(candidates, occupancy, rec)
    }

    fn name(&self) -> &'static str {
        "reverse-fit"
    }
}

/// Runtime-selectable allocator used by [`crate::table::HighPriorityTable`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AllocatorKind {
    /// The paper's bit-reversal policy.
    #[default]
    BitReversal,
    /// Natural-order first fit.
    FirstFit,
    /// Highest-offset-first fit.
    ReverseFit,
}

impl AllocatorKind {
    /// The policy as a trait object (the single dispatch point — every
    /// other method delegates through it).
    #[must_use]
    pub fn as_allocator(self) -> &'static dyn SequenceAllocator {
        match self {
            AllocatorKind::BitReversal => &BitReversalAllocator,
            AllocatorKind::FirstFit => &FirstFitAllocator,
            AllocatorKind::ReverseFit => &ReverseFitAllocator,
        }
    }

    /// Applies the selected policy.
    #[must_use]
    pub fn select(self, occupancy: u64, distance: Distance) -> Option<ESet> {
        self.as_allocator().select(occupancy, distance)
    }

    /// Applies the selected policy, recording probes into `rec`.
    pub fn select_observed(
        self,
        occupancy: u64,
        distance: Distance,
        rec: &mut dyn Recorder,
    ) -> Option<ESet> {
        self.as_allocator()
            .select_observed(occupancy, distance, rec)
    }

    /// Policy name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.as_allocator().name()
    }

    /// All selectable policies.
    pub const ALL: [AllocatorKind; 3] = [
        AllocatorKind::BitReversal,
        AllocatorKind::FirstFit,
        AllocatorKind::ReverseFit,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_gives_offset_zero() {
        for d in Distance::ALL {
            let e = BitReversalAllocator.select(0, d).unwrap();
            assert_eq!(e.offset(), 0);
            assert_eq!(e.distance(), d);
        }
    }

    #[test]
    fn bitrev_probes_even_offsets_first() {
        // Occupy E_{3,0}; the next d=8 allocation must land on offset 4.
        let occ = ESet::new(Distance::D8, 0).mask();
        let e = BitReversalAllocator.select(occ, Distance::D8).unwrap();
        assert_eq!(e.offset(), 4);
        // first-fit would take offset 1 instead.
        let e = FirstFitAllocator.select(occ, Distance::D8).unwrap();
        assert_eq!(e.offset(), 1);
    }

    #[test]
    fn kind_dispatch_matches_concrete_allocators() {
        for kind in AllocatorKind::ALL {
            assert_eq!(kind.name(), kind.as_allocator().name());
            for d in Distance::ALL {
                assert_eq!(
                    kind.select(0x5A5A, d),
                    kind.as_allocator().select(0x5A5A, d)
                );
            }
        }
    }

    #[test]
    fn full_table_yields_none() {
        for kind in AllocatorKind::ALL {
            for d in Distance::ALL {
                assert!(kind.select(u64::MAX, d).is_none());
            }
        }
    }

    #[test]
    fn selected_set_is_always_free() {
        // Pseudo-random occupancies; whatever is returned must be free.
        let mut occ = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..64 {
            occ = occ.wrapping_mul(6364136223846793005).wrapping_add(1);
            for kind in AllocatorKind::ALL {
                for d in Distance::ALL {
                    if let Some(e) = kind.select(occ, d) {
                        assert!(e.is_free_in(occ), "{} returned busy set", kind.name());
                    }
                }
            }
        }
    }

    #[test]
    fn observed_select_matches_plain_select_and_counts_probes() {
        use iba_obs::ObsRecorder;
        let mut occ = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..16 {
            occ = occ.wrapping_mul(6364136223846793005).wrapping_add(1);
            for kind in AllocatorKind::ALL {
                for d in Distance::ALL {
                    let mut rec = ObsRecorder::new();
                    let observed = kind.select_observed(occ, d, &mut rec);
                    assert_eq!(observed, kind.select(occ, d), "{}", kind.name());
                    // Probe accounting: every candidate examined is one
                    // probe; all but a final successful one are rejections.
                    let m = &rec.metrics;
                    let probes = m.alloc_probe.get();
                    assert!(probes >= 1);
                    if observed.is_some() {
                        assert_eq!(m.alloc_probe_rejected.get(), probes - 1);
                        assert_eq!(m.alloc_probe_depth.count(), 1);
                        assert_eq!(m.alloc_select_fail.get(), 0);
                    } else {
                        assert_eq!(m.alloc_probe_rejected.get(), probes);
                        assert_eq!(m.alloc_select_fail.get(), 1);
                    }
                }
            }
        }
    }

    #[test]
    fn bitrev_preserves_strictest_capability() {
        // After k distance-64 allocations (k <= 32), a distance-2 request
        // must still fit — the paper's headline property. First-fit loses
        // it after the 2nd allocation (slots 0 and 1 kill both d2 sets).
        let mut occ = 0u64;
        for k in 0..32 {
            let e = BitReversalAllocator.select(occ, Distance::D64).unwrap();
            occ |= e.mask();
            assert!(
                BitReversalAllocator.select(occ, Distance::D2).is_some(),
                "lost d=2 capability after {} singles",
                k + 1
            );
        }

        let mut occ = 0u64;
        for _ in 0..2 {
            let e = FirstFitAllocator.select(occ, Distance::D64).unwrap();
            occ |= e.mask();
        }
        assert!(
            FirstFitAllocator.select(occ, Distance::D2).is_none(),
            "first-fit should have destroyed the d=2 sets"
        );
    }
}
