//! Sequence allocators: the paper's bit-reversal algorithm plus the
//! baselines used in the ablation experiments.
//!
//! An allocator only decides **where** a new sequence goes given the
//! current slot occupancy; weight accounting, sharing and defragmentation
//! live in [`crate::table`].

use crate::distance::Distance;
use crate::eset::ESet;

/// Strategy for choosing a free `E_{i,j}` for a new sequence.
pub trait SequenceAllocator {
    /// Returns the first free set for `distance` under `occupancy`
    /// (bit set = slot busy), or `None` when no candidate set is free.
    fn select(&self, occupancy: u64, distance: Distance) -> Option<ESet>;

    /// Human-readable allocator name (for reports).
    fn name(&self) -> &'static str;
}

/// The paper's allocator: probe `E_{i,j}` in bit-reversal order of `j`
/// and take the first free set.
///
/// Theorem (TR DIAB-03-01, reproduced as property tests in
/// [`crate::invariants`]): starting from an empty table and allocating
/// with this policy, a request is satisfied **whenever enough free
/// entries exist**, because the free entries always remain arranged to
/// serve the most restrictive request their count permits.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitReversalAllocator;

impl SequenceAllocator for BitReversalAllocator {
    fn select(&self, occupancy: u64, distance: Distance) -> Option<ESet> {
        ESet::probe_sequence(distance).find(|e| e.is_free_in(occupancy))
    }

    fn name(&self) -> &'static str {
        "bit-reversal"
    }
}

/// Baseline: probe offsets in natural order `0, 1, 2, …` (first fit).
///
/// Satisfies individual requests, but interleaves odd and even offsets
/// early, stranding free entries in layouts that cannot serve later
/// strict-distance requests — the failure mode the ablation demonstrates.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstFitAllocator;

impl SequenceAllocator for FirstFitAllocator {
    fn select(&self, occupancy: u64, distance: Distance) -> Option<ESet> {
        ESet::all(distance).find(|e| e.is_free_in(occupancy))
    }

    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// Baseline: probe offsets from the **highest** down (worst fit for the
/// bit-reversal invariant; a stress baseline for the ablation).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReverseFitAllocator;

impl SequenceAllocator for ReverseFitAllocator {
    fn select(&self, occupancy: u64, distance: Distance) -> Option<ESet> {
        (0..distance.slots())
            .rev()
            .map(|j| ESet::new(distance, j))
            .find(|e| e.is_free_in(occupancy))
    }

    fn name(&self) -> &'static str {
        "reverse-fit"
    }
}

/// Runtime-selectable allocator used by [`crate::table::HighPriorityTable`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AllocatorKind {
    /// The paper's bit-reversal policy.
    #[default]
    BitReversal,
    /// Natural-order first fit.
    FirstFit,
    /// Highest-offset-first fit.
    ReverseFit,
}

impl AllocatorKind {
    /// The policy as a trait object (the single dispatch point — every
    /// other method delegates through it).
    #[must_use]
    pub fn as_allocator(self) -> &'static dyn SequenceAllocator {
        match self {
            AllocatorKind::BitReversal => &BitReversalAllocator,
            AllocatorKind::FirstFit => &FirstFitAllocator,
            AllocatorKind::ReverseFit => &ReverseFitAllocator,
        }
    }

    /// Applies the selected policy.
    #[must_use]
    pub fn select(self, occupancy: u64, distance: Distance) -> Option<ESet> {
        self.as_allocator().select(occupancy, distance)
    }

    /// Policy name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.as_allocator().name()
    }

    /// All selectable policies.
    pub const ALL: [AllocatorKind; 3] = [
        AllocatorKind::BitReversal,
        AllocatorKind::FirstFit,
        AllocatorKind::ReverseFit,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_gives_offset_zero() {
        for d in Distance::ALL {
            let e = BitReversalAllocator.select(0, d).unwrap();
            assert_eq!(e.offset(), 0);
            assert_eq!(e.distance(), d);
        }
    }

    #[test]
    fn bitrev_probes_even_offsets_first() {
        // Occupy E_{3,0}; the next d=8 allocation must land on offset 4.
        let occ = ESet::new(Distance::D8, 0).mask();
        let e = BitReversalAllocator.select(occ, Distance::D8).unwrap();
        assert_eq!(e.offset(), 4);
        // first-fit would take offset 1 instead.
        let e = FirstFitAllocator.select(occ, Distance::D8).unwrap();
        assert_eq!(e.offset(), 1);
    }

    #[test]
    fn kind_dispatch_matches_concrete_allocators() {
        for kind in AllocatorKind::ALL {
            assert_eq!(kind.name(), kind.as_allocator().name());
            for d in Distance::ALL {
                assert_eq!(
                    kind.select(0x5A5A, d),
                    kind.as_allocator().select(0x5A5A, d)
                );
            }
        }
    }

    #[test]
    fn full_table_yields_none() {
        for kind in AllocatorKind::ALL {
            for d in Distance::ALL {
                assert!(kind.select(u64::MAX, d).is_none());
            }
        }
    }

    #[test]
    fn selected_set_is_always_free() {
        // Pseudo-random occupancies; whatever is returned must be free.
        let mut occ = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..64 {
            occ = occ.wrapping_mul(6364136223846793005).wrapping_add(1);
            for kind in AllocatorKind::ALL {
                for d in Distance::ALL {
                    if let Some(e) = kind.select(occ, d) {
                        assert!(e.is_free_in(occ), "{} returned busy set", kind.name());
                    }
                }
            }
        }
    }

    #[test]
    fn bitrev_preserves_strictest_capability() {
        // After k distance-64 allocations (k <= 32), a distance-2 request
        // must still fit — the paper's headline property. First-fit loses
        // it after the 2nd allocation (slots 0 and 1 kill both d2 sets).
        let mut occ = 0u64;
        for k in 0..32 {
            let e = BitReversalAllocator.select(occ, Distance::D64).unwrap();
            occ |= e.mask();
            assert!(
                BitReversalAllocator.select(occ, Distance::D2).is_some(),
                "lost d=2 capability after {} singles",
                k + 1
            );
        }

        let mut occ = 0u64;
        for _ in 0..2 {
            let e = FirstFitAllocator.select(occ, Distance::D64).unwrap();
            occ |= e.mask();
        }
        assert!(
            FirstFitAllocator.select(occ, Distance::D2).is_none(),
            "first-fit should have destroyed the d=2 sets"
        );
    }
}
