//! Weight arithmetic: the IBA arbitration weight unit and the mapping
//! between requested mean bandwidth and table weight.

/// One arbitration weight unit corresponds to 64 bytes of payload credit
/// (IBA 1.0, §7.6.9).
pub const WEIGHT_UNIT_BYTES: u64 = 64;

/// Maximum weight a single table entry can carry.
pub const MAX_ENTRY_WEIGHT: u16 = 255;

/// Maximum accumulated weight of a fully loaded 64-entry table.
pub const MAX_TABLE_WEIGHT: u32 = 64 * MAX_ENTRY_WEIGHT as u32; // 16320

/// A (possibly multi-entry) weight amount, in 64-byte units.
///
/// A single table slot holds at most [`MAX_ENTRY_WEIGHT`]; larger weights
/// are spread across several slots of a sequence.
pub type Weight = u32;

/// Number of 64-byte weight units consumed by transmitting `bytes`
/// bytes, rounded **up** to whole units ("always rounded up as a whole
/// packet" — weight is debited per packet in 64-byte units).
#[must_use]
pub fn bytes_to_weight_units(bytes: u64) -> u64 {
    bytes.div_ceil(WEIGHT_UNIT_BYTES)
}

/// Translates a mean-bandwidth request into a table weight.
///
/// A connection asking for `bandwidth_mbps` on a link of
/// `link_mbps` capacity reserves the fraction `f = bandwidth / link` of
/// the link; to guarantee that share even when the table is fully
/// weighted, the connection must own `ceil(f · MAX_TABLE_WEIGHT)` weight
/// units (the paper: "a request of a certain bandwidth was treated in
/// each switch as a request of the corresponding weight in the
/// arbitration table").
///
/// Returns `None` when the request exceeds the link capacity.
#[must_use]
pub fn weight_for_bandwidth(bandwidth_mbps: f64, link_mbps: f64) -> Option<Weight> {
    if bandwidth_mbps <= 0.0
        || link_mbps <= 0.0
        || bandwidth_mbps > link_mbps
        || bandwidth_mbps.is_nan()
    {
        return None;
    }
    let fraction = bandwidth_mbps / link_mbps;
    let w = (fraction * MAX_TABLE_WEIGHT as f64).ceil() as Weight;
    Some(w.max(1))
}

/// Inverse of [`weight_for_bandwidth`]: the bandwidth (Mbps) guaranteed
/// by owning `weight` units on a `link_mbps` link with a fully weighted
/// table (worst case).
#[must_use]
pub fn bandwidth_for_weight(weight: Weight, link_mbps: f64) -> f64 {
    link_mbps * weight as f64 / MAX_TABLE_WEIGHT as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_rounding_is_per_packet() {
        assert_eq!(bytes_to_weight_units(0), 0);
        assert_eq!(bytes_to_weight_units(1), 1);
        assert_eq!(bytes_to_weight_units(64), 1);
        assert_eq!(bytes_to_weight_units(65), 2);
        assert_eq!(bytes_to_weight_units(256), 4);
        assert_eq!(bytes_to_weight_units(4096), 64);
    }

    #[test]
    fn weight_scales_with_fraction() {
        // Full link => whole table weight.
        assert_eq!(weight_for_bandwidth(2500.0, 2500.0), Some(MAX_TABLE_WEIGHT));
        // Half link => half the table weight.
        assert_eq!(
            weight_for_bandwidth(1250.0, 2500.0),
            Some(MAX_TABLE_WEIGHT / 2)
        );
    }

    #[test]
    fn tiny_requests_get_at_least_one_unit() {
        let w = weight_for_bandwidth(0.01, 2500.0).unwrap();
        assert!(w >= 1);
    }

    #[test]
    fn over_capacity_rejected() {
        assert_eq!(weight_for_bandwidth(2501.0, 2500.0), None);
        assert_eq!(weight_for_bandwidth(0.0, 2500.0), None);
        assert_eq!(weight_for_bandwidth(-1.0, 2500.0), None);
    }

    #[test]
    fn weight_bandwidth_roundtrip_is_conservative() {
        // The guaranteed bandwidth of the granted weight always covers the
        // request (ceil rounding is in the connection's favour).
        for mbps in [0.5, 1.0, 4.0, 16.0, 64.0, 128.0, 333.3] {
            let w = weight_for_bandwidth(mbps, 2500.0).unwrap();
            assert!(
                bandwidth_for_weight(w, 2500.0) >= mbps - 1e-9,
                "granted weight {w} under-covers {mbps} Mbps"
            );
        }
    }

    #[test]
    fn example_from_design_doc() {
        // 128 Mbps on a 2.5 Gbps link needs 836 units => 4 entries by weight.
        let w = weight_for_bandwidth(128.0, 2500.0).unwrap();
        assert_eq!(w, 836);
        assert_eq!(w.div_ceil(MAX_ENTRY_WEIGHT as u32), 4);
    }
}
