//! Bit-reversal permutation — the probe order of the paper's allocator.
//!
//! For a request of distance `d = 2^i` the candidate start offsets
//! `j ∈ [0, d)` are inspected in the order `rev_i(0), rev_i(1), …,
//! rev_i(d-1)`, where `rev_i` reverses the `i` low bits. This fills even
//! offsets before odd ones at every scale, which is exactly what keeps
//! the residual free entries able to serve the most restrictive
//! (distance-2) request for as long as possible.

/// Reverses the `bits` least-significant bits of `value`.
///
/// `value` must be `< 2^bits`; bits above are ignored by construction.
#[must_use]
pub fn bit_reverse(value: u32, bits: u32) -> u32 {
    debug_assert!(bits <= 32);
    if bits == 0 {
        return 0;
    }
    value.reverse_bits() >> (32 - bits)
}

/// The probe order for a request of distance `2^log2_distance`:
/// yields `rev(0), rev(1), …, rev(2^log2_distance - 1)`.
///
/// Example from the paper (`d = 8 = 2^3`): `0, 4, 2, 6, 1, 5, 3, 7`.
pub fn probe_order(log2_distance: u32) -> impl Iterator<Item = u32> {
    let n = 1u32 << log2_distance;
    (0..n).map(move |k| bit_reverse(k, log2_distance))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bits_is_identity_zero() {
        assert_eq!(bit_reverse(0, 0), 0);
    }

    #[test]
    fn single_bit() {
        assert_eq!(bit_reverse(0, 1), 0);
        assert_eq!(bit_reverse(1, 1), 1);
    }

    #[test]
    fn three_bits_matches_paper_example() {
        // "the order to inspect the sets for a request of distance d = 8 =
        //  2^3 is E3,0, E3,4, E3,2, E3,6, E3,1, E3,5, E3,3, E3,7"
        let order: Vec<u32> = probe_order(3).collect();
        assert_eq!(order, vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn probe_order_is_a_permutation() {
        for bits in 0..=6 {
            let mut order: Vec<u32> = probe_order(bits).collect();
            assert_eq!(order.len(), 1 << bits);
            order.sort_unstable();
            let expect: Vec<u32> = (0..1u32 << bits).collect();
            assert_eq!(order, expect);
        }
    }

    #[test]
    fn bit_reverse_is_involutive() {
        for bits in 1..=6 {
            for v in 0..1u32 << bits {
                assert_eq!(bit_reverse(bit_reverse(v, bits), bits), v);
            }
        }
    }

    #[test]
    fn evens_probed_before_odds() {
        // The defining property: for every scale, all even offsets come
        // before any odd offset.
        for bits in 1..=6 {
            let order: Vec<u32> = probe_order(bits).collect();
            let half = order.len() / 2;
            assert!(order[..half].iter().all(|&j| j % 2 == 0));
            assert!(order[half..].iter().all(|&j| j % 2 == 1));
        }
    }
}
