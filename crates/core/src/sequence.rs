//! Sequences: an allocated `E_{i,j}` set serving one service level, shared
//! by every connection of that SL that fits (§3.2 of the paper: "several
//! connections, with the same VL, shared the entries in the arbitration
//! tables … until they fill in the maximum weight of their entries").

use crate::distance::Distance;
use crate::entry::VirtualLane;
use crate::eset::ESet;
use crate::sl::ServiceLevel;
use crate::weight::{Weight, MAX_ENTRY_WEIGHT};

/// Opaque handle to a sequence inside a [`crate::table::HighPriorityTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SequenceId(pub(crate) u32);

impl SequenceId {
    /// Builds an id from a raw index. Table methods only accept ids they
    /// issued; constructing one is useful for standalone planning with
    /// [`crate::defrag::canonical_plan`].
    #[must_use]
    pub fn new(raw: u32) -> Self {
        SequenceId(raw)
    }

    /// Raw index (stable for the lifetime of the sequence).
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// An allocated sequence of equally spaced table entries.
#[derive(Clone, Debug)]
pub struct Sequence {
    pub(crate) eset: ESet,
    pub(crate) vl: VirtualLane,
    pub(crate) sl: ServiceLevel,
    /// Accumulated weight of all connections sharing the sequence.
    pub(crate) total_weight: Weight,
    /// Number of connections currently sharing the sequence.
    pub(crate) connections: u32,
}

impl Sequence {
    /// The per-slot weight written into the table for an accumulated
    /// weight `total`: the accumulated weight divided evenly over the
    /// sequence's entries, rounded up (over-provisioning is in the
    /// connections' favour and keeps every slot identical, matching the
    /// paper's equal-treatment goal).
    #[must_use]
    pub fn per_slot_weight(total: Weight, entries: usize) -> u16 {
        debug_assert!(
            crate::invariants::per_slot_weight_in_range(total, entries),
            "per-slot weight out of range: total={total} entries={entries}"
        );
        total.div_ceil((entries as u32).max(1)) as u16
    }

    /// Whether a further connection of weight `extra` still fits under
    /// the 255-per-entry cap.
    #[must_use]
    pub fn fits(&self, extra: Weight) -> bool {
        (self.total_weight + extra).div_ceil(self.eset.len() as u32) <= MAX_ENTRY_WEIGHT as u32
    }

    /// Whether a request of latency distance `required` may legally join
    /// this sequence: the sequence's spacing must be at least as strict.
    #[must_use]
    pub fn satisfies_distance(&self, required: Distance) -> bool {
        self.eset.distance().at_least_as_strict(required)
    }
}

/// Public, read-only view of a sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SequenceInfo {
    /// The entry set the sequence occupies.
    pub eset: ESet,
    /// Virtual lane its entries point at.
    pub vl: VirtualLane,
    /// Service level it serves.
    pub sl: ServiceLevel,
    /// Accumulated weight of the sharing connections.
    pub total_weight: Weight,
    /// Number of sharing connections.
    pub connections: u32,
    /// Weight currently written into each slot.
    pub per_slot_weight: u16,
}

impl From<&Sequence> for SequenceInfo {
    fn from(s: &Sequence) -> Self {
        SequenceInfo {
            eset: s.eset,
            vl: s.vl,
            sl: s.sl,
            total_weight: s.total_weight,
            connections: s.connections,
            per_slot_weight: Sequence::per_slot_weight(s.total_weight, s.eset.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(distance: Distance, total: Weight) -> Sequence {
        Sequence {
            eset: ESet::new(distance, 0),
            vl: VirtualLane::data(1),
            sl: ServiceLevel::new(1).unwrap(),
            total_weight: total,
            connections: 1,
        }
    }

    #[test]
    fn per_slot_weight_rounds_up() {
        assert_eq!(Sequence::per_slot_weight(1, 8), 1);
        assert_eq!(Sequence::per_slot_weight(8, 8), 1);
        assert_eq!(Sequence::per_slot_weight(9, 8), 2);
        assert_eq!(Sequence::per_slot_weight(255, 1), 255);
    }

    #[test]
    fn fits_respects_entry_cap() {
        // 8-entry sequence holds up to 8*255 = 2040 weight.
        let s = seq(Distance::D8, 2000);
        assert!(s.fits(40));
        assert!(!s.fits(41));
        // single-entry sequence
        let s = seq(Distance::D64, 200);
        assert!(s.fits(55));
        assert!(!s.fits(56));
    }

    #[test]
    fn distance_satisfaction_is_monotone() {
        let s = seq(Distance::D8, 10);
        assert!(s.satisfies_distance(Distance::D8));
        assert!(s.satisfies_distance(Distance::D16));
        assert!(s.satisfies_distance(Distance::D64));
        assert!(!s.satisfies_distance(Distance::D4));
        assert!(!s.satisfies_distance(Distance::D2));
    }

    #[test]
    fn info_mirrors_sequence() {
        let s = seq(Distance::D16, 100);
        let info = SequenceInfo::from(&s);
        assert_eq!(info.total_weight, 100);
        assert_eq!(info.per_slot_weight, 25);
        assert_eq!(info.connections, 1);
        assert_eq!(info.eset.len(), 4);
    }
}
