//! Checkable statements of the formal properties from the companion
//! technical report (TR DIAB-03-01), used by the unit and property test
//! suites and by debug assertions elsewhere.

use crate::defrag::is_canonical;
use crate::distance::Distance;
use crate::eset::ESet;
use crate::table::HighPriorityTable;
use crate::weight::{Weight, MAX_ENTRY_WEIGHT};

/// The most restrictive distance for which a completely free `E_{i,j}`
/// still exists under `occupancy`, if any.
#[must_use]
pub fn most_restrictive_admissible(occupancy: u64) -> Option<Distance> {
    Distance::ALL
        .into_iter()
        .find(|&d| ESet::all(d).any(|e| e.is_free_in(occupancy)))
}

/// The paper's headline guarantee, as a predicate: *for every distance
/// `d`, if at least `64/d` entries are free then a free `E_{i,j}` of
/// distance `d` exists*. Holds for any table driven exclusively through
/// the bit-reversal allocator plus defragmentation.
#[must_use]
pub fn optimal_placement_holds(occupancy: u64) -> bool {
    is_canonical(occupancy)
}

/// A sequence's accumulated weight always divides over its entries
/// without exceeding the 255-per-entry cap (enforced at admission by
/// [`crate::sequence::Sequence::fits`]).
#[must_use]
pub fn per_slot_weight_in_range(total: Weight, entries: usize) -> bool {
    entries > 0 && total.div_ceil(entries as u32) <= MAX_ENTRY_WEIGHT as u32
}

/// Weight accounting balances per connection: a sequence whose last
/// connection has gone must have zero accumulated weight.
#[must_use]
pub fn released_sequence_is_drained(connections: u32, total_weight: Weight) -> bool {
    connections != 0 || total_weight == 0
}

/// Full-table invariant bundle: internal consistency plus the canonical
/// layout property. Returns a description of the first violation.
pub fn check_table(table: &HighPriorityTable) -> Result<(), String> {
    table.check_consistency()?;
    if !optimal_placement_holds(table.occupancy()) {
        return Err(format!(
            "occupancy {:#018x} is not canonical: {} entries free but most \
             restrictive admissible distance is {:?}",
            table.occupancy(),
            table.free_entries(),
            most_restrictive_admissible(table.occupancy())
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocatorKind;
    use crate::entry::VirtualLane;
    use crate::sl::ServiceLevel;

    #[test]
    fn most_restrictive_on_empty_is_d2() {
        assert_eq!(most_restrictive_admissible(0), Some(Distance::D2));
    }

    #[test]
    fn most_restrictive_on_full_is_none() {
        assert_eq!(most_restrictive_admissible(u64::MAX), None);
    }

    #[test]
    fn busy_evens_leave_only_odd_d2() {
        // Evens busy: E(2,1) still free -> D2 admissible.
        let evens = ESet::new(Distance::D2, 0).mask();
        assert_eq!(most_restrictive_admissible(evens), Some(Distance::D2));
        // Both parities hit: only looser distances survive.
        let plus_one = evens | (1 << 1);
        assert_eq!(most_restrictive_admissible(plus_one), Some(Distance::D4));
    }

    #[test]
    fn bitrev_driven_table_always_canonical() {
        let mut t = HighPriorityTable::new();
        let sl = |i: u8| ServiceLevel::new(i).unwrap();
        let vl = |i: u8| VirtualLane::data(i);
        // A busy mixed workload with interleaved releases.
        let mut live = Vec::new();
        let script: &[(u8, Distance, u32)] = &[
            (0, Distance::D2, 64),
            (6, Distance::D64, 255),
            (2, Distance::D8, 100),
            (7, Distance::D64, 255),
            (4, Distance::D32, 30),
        ];
        for &(s, d, w) in script {
            if let Ok(adm) = t.admit(sl(s), vl(s), d, w) {
                live.push((adm.sequence, w));
            }
            check_table(&t).unwrap();
        }
        while let Some((id, w)) = live.pop() {
            t.release(id, w).unwrap();
            check_table(&t).unwrap();
        }
        assert_eq!(t.free_entries(), 64);
    }

    #[test]
    fn first_fit_table_can_violate_canonicity() {
        let mut t = HighPriorityTable::with_allocator(AllocatorKind::FirstFit);
        t.set_auto_defrag(false);
        let sl = |i: u8| ServiceLevel::new(i).unwrap();
        let vl = |i: u8| VirtualLane::data(i);
        t.admit(sl(6), vl(6), Distance::D64, 255).unwrap();
        t.admit(sl(7), vl(7), Distance::D64, 255).unwrap();
        // Slots 0 and 1 busy: 62 entries free yet no d=2 set.
        assert!(check_table(&t).is_err());
    }
}
