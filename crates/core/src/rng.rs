//! A tiny deterministic PRNG shared by every crate of the workspace.
//!
//! The generators, topologies and workloads only need reproducible,
//! well-mixed pseudo-randomness — not cryptographic strength — so a
//! dependency-free SplitMix64 (Steele, Lea & Flood, OOPSLA'14) keeps the
//! whole build offline-friendly. The same seed always yields the same
//! stream on every platform.

/// SplitMix64: a 64-bit state advanced by a Weyl increment, with an
/// avalanche finalizer. Passes BigCrush when used as a raw stream and is
/// the canonical seeder for larger generators.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from a half-open or inclusive integer/float range,
    /// mirroring the call shape of `rand::Rng::gen_range`.
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: std::ops::RangeBounds<T>,
    {
        T::sample(self, &range)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of a slice, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = (self.next_u64() % slice.len() as u64) as usize;
            slice.get(i)
        }
    }
}

/// Types [`SplitMix64::gen_range`] can draw uniformly.
pub trait UniformSample: Copy + PartialOrd {
    /// Draws a uniform value from `range`.
    fn sample<R: std::ops::RangeBounds<Self>>(rng: &mut SplitMix64, range: &R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: std::ops::RangeBounds<Self>>(rng: &mut SplitMix64, range: &R) -> Self {
                use std::ops::Bound;
                // Half-open [lo, hi) in u128 so u64::MAX bounds cannot
                // overflow; modulo bias is negligible for the spans the
                // workloads use and keeps the draw reproducible.
                let lo: u128 = match range.start_bound() {
                    Bound::Included(&b) => b as u128,
                    Bound::Excluded(&b) => b as u128 + 1,
                    Bound::Unbounded => 0,
                };
                let hi: u128 = match range.end_bound() {
                    Bound::Included(&b) => b as u128 + 1,
                    Bound::Excluded(&b) => b as u128,
                    Bound::Unbounded => <$t>::MAX as u128 + 1,
                };
                assert!(lo < hi, "cannot sample from an empty range");
                let span = hi - lo;
                let v = if span > u64::MAX as u128 {
                    u128::from(rng.next_u64())
                } else {
                    lo + u128::from(rng.next_u64()) % span
                };
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformSample for f64 {
    fn sample<R: std::ops::RangeBounds<Self>>(rng: &mut SplitMix64, range: &R) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&b) | Bound::Excluded(&b) => b,
            Bound::Unbounded => 0.0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&b) | Bound::Excluded(&b) => b,
            Bound::Unbounded => 1.0,
        };
        assert!(lo < hi, "cannot sample from an empty range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 0 from the SplitMix64 reference
        // implementation.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v: usize = r.gen_range(0..4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..100 {
            let v: u32 = r.gen_range(5..=7);
            assert!((5..=7).contains(&v));
            let f: f64 = r.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
            let w: u64 = r.gen_range(3..10);
            assert!((3..10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SplitMix64::seed_from_u64(9);
        assert!((0..50).all(|_| !r.gen_bool(0.0)));
        assert!((0..50).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SplitMix64::seed_from_u64(4);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &x = r.choose(&items).unwrap();
            seen[items.iter().position(|&i| i == x).unwrap()] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert!(r.choose::<u8>(&[]).is_none());
    }
}
