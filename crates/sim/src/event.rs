//! Deterministic discrete-event queue.

use crate::time::Cycles;
use std::collections::BinaryHeap;

/// An event kind processed by the fabric loop.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Event {
    /// A flow's source emits its next packet.
    Generate {
        /// Index into the fabric's flow table.
        flow: u32,
    },
    /// A transfer on an output port completes.
    Complete {
        /// Node owning the output port (encoded; see
        /// [`crate::fabric::NodeId`]).
        node: u32,
        /// Output port number.
        port: u8,
    },
}

#[derive(PartialEq, Eq)]
struct Entry {
    time: Cycles,
    seq: u64,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; wrap in Reverse at the call sites is
        // avoided by inverting here: earliest time first, then FIFO.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with FIFO tie-breaking (two events at the
/// same cycle fire in insertion order), which makes runs reproducible.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Cycles, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes the earliest event.
    pub fn pop(&mut self) -> Option<(Cycles, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// No pending events?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Convenience alias used by tests.
pub type Timestamped = (Cycles, Event);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::Generate { flow: 3 });
        q.push(10, Event::Generate { flow: 1 });
        q.push(20, Event::Generate { flow: 2 });
        let times: Vec<Cycles> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for flow in 0..10u32 {
            q.push(5, Event::Generate { flow });
        }
        let flows: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Generate { flow } => flow,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(flows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7, Event::Complete { node: 0, port: 1 });
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
    }
}
