//! Deterministic discrete-event queue: a bucketed **calendar queue**.
//!
//! The fabric's event loop pops tens of millions of events per run, and
//! the previous `BinaryHeap` paid an `O(log n)` chain of `(time, seq)`
//! comparisons (plus sift-up/sift-down moves) on every operation. A
//! calendar queue exploits the workload's structure instead: event
//! times advance monotonically and cluster within a few packet
//! durations of *now*, so hashing events into time-bucketed "days"
//! makes both `push` and `pop` amortized `O(1)`.
//!
//! Layout: `1 << bucket_bits` buckets, each `1 << width_shift` cycles
//! wide (a power of two, so the bucket of a timestamp is a shift and a
//! mask — no division). An event at time `t` lives in virtual bucket
//! `t >> width_shift`, mapped onto the ring by the bucket mask. Each
//! bucket keeps its entries sorted descending by `(time, seq)` so the
//! earliest entry is a `Vec::pop` from the end; with the width sized
//! near the mean event gap, buckets hold only a handful of entries and
//! the insertion memmove is tiny. The queue resizes (and re-calibrates
//! the width from the live event span) when the population outgrows the
//! ring.
//!
//! **Determinism is untouched by the layout.** Pop order is the total
//! order on `(time, seq)` — exactly the old heap's order: earliest time
//! first, FIFO within a cycle. The bucket geometry only changes *how*
//! that minimum is found, never *which* entry is the minimum, so
//! replacing the heap is invisible to every simulation.

use crate::time::Cycles;

/// An event kind processed by the fabric loop.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Event {
    /// A flow's source emits its next packet.
    Generate {
        /// Index into the fabric's flow table.
        flow: u32,
    },
    /// A transfer on an output port completes.
    Complete {
        /// Node owning the output port (encoded; see
        /// [`crate::fabric::NodeId`]).
        node: u32,
        /// Output port number.
        port: u8,
    },
    /// A scheduled fault action fires (see [`crate::fault`]).
    Fault {
        /// Index into the fabric's registered fault actions.
        index: u32,
    },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Entry {
    time: Cycles,
    seq: u64,
    event: Event,
}

impl Entry {
    #[inline]
    fn key(&self) -> (Cycles, u64) {
        (self.time, self.seq)
    }
}

/// Capacity of the sorted near lane. Small fabrics keep only a handful
/// of events in flight; a contiguous sorted vector serves them in a few
/// nanoseconds per op, while the calendar ring pays ~10x in pointer
/// chasing and day-walk branches. 32 entries keeps the insertion
/// memmove within a cache line or two.
const NEAR_CAP: usize = 32;

/// Initial ring size (`1 << INITIAL_BUCKET_BITS` buckets).
const INITIAL_BUCKET_BITS: u32 = 8;

/// Initial bucket width: 256 cycles, one small-MTU packet duration —
/// the natural event gap of the simulated fabrics.
const INITIAL_WIDTH_SHIFT: u32 = 8;

/// Ring size ceiling (a million buckets is far beyond any fabric here).
const MAX_BUCKET_BITS: u32 = 20;

/// Grow when the population exceeds `buckets * GROW_FACTOR`.
const GROW_FACTOR: usize = 2;

/// A time-ordered event queue with FIFO tie-breaking (two events at the
/// same cycle fire in insertion order), which makes runs reproducible.
pub struct EventQueue {
    /// Fast lane for small populations: a contiguous vector sorted
    /// **ascending** by `(time, seq)` whose live region is
    /// `near[near_head..]`. The earliest entry sits at `near_head`, so a
    /// pop is a cursor bump; the steady-state push — a newest-key
    /// append — is a plain `Vec::push`. The stale prefix is reclaimed
    /// in bulk (on drain-empty, or by an amortized compaction once it
    /// reaches `NEAR_CAP`), keeping every hot operation a contiguous
    /// array access with no ring arithmetic. A push lands here while
    /// the live region has room; overflow goes to the calendar ring,
    /// and `pop` takes whichever side holds the global `(time, seq)`
    /// minimum — the total order is unchanged.
    near: Vec<Entry>,
    /// Index of the earliest live entry in `near`.
    near_head: usize,
    /// Ring of buckets, each sorted **descending** by `(time, seq)` —
    /// the bucket's earliest entry is its last element. Allocated
    /// lazily on the first push past the near lane, so small fabrics
    /// never pay for the ring at all.
    buckets: Vec<Vec<Entry>>,
    /// `buckets.len() - 1`; the ring size is a power of two.
    bucket_mask: u64,
    /// Bucket width in cycles is `1 << width_shift`.
    width_shift: u32,
    /// Virtual bucket (`time >> width_shift`) the search cursor is on;
    /// never ahead of the earliest pending event.
    cursor_vb: u64,
    /// Memoized earliest entry: `(time, ring index)`. Invalidated by
    /// pops and by pushes that beat it.
    next_cache: Option<(Cycles, usize)>,
    len: usize,
    seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            near: Vec::with_capacity(2 * NEAR_CAP),
            near_head: 0,
            buckets: Vec::new(),
            bucket_mask: (1 << INITIAL_BUCKET_BITS) - 1,
            width_shift: INITIAL_WIDTH_SHIFT,
            cursor_vb: 0,
            next_cache: None,
            len: 0,
            seq: 0,
        }
    }
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    #[inline]
    pub fn push(&mut self, time: Cycles, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        let e = Entry { time, seq, event };
        self.len += 1;
        // New events usually carry the latest time: a plain append at
        // the back of a near lane with room. Everything else —
        // out-of-order pushes, lane compaction, calendar overflow — is
        // kept out of line so this path stays a compare and a store.
        if self.near.len() - self.near_head < NEAR_CAP
            && self.near.len() < 2 * NEAR_CAP
            && self.near.last().is_none_or(|b| b.key() < e.key())
        {
            self.near.push(e);
            return;
        }
        self.push_slow(e);
    }

    /// Out-of-line remainder of [`push`](Self::push): out-of-order near
    /// inserts, stale-prefix compaction, and calendar overflow.
    #[cold]
    fn push_slow(&mut self, e: Entry) {
        if self.near.len() - self.near_head < NEAR_CAP {
            // Reclaim the stale prefix once the vector reaches twice
            // the lane size: at least NEAR_CAP pops funded the
            // <= NEAR_CAP-entry move, so the compaction is amortized
            // O(1) and the footprint stays bounded at 2 * NEAR_CAP.
            if self.near.len() >= 2 * NEAR_CAP {
                self.near.drain(..self.near_head);
                self.near_head = 0;
            }
            // Out-of-order push (or post-compaction append):
            // binary-search the slot within the live region.
            if self.near.last().is_none_or(|b| b.key() < e.key()) {
                self.near.push(e);
            } else {
                let pos = self.near[self.near_head..].partition_point(|x| x.key() < e.key());
                self.near.insert(self.near_head + pos, e);
            }
            return;
        }
        self.insert(e);
        if self.len - (self.near.len() - self.near_head) > self.buckets.len() * GROW_FACTOR
            && self.buckets.len() < (1 << MAX_BUCKET_BITS)
        {
            self.rebuild(self.buckets.len().trailing_zeros() + 1);
        }
    }

    /// Removes the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycles, Event)> {
        self.pop_at_most(Cycles::MAX)
    }

    /// Removes the earliest event if its time is `<= t_end`; a bounded
    /// pop that fuses the event loop's peek-then-pop pair into one
    /// queue operation (one ordering decision instead of two).
    #[inline]
    pub fn pop_at_most(&mut self, t_end: Cycles) -> Option<(Cycles, Event)> {
        // Fast path: everything lives in the near lane.
        if self.len == self.near.len() - self.near_head {
            let e = *self.near.get(self.near_head)?;
            if e.time > t_end {
                return None;
            }
            self.near_pop_front();
            self.len -= 1;
            return Some((e.time, e.event));
        }
        self.pop_both(t_end)
    }

    /// Out-of-line remainder of [`pop_at_most`](Self::pop_at_most) for
    /// when the calendar ring holds events: the global minimum is
    /// whichever side's minimum has the smaller `(time, seq)` key.
    #[cold]
    fn pop_both(&mut self, t_end: Cycles) -> Option<(Cycles, Event)> {
        let calendar = self.find_next();
        match (self.near.get(self.near_head).copied(), calendar) {
            (Some(n), Some((ct, idx))) => {
                let ck = self.buckets[idx]
                    .last()
                    .map_or((Cycles::MAX, u64::MAX), Entry::key);
                if n.key() < ck {
                    if n.time > t_end {
                        return None;
                    }
                    self.near_pop_front();
                    self.len -= 1;
                    Some((n.time, n.event))
                } else if ct > t_end {
                    None
                } else {
                    self.pop_calendar()
                }
            }
            (Some(n), None) => {
                if n.time > t_end {
                    return None;
                }
                self.near_pop_front();
                self.len -= 1;
                Some((n.time, n.event))
            }
            (None, Some((ct, _))) => {
                if ct > t_end {
                    None
                } else {
                    self.pop_calendar()
                }
            }
            (None, None) => None,
        }
    }

    /// Drops the near lane's earliest live entry, resetting the lane's
    /// storage when it drains empty.
    #[inline]
    fn near_pop_front(&mut self) {
        self.near_head += 1;
        if self.near_head == self.near.len() {
            self.near.clear();
            self.near_head = 0;
        }
    }

    /// Removes the earliest calendar entry (`find_next` already
    /// located it).
    fn pop_calendar(&mut self) -> Option<(Cycles, Event)> {
        let (_, idx) = self.find_next()?;
        // find_next returned this bucket precisely because its tail is
        // the calendar minimum.
        let e = self.buckets[idx].pop()?;
        self.len -= 1;
        // If the bucket's new tail belongs to the same day it is still
        // the calendar minimum (the popped entry was the minimum, so no
        // earlier day has entries, and a whole day maps to one bucket):
        // keeping the memo warm makes consecutive same-day pops O(1)
        // instead of re-walking the ring.
        self.next_cache = match self.buckets[idx].last() {
            Some(n) if n.time >> self.width_shift == e.time >> self.width_shift => {
                Some((n.time, idx))
            }
            _ => None,
        };
        Some((e.time, e.event))
    }

    /// Time of the next event without removing it.
    #[inline]
    #[must_use]
    pub fn peek_time(&mut self) -> Option<Cycles> {
        if self.len == self.near.len() - self.near_head {
            return self.near.get(self.near_head).map(|e| e.time);
        }
        let near = self.near.get(self.near_head).map(|e| e.time);
        let cal = self.find_next().map(|(t, _)| t);
        match (near, cal) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// No pending events?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn ring_index(&self, vb: u64) -> usize {
        (vb & self.bucket_mask) as usize
    }

    fn insert(&mut self, e: Entry) {
        if self.buckets.is_empty() {
            self.buckets = vec![Vec::new(); 1 << INITIAL_BUCKET_BITS];
        }
        let vb = e.time >> self.width_shift;
        // A push that beats the cached minimum becomes the minimum
        // (equal times keep FIFO order: the cached entry has the lower
        // seq and wins, so only a strictly earlier time displaces it).
        match self.next_cache {
            Some((t, _)) if e.time < t => {
                self.cursor_vb = vb;
                self.next_cache = Some((e.time, self.ring_index(vb)));
            }
            // No memoized minimum: an insert behind the cursor (legal
            // for out-of-order pushes) must pull the cursor back, or
            // the day scan would start past the true minimum. When a
            // minimum IS cached, `e.time >= t` implies `vb >= cursor`.
            None if vb < self.cursor_vb => self.cursor_vb = vb,
            _ => {}
        }
        let idx = self.ring_index(vb);
        let bucket = &mut self.buckets[idx];
        // Descending order: binary-search the insertion point. New
        // events usually carry the newest time for their bucket, so
        // this lands near the front of a short vector.
        let pos = bucket.partition_point(|x| x.key() > e.key());
        bucket.insert(pos, e);
    }

    /// Locates the earliest entry: `(time, ring index)`.
    ///
    /// Walks day-by-day from the cursor (amortized O(1): the cursor
    /// only moves forward with simulated time); if one full lap finds
    /// nothing — the pending events are all far in the future — falls
    /// back to a direct scan over the ring and jumps the cursor there.
    fn find_next(&mut self) -> Option<(Cycles, usize)> {
        if self.len == self.near.len() - self.near_head {
            // The calendar side is empty (`len` counts both lanes).
            return None;
        }
        if let Some((t, idx)) = self.next_cache {
            return Some((t, idx));
        }
        let n = self.bucket_mask + 1;
        for step in 0..n {
            let vb = self.cursor_vb + step;
            let idx = self.ring_index(vb);
            if let Some(e) = self.buckets[idx].last() {
                // Only entries belonging to this very day count; the
                // bucket's tail may be an event a whole lap ahead.
                if e.time >> self.width_shift == vb {
                    self.cursor_vb = vb;
                    self.next_cache = Some((e.time, idx));
                    return Some((e.time, idx));
                }
            }
        }
        // Sparse tail: scan every bucket for the global minimum.
        let mut best: Option<(Cycles, u64, usize)> = None;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            if let Some(e) = bucket.last() {
                if best.is_none_or(|(t, s, _)| e.key() < (t, s)) {
                    best = Some((e.time, e.seq, idx));
                }
            }
        }
        let (t, _, idx) = best?;
        self.cursor_vb = t >> self.width_shift;
        self.next_cache = Some((t, idx));
        Some((t, idx))
    }

    /// Re-hashes every entry into a ring of `1 << bits` buckets, with
    /// the bucket width re-calibrated to the mean gap of the live
    /// population (clamped to a power of two via its bit length).
    fn rebuild(&mut self, bits: u32) {
        let entries: Vec<Entry> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        if let (Some(min_t), Some(max_t)) = (
            entries.iter().map(|e| e.time).min(),
            entries.iter().map(|e| e.time).max(),
        ) {
            let mean_gap = ((max_t - min_t) / entries.len() as u64).max(1);
            // floor(log2(mean_gap)), clamped to a sane range.
            self.width_shift = (63 - mean_gap.leading_zeros()).clamp(2, 24);
            self.cursor_vb = min_t >> self.width_shift;
        }
        self.buckets = vec![Vec::new(); 1 << bits];
        self.bucket_mask = (1u64 << bits) - 1;
        self.next_cache = None;
        for e in entries {
            self.insert(e);
        }
    }
}

/// Convenience alias used by tests.
pub type Timestamped = (Cycles, Event);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::Generate { flow: 3 });
        q.push(10, Event::Generate { flow: 1 });
        q.push(20, Event::Generate { flow: 2 });
        let times: Vec<Cycles> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for flow in 0..10u32 {
            q.push(5, Event::Generate { flow });
        }
        let flows: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Generate { flow } => flow,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(flows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7, Event::Complete { node: 0, port: 1 });
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_survive_ring_wraparound() {
        let mut q = EventQueue::new();
        // Default geometry: 256 buckets x 256 cycles = one 65536-cycle
        // lap. These events straddle several laps.
        q.push(5, Event::Generate { flow: 0 });
        q.push(70_000, Event::Generate { flow: 1 });
        q.push(1_000_000, Event::Generate { flow: 2 });
        q.push(70_001, Event::Generate { flow: 3 });
        let order: Vec<(Cycles, Event)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![5, 70_000, 70_001, 1_000_000]
        );
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(100, Event::Generate { flow: 0 });
        assert_eq!(q.pop().unwrap().0, 100);
        // Pushes at the current time after a pop still surface.
        q.push(100, Event::Generate { flow: 1 });
        q.push(356, Event::Generate { flow: 2 });
        assert_eq!(q.pop().unwrap().0, 100);
        assert_eq!(q.pop().unwrap().0, 356);
        assert!(q.pop().is_none());
    }

    #[test]
    fn resize_preserves_order_and_fifo() {
        // Push far past the grow threshold (512 events for the initial
        // 256-bucket ring) with clustered and duplicate times.
        let mut q = EventQueue::new();
        let mut expect: Vec<(Cycles, u64)> = Vec::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..4096u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = state % 10_000;
            q.push(t, Event::Generate { flow: i as u32 });
            expect.push((t, i));
        }
        expect.sort();
        let got: Vec<(Cycles, u32)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::Generate { flow } => (t, flow),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got.len(), expect.len());
        for ((t, seq), (gt, gflow)) in expect.iter().zip(got.iter()) {
            assert_eq!(t, gt);
            assert_eq!(*seq as u32, *gflow, "FIFO broken at t={t}");
        }
    }

    #[test]
    fn matches_reference_heap_on_random_workload() {
        // Differential check against a BinaryHeap with the same
        // (time, seq) order, under a mixed push/pop pattern that mimics
        // the simulator (times never before the last popped time).
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = EventQueue::new();
        let mut h: BinaryHeap<Reverse<(Cycles, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut state = 42u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..20_000u32 {
            let burst = rand() % 4;
            for _ in 0..burst {
                let t = now + rand() % 5000;
                q.push(t, Event::Generate { flow: round });
                h.push(Reverse((t, seq, round)));
                seq += 1;
            }
            if rand() % 3 != 0 {
                let got = q.pop();
                let want = h.pop();
                match (got, want) {
                    (None, None) => {}
                    (Some((t, Event::Generate { flow })), Some(Reverse((wt, _, wf)))) => {
                        assert_eq!((t, flow), (wt, wf), "diverged at round {round}");
                        now = t;
                    }
                    other => panic!("diverged at round {round}: {other:?}"),
                }
            }
        }
        while let Some(Reverse((wt, _, wf))) = h.pop() {
            let (t, e) = q.pop().expect("calendar queue ran dry early");
            let Event::Generate { flow } = e else {
                unreachable!()
            };
            assert_eq!((t, flow), (wt, wf));
        }
        assert!(q.pop().is_none());
    }
}
