//! Time base of the simulator.
//!
//! One **cycle** is the time needed to transmit one byte on a 1x link.
//! The paper's links signal at 2.5 GHz (1x = 2.5 Gbps), so a cycle is
//! 3.2 ns of wall time and a 1x link moves exactly 1 byte/cycle; 4x and
//! 12x links move 4 and 12 bytes per cycle.

/// Simulation time, in cycles.
pub type Cycles = u64;

/// Capacity of a 1x link in Mbps (the paper's 2.5 Gbps signalling rate).
pub const LINK_1X_MBPS: f64 = 2500.0;

/// Wall-clock nanoseconds per cycle at the 1x rate (for reports only).
pub const NS_PER_CYCLE: f64 = 3.2;

/// Cycles needed to move `bytes` bytes over a link of
/// `bytes_per_cycle` capacity, rounded up, minimum 1.
#[must_use]
#[inline]
pub fn cycles_for_bytes(bytes: u64, bytes_per_cycle: u64) -> Cycles {
    debug_assert!(bytes_per_cycle > 0);
    // The paper's time base is 1 byte/cycle; skip the hardware divide
    // on that (overwhelmingly common) configuration.
    if bytes_per_cycle == 1 {
        return bytes.max(1);
    }
    bytes.div_ceil(bytes_per_cycle).max(1)
}

/// The CBR inter-packet interval (cycles) of a flow sending
/// `packet_bytes`-byte packets at `mbps` megabits per second, on the
/// 1-byte-per-cycle time base.
///
/// `interval = packet_bytes · (2500 / mbps)` cycles, rounded to nearest.
#[must_use]
pub fn interval_for_rate(packet_bytes: u64, mbps: f64) -> Cycles {
    assert!(mbps > 0.0, "rate must be positive");
    let cycles = packet_bytes as f64 * (LINK_1X_MBPS / mbps);
    cycles.round().max(1.0) as Cycles
}

/// The effective rate (Mbps) of a flow sending `packet_bytes` every
/// `interval` cycles — inverse of [`interval_for_rate`].
#[must_use]
pub fn rate_for_interval(packet_bytes: u64, interval: Cycles) -> f64 {
    assert!(interval > 0);
    packet_bytes as f64 / interval as f64 * LINK_1X_MBPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_per_cycle_on_1x() {
        assert_eq!(cycles_for_bytes(256, 1), 256);
        assert_eq!(cycles_for_bytes(4096, 1), 4096);
    }

    #[test]
    fn faster_links_divide() {
        assert_eq!(cycles_for_bytes(256, 4), 64);
        assert_eq!(cycles_for_bytes(256, 12), 22); // ceil(256/12)
        assert_eq!(cycles_for_bytes(1, 12), 1);
    }

    #[test]
    fn full_rate_interval_equals_packet_time() {
        // A 2500 Mbps flow saturates the 1x link: one packet per
        // packet-time.
        assert_eq!(interval_for_rate(256, 2500.0), 256);
    }

    #[test]
    fn interval_scales_inversely_with_rate() {
        // 1 Mbps with 256-byte packets: 2500x the packet time.
        assert_eq!(interval_for_rate(256, 1.0), 256 * 2500);
        // 128 Mbps: ~19.5x.
        let i = interval_for_rate(256, 128.0);
        assert_eq!(i, 5000);
    }

    #[test]
    fn rate_interval_roundtrip() {
        for mbps in [0.5, 1.0, 16.0, 128.0, 1250.0] {
            for bytes in [64u64, 256, 2048, 4096] {
                let i = interval_for_rate(bytes, mbps);
                let back = rate_for_interval(bytes, i);
                assert!(
                    (back - mbps).abs() / mbps < 0.01,
                    "{mbps} Mbps {bytes}B -> {i} cycles -> {back} Mbps"
                );
            }
        }
    }
}
