//! Simulator configuration.

use iba_core::SlToVlMap;

/// Wire overhead of one IBA packet when header modelling is enabled:
/// LRH (8) + BTH (12) + ICRC (4) + VCRC (2) bytes.
pub const IBA_HEADER_BYTES: u32 = 26;

/// Which arbitration engine the fabric's output ports run.
///
/// Both modes implement the exact same `VLArbitrationTable` semantics
/// and produce byte-identical grant sequences (the differential test
/// suite holds them to that); they differ only in per-grant cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ArbiterMode {
    /// Tables are compiled into flat grant streams on every change and
    /// the hot path walks the compiled array
    /// ([`iba_core::CompiledVlArb`]). The default.
    #[default]
    Compiled,
    /// Tables are re-interpreted entry by entry on every grant
    /// ([`iba_core::VlArbEngine`]) — the reference implementation the
    /// compiled mode is differentially tested against.
    Interpreted,
}

/// Global parameters of a simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Packet MTU in bytes (256, 1024, 2048 or 4096 per the spec; the
    /// VL buffer capacity is sized from it).
    pub mtu: u32,
    /// VL buffer depth in whole packets (paper: 4).
    pub vl_buffer_packets: u32,
    /// Link capacity in bytes per cycle (1 = 1x, 4 = 4x, 12 = 12x).
    pub link_bytes_per_cycle: u64,
    /// The fabric-wide SLtoVL mapping applied by every sender.
    pub sl_to_vl: SlToVlMap,
    /// Per-packet header bytes added on the wire (0 = headers folded
    /// into the flow's packet size, the default; set to
    /// [`IBA_HEADER_BYTES`] to model LRH/BTH/CRC overhead explicitly —
    /// this is what makes small packets cost relatively more wire, the
    /// effect the paper notes under Table 2).
    pub header_bytes: u32,
    /// Priority-aware crossbar input claiming (extension, default off).
    ///
    /// With the plain multiplexed crossbar a low-priority transfer can
    /// occupy an input port while a high-priority packet at that input
    /// waits for another (momentarily busy) output — a small priority
    /// inversion under sustained best-effort overload. When this flag is
    /// set, an output serving its *low*-priority table declines to claim
    /// an input that currently holds a transmittable high-priority
    /// packet for some other output, eliminating the inversion at the
    /// cost of slightly lower best-effort throughput.
    pub priority_input_claiming: bool,
    /// Arbitration engine variant (compiled grant streams by default;
    /// interpreted table walking for differential testing).
    pub arbiter: ArbiterMode,
}

impl SimConfig {
    /// The paper's configuration: chosen MTU, 4-packet VL buffers,
    /// 1x links, identity SL→VL mapping.
    #[must_use]
    pub fn paper_default(mtu: u32) -> Self {
        assert!(
            matches!(mtu, 256 | 1024 | 2048 | 4096),
            "IBA MTUs are 256B, 1KB, 2KB or 4KB"
        );
        SimConfig {
            mtu,
            vl_buffer_packets: 4,
            link_bytes_per_cycle: 1,
            sl_to_vl: SlToVlMap::identity(),
            header_bytes: 0,
            priority_input_claiming: false,
            arbiter: ArbiterMode::default(),
        }
    }

    /// Same, with explicit IBA header overhead per packet.
    #[must_use]
    pub fn with_headers(mtu: u32) -> Self {
        SimConfig {
            header_bytes: IBA_HEADER_BYTES,
            ..Self::paper_default(mtu)
        }
    }

    /// VL buffer capacity in bytes (sized for whole packets including
    /// headers).
    #[must_use]
    pub fn vl_buffer_bytes(&self) -> u64 {
        u64::from(self.mtu + self.header_bytes) * u64::from(self.vl_buffer_packets)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.mtu, 256);
        assert_eq!(c.vl_buffer_bytes(), 1024);
        assert_eq!(c.link_bytes_per_cycle, 1);
    }

    #[test]
    fn large_packets() {
        let c = SimConfig::paper_default(4096);
        assert_eq!(c.vl_buffer_bytes(), 16384);
    }

    #[test]
    #[should_panic(expected = "IBA MTUs")]
    fn invalid_mtu_rejected() {
        let _ = SimConfig::paper_default(512);
    }
}
