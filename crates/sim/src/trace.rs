//! Measurement hooks: the simulator reports every delivery to an
//! [`Observer`].

use crate::time::Cycles;
use iba_core::ServiceLevel;
use iba_topo::HostId;

/// Everything a measurement needs to know about one delivered packet.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryRecord {
    /// Flow (connection) id.
    pub flow: u32,
    /// Sequence number within the flow.
    pub seq: u64,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Service level.
    pub sl: ServiceLevel,
    /// Wire size in bytes.
    pub bytes: u32,
    /// Generation time at the source.
    pub created: Cycles,
    /// Arrival time at the destination host.
    pub delivered: Cycles,
}

impl DeliveryRecord {
    /// End-to-end delay in cycles.
    #[must_use]
    pub fn delay(&self) -> Cycles {
        self.delivered - self.created
    }
}

/// Receives simulation measurements.
pub trait Observer {
    /// A packet arrived at its destination host.
    fn on_delivered(&mut self, record: &DeliveryRecord);

    /// A packet was generated at its source (default: ignored).
    fn on_generated(&mut self, _flow: u32, _bytes: u32, _now: Cycles) {}
}

/// Discards all measurements (warm-up phases, throughput-only runs).
#[derive(Default, Clone, Copy, Debug)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_delivered(&mut self, _record: &DeliveryRecord) {}
}

/// Collects every delivery (tests and small runs only — one record per
/// packet).
#[derive(Default, Debug)]
pub struct VecObserver {
    /// The collected records.
    pub records: Vec<DeliveryRecord>,
}

impl Observer for VecObserver {
    fn on_delivered(&mut self, record: &DeliveryRecord) {
        self.records.push(*record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_delivery_minus_creation() {
        let r = DeliveryRecord {
            flow: 1,
            seq: 2,
            src: HostId(0),
            dst: HostId(1),
            sl: ServiceLevel::new(3).unwrap(),
            bytes: 256,
            created: 100,
            delivered: 400,
        };
        assert_eq!(r.delay(), 300);
    }

    #[test]
    fn vec_observer_collects() {
        let mut o = VecObserver::default();
        let r = DeliveryRecord {
            flow: 0,
            seq: 0,
            src: HostId(0),
            dst: HostId(0),
            sl: ServiceLevel::new(0).unwrap(),
            bytes: 64,
            created: 0,
            delivered: 64,
        };
        o.on_delivered(&r);
        o.on_delivered(&r);
        assert_eq!(o.records.len(), 2);
    }
}
