//! Input and output port state.

use crate::arb::PortArbiter;
use crate::buffer::{Credits, VlQueueSet};
use crate::fault::FaultState;
use crate::packet::Packet;
use crate::time::Cycles;

/// Where a port's link leads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Peer {
    /// Input port `port` of switch `switch`.
    SwitchIn {
        /// Peer switch index.
        switch: u16,
        /// Peer input port.
        port: u8,
    },
    /// A host (consumes instantly).
    Host(u16),
    /// Unwired.
    None,
}

/// Counters kept per output port.
#[derive(Clone, Copy, Default, Debug)]
pub struct PortStats {
    /// Cycles the link spent transmitting.
    pub busy_cycles: Cycles,
    /// Total bytes put on the wire.
    pub bytes: u64,
    /// Packets transmitted.
    pub packets: u64,
    /// Bytes granted by the high-priority table.
    pub high_bytes: u64,
    /// Bytes granted by the low-priority table.
    pub low_bytes: u64,
    /// Bytes of VL15 (management) traffic.
    pub vl15_bytes: u64,
    /// Bytes transmitted per VL (index = lane).
    pub per_vl_bytes: [u64; 16],
}

impl PortStats {
    /// Link utilisation over a window of `window` cycles at
    /// `bytes_per_cycle` capacity, in percent.
    #[must_use]
    pub fn utilization(&self, window: Cycles, bytes_per_cycle: u64) -> f64 {
        if window == 0 {
            return 0.0;
        }
        100.0 * self.bytes as f64 / (window as f64 * bytes_per_cycle as f64)
    }
}

/// A transfer currently on the wire.
#[derive(Debug)]
pub struct InFlight {
    /// The packet being moved.
    pub packet: Packet,
    /// Input port it left from (`None` when injected by a host).
    pub src_input: Option<u8>,
    /// VL it travels on (downstream buffer lane).
    pub vl: u8,
}

/// Output side of a port: arbitration engine, downstream credits, link
/// state and statistics.
#[derive(Debug)]
pub struct OutputPort {
    /// Arbiter over this port's `VLArbitrationTable` (compiled grant
    /// stream by default; see [`crate::config::ArbiterMode`]).
    pub arb: PortArbiter,
    /// Credits for the downstream input buffers.
    pub credits: Credits,
    /// Where the link leads.
    pub peer: Peer,
    /// The transfer in progress, if any.
    pub inflight: Option<InFlight>,
    /// Round-robin pointer over input ports (switch outputs only).
    pub next_input: u8,
    /// Injected fault state (healthy by default).
    pub fault: FaultState,
    /// Counters.
    pub stats: PortStats,
}

impl OutputPort {
    /// An idle output port.
    #[must_use]
    pub fn new(arb: PortArbiter, credits: Credits, peer: Peer) -> Self {
        OutputPort {
            arb,
            credits,
            peer,
            inflight: None,
            next_input: 0,
            fault: FaultState::default(),
            stats: PortStats::default(),
        }
    }

    /// Is the link currently transmitting?
    #[must_use]
    pub fn busy(&self) -> bool {
        self.inflight.is_some()
    }
}

/// Input side of a switch port: 16 VL buffers plus the crossbar busy
/// flag ("only a VL of each input port can be transmitting at the same
/// time").
#[derive(Debug)]
pub struct InputPort {
    /// Receive buffers, one per VL, in struct-of-arrays layout with an
    /// occupancy bitmask for the arbitration candidate scan.
    pub vls: VlQueueSet,
    /// Output port the head packet of each VL routes to (valid only
    /// while the lane's `occupied` bit is set). Routing is static for
    /// the lifetime of a run, so the fabric refreshes this cache on the
    /// push/pop that changes a lane's head and the candidate scan never
    /// touches the routing table or the packet pool.
    pub head_route: [u8; 16],
    /// Whether the crossbar is currently draining this port.
    pub busy: bool,
}

impl InputPort {
    /// Empty input port with `capacity` bytes per VL buffer.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        InputPort {
            vls: VlQueueSet::new(capacity),
            head_route: [0; 16],
            busy: false,
        }
    }

    /// Total buffered bytes over all VLs.
    #[must_use]
    pub fn buffered(&self) -> u64 {
        self.vls.total_used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = PortStats {
            bytes: 500,
            ..Default::default()
        };
        assert_eq!(s.utilization(1000, 1), 50.0);
        assert_eq!(s.utilization(1000, 4), 12.5);
        assert_eq!(s.utilization(0, 1), 0.0);
    }

    #[test]
    fn input_port_starts_idle_and_empty() {
        let p = InputPort::new(1024);
        assert!(!p.busy);
        assert_eq!(p.buffered(), 0);
        assert_eq!(p.vls.occupied(), 0);
    }
}
