//! Deterministic fault injection: seeded fault plans delivered through
//! the event calendar.
//!
//! A [`FaultPlan`] is a seeded schedule of [`FaultAction`]s — link-rate
//! degradation, link flaps, VL blackouts, credit stalls and VLArb
//! table corruption — applied to a [`crate::fabric::Fabric`] via
//! [`crate::fabric::Fabric::apply_fault_plan`]. Each action is pushed
//! onto the **same calendar queue** as every other simulation event, so
//! a faulted run keeps the exact `(time, seq)` total order of the
//! healthy one: runs are byte-identical for a given plan seed at any
//! worker-thread count (each fabric is single-threaded; sweeps
//! parallelise across fabrics).
//!
//! Transient actions come in pairs — the generator always schedules the
//! matching restore (`LinkUp`, zero masks, shift 0) so a plan describes
//! a bounded disturbance, not a permanent outage. Table corruption is
//! one-shot: healing it is the recovery manager's job, not the plan's.

use crate::fabric::NodeId;
use crate::time::Cycles;
use iba_core::{SplitMix64, VlArbConfig};
use iba_obs::fault_code;

/// Live fault state of one output port, consulted by the arbitration
/// hot path. The default state is "healthy" and costs two branch tests
/// per kick.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FaultState {
    /// Transfer durations are scaled by `1 << rate_shift` (0 = full
    /// rate, 1 = half rate, ...).
    pub rate_shift: u8,
    /// Link is down: no transfers start until a `LinkUp` restores it.
    pub down: bool,
    /// Bit `v` set: VL `v` is blacked out (its head packets are never
    /// offered to the arbiter).
    pub blackout_mask: u16,
    /// Bit `v` set: VL `v` is treated as having no downstream credits.
    pub stall_mask: u16,
}

impl FaultState {
    /// Is the port in its healthy default state?
    #[must_use]
    pub fn healthy(&self) -> bool {
        *self == FaultState::default()
    }
}

/// One scheduled fault (or restore) action against an output port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Scale the port's transfer durations by `1 << shift`
    /// (`shift == 0` restores full rate).
    DegradeLink {
        /// Target node.
        node: NodeId,
        /// Target output port (hosts: always 0).
        port: u8,
        /// Duration scale exponent.
        shift: u8,
    },
    /// Take the link down: no new transfers start.
    LinkDown {
        /// Target node.
        node: NodeId,
        /// Target output port.
        port: u8,
    },
    /// Bring a downed link back up.
    LinkUp {
        /// Target node.
        node: NodeId,
        /// Target output port.
        port: u8,
    },
    /// Replace the port's VL blackout mask (`0` restores all VLs).
    SetVlBlackout {
        /// Target node.
        node: NodeId,
        /// Target output port.
        port: u8,
        /// New blackout mask (bit per VL).
        mask: u16,
    },
    /// Replace the port's credit-stall mask (`0` restores all VLs).
    SetCreditStall {
        /// Target node.
        node: NodeId,
        /// Target output port.
        port: u8,
        /// New stall mask (bit per VL).
        mask: u16,
    },
    /// Deterministically corrupt the port's installed arbitration
    /// table: seeded weight loss/garbling over the high-priority
    /// entries. One-shot — repair is the recovery layer's job.
    CorruptTable {
        /// Target node.
        node: NodeId,
        /// Target output port.
        port: u8,
        /// Corruption sub-seed.
        seed: u64,
    },
    /// Control-plane fault: crash the admission-service shard worker
    /// handling trace operation `op`. Consumed by
    /// [`iba_qos::service::ServeFaultPlan::from_calendar`]; the fabric
    /// ignores it.
    ServeCrash {
        /// Targeted trace-operation index.
        op: u32,
    },
    /// Control-plane fault: lose or delay the coordinator→shard vote
    /// message of trace operation `op`.
    ServeVoteLoss {
        /// Targeted trace-operation index.
        op: u32,
    },
    /// Control-plane fault: lose the shard→coordinator reply of trace
    /// operation `op`.
    ServeReplyLoss {
        /// Targeted trace-operation index.
        op: u32,
    },
}

impl FaultAction {
    /// The output port this action targets. Control-plane (serve)
    /// actions have no port target and report `(Switch(0), 0)`; use
    /// [`FaultAction::is_control_plane`] to filter them out before
    /// touching the fabric.
    #[must_use]
    pub fn target(&self) -> (NodeId, u8) {
        match *self {
            FaultAction::DegradeLink { node, port, .. }
            | FaultAction::LinkDown { node, port }
            | FaultAction::LinkUp { node, port }
            | FaultAction::SetVlBlackout { node, port, .. }
            | FaultAction::SetCreditStall { node, port, .. }
            | FaultAction::CorruptTable { node, port, .. } => (node, port),
            FaultAction::ServeCrash { .. }
            | FaultAction::ServeVoteLoss { .. }
            | FaultAction::ServeReplyLoss { .. } => (NodeId::Switch(0), 0),
        }
    }

    /// Does this action target the admission-service control plane
    /// (rather than a fabric port)?
    #[must_use]
    pub fn is_control_plane(&self) -> bool {
        matches!(
            *self,
            FaultAction::ServeCrash { .. }
                | FaultAction::ServeVoteLoss { .. }
                | FaultAction::ServeReplyLoss { .. }
        )
    }

    /// The `fault_code` this action is traced under.
    #[must_use]
    pub fn code(&self) -> u8 {
        match *self {
            FaultAction::DegradeLink { shift, .. } if shift > 0 => fault_code::LINK_DEGRADE,
            FaultAction::DegradeLink { .. } | FaultAction::LinkUp { .. } => fault_code::LINK_UP,
            FaultAction::LinkDown { .. } => fault_code::LINK_DOWN,
            FaultAction::SetVlBlackout { .. } => fault_code::VL_BLACKOUT,
            FaultAction::SetCreditStall { .. } => fault_code::CREDIT_STALL,
            FaultAction::CorruptTable { .. } => fault_code::TABLE_CORRUPT,
            FaultAction::ServeCrash { .. } => fault_code::SERVE_CRASH,
            FaultAction::ServeVoteLoss { .. } => fault_code::SERVE_VOTE_LOSS,
            FaultAction::ServeReplyLoss { .. } => fault_code::SERVE_REPLY_LOSS,
        }
    }
}

/// Deterministically corrupts an installed arbitration table: seeded
/// weight loss (entry zeroed, the table "forgets" a VL) and weight
/// garbling over the high-priority entries. At least one entry is
/// always damaged when the high table is non-empty, so a corruption
/// event is never a silent no-op.
#[must_use]
pub fn corrupt_config(cfg: &VlArbConfig, seed: u64) -> VlArbConfig {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0BAD_7AB1_E0C0_FFEE);
    let mut out = cfg.clone();
    let mut changed = false;
    for e in &mut out.high {
        match rng.next_u64() % 4 {
            0 => {
                e.weight = 0;
                changed = true;
            }
            1 => {
                e.weight = (rng.next_u64() & 0xFF) as u8;
                changed = true;
            }
            _ => {}
        }
    }
    if !changed {
        if let Some(e) = out.high.first_mut() {
            e.weight = 0;
        }
    }
    out
}

/// Packs a fault target into the 16-bit `port` field of a
/// [`iba_obs::TraceEvent::Fault`] record: hosts set the top bit,
/// switches carry `switch << 8 | port`.
#[must_use]
pub fn encode_target(node: NodeId, port: u8) -> u16 {
    match node {
        NodeId::Switch(s) => (s << 8) | u16::from(port),
        NodeId::Host(h) => 0x8000 | (h & 0x7FFF),
    }
}

/// A seeded, time-ordered schedule of fault actions.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// `(fire time, action)` pairs; applied in calendar order.
    pub events: Vec<(Cycles, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds one action at `at`.
    pub fn push(&mut self, at: Cycles, action: FaultAction) {
        self.events.push((at, action));
    }

    /// Generates a bounded chaos schedule over a fabric of `switches`
    /// switches with `ports` output ports each and `hosts` hosts.
    ///
    /// Faults fire inside `[start, start + horizon)`; every transient
    /// fault is paired with its restore no later than `start + horizon`,
    /// so the fabric is structurally healthy again after the window
    /// (corrupted tables stay corrupted — that is the recovery
    /// manager's problem). Deterministic in all arguments.
    #[must_use]
    pub fn generate(
        seed: u64,
        start: Cycles,
        horizon: Cycles,
        switches: u16,
        ports: u8,
        hosts: u16,
    ) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xFA01_7BAD_5EED_0001);
        let mut plan = FaultPlan::new(seed);
        let horizon = horizon.max(16);
        let faults = 3 + (rng.next_u64() % 4) as usize;
        for _ in 0..faults {
            let (node, port) = pick_target(&mut rng, switches, ports, hosts);
            let at = start + rng.next_u64() % (horizon / 2);
            // Outages last between 1/16 and 1/4 of the window.
            let dur = horizon / 16 + rng.next_u64() % (horizon / 4);
            let end = (at + dur).min(start + horizon);
            match rng.next_u64() % 5 {
                0 => {
                    let shift = 1 + (rng.next_u64() % 3) as u8;
                    plan.push(at, FaultAction::DegradeLink { node, port, shift });
                    plan.push(
                        end,
                        FaultAction::DegradeLink {
                            node,
                            port,
                            shift: 0,
                        },
                    );
                }
                1 => {
                    plan.push(at, FaultAction::LinkDown { node, port });
                    plan.push(end, FaultAction::LinkUp { node, port });
                }
                2 => {
                    let mask = 1u16 << (rng.next_u64() % 15);
                    plan.push(at, FaultAction::SetVlBlackout { node, port, mask });
                    plan.push(
                        end,
                        FaultAction::SetVlBlackout {
                            node,
                            port,
                            mask: 0,
                        },
                    );
                }
                3 => {
                    let mask = 1u16 << (rng.next_u64() % 15);
                    plan.push(at, FaultAction::SetCreditStall { node, port, mask });
                    plan.push(
                        end,
                        FaultAction::SetCreditStall {
                            node,
                            port,
                            mask: 0,
                        },
                    );
                }
                _ => {
                    let seed = rng.next_u64();
                    plan.push(at, FaultAction::CorruptTable { node, port, seed });
                }
            }
        }
        // Calendar insertion order is part of the deterministic
        // contract: sort by time (ties keep generation order).
        plan.events.sort_by_key(|&(t, _)| t);
        plan
    }

    /// Generates a control-plane chaos schedule against an admission
    /// trace of `ops` operations: at most one serve fault per
    /// operation, roughly one op in three targeted. Fire times are the
    /// operation indices, so the schedule is time-sorted by
    /// construction and shard-count independent. Deterministic in both
    /// arguments; never touches the fabric-fault domain of
    /// [`FaultPlan::generate`].
    #[must_use]
    pub fn generate_control(seed: u64, ops: usize) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xC7A0_17A7_FA17_5EED);
        let mut plan = FaultPlan::new(seed);
        for op in 0..ops {
            let roll = rng.next_u64() % 100;
            let kind = rng.next_u64() % 3;
            if roll >= 33 {
                continue;
            }
            let op = op as u32;
            let action = match kind {
                0 => FaultAction::ServeCrash { op },
                1 => FaultAction::ServeVoteLoss { op },
                _ => FaultAction::ServeReplyLoss { op },
            };
            plan.push(Cycles::from(op), action);
        }
        plan
    }
}

fn pick_target(rng: &mut SplitMix64, switches: u16, ports: u8, hosts: u16) -> (NodeId, u8) {
    let switch_ports = u64::from(switches) * u64::from(ports);
    let total = (switch_ports + u64::from(hosts)).max(1);
    let pick = rng.next_u64() % total;
    if pick < switch_ports && ports > 0 {
        (
            NodeId::Switch((pick / u64::from(ports)) as u16),
            (pick % u64::from(ports)) as u8,
        )
    } else if hosts > 0 {
        (
            NodeId::Host((pick.saturating_sub(switch_ports) % u64::from(hosts)) as u16),
            0,
        )
    } else {
        (NodeId::Switch(0), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = FaultPlan::generate(7, 1000, 100_000, 4, 4, 8);
        let b = FaultPlan::generate(7, 1000, 100_000, 4, 4, 8);
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, 0, 100_000, 4, 4, 8);
        let b = FaultPlan::generate(2, 0, 100_000, 4, 4, 8);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn transient_faults_are_paired_with_restores() {
        let plan = FaultPlan::generate(42, 500, 50_000, 4, 4, 8);
        let mut downs = 0i64;
        for &(_, a) in &plan.events {
            match a {
                FaultAction::LinkDown { .. } => downs += 1,
                FaultAction::LinkUp { .. } => downs -= 1,
                FaultAction::DegradeLink { shift, .. } => {
                    if shift > 0 {
                        downs += 1;
                    } else {
                        downs -= 1;
                    }
                }
                FaultAction::SetVlBlackout { mask, .. }
                | FaultAction::SetCreditStall { mask, .. } => {
                    if mask != 0 {
                        downs += 1;
                    } else {
                        downs -= 1;
                    }
                }
                FaultAction::CorruptTable { .. }
                | FaultAction::ServeCrash { .. }
                | FaultAction::ServeVoteLoss { .. }
                | FaultAction::ServeReplyLoss { .. } => {}
            }
        }
        assert_eq!(downs, 0, "every transient fault must have a restore");
    }

    #[test]
    fn generate_control_is_deterministic_and_control_plane_only() {
        let a = FaultPlan::generate_control(7, 64);
        let b = FaultPlan::generate_control(7, 64);
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty());
        assert_ne!(a.events, FaultPlan::generate_control(8, 64).events);
        let mut last = 0;
        for &(t, action) in &a.events {
            assert!(action.is_control_plane());
            assert!(t >= last, "control plan not time-sorted");
            last = t;
        }
        // At most one fault per op, and fire time == op index.
        let ops: Vec<u64> = a.events.iter().map(|&(t, _)| t).collect();
        let mut deduped = ops.clone();
        deduped.dedup();
        assert_eq!(ops, deduped, "more than one fault scheduled for an op");
    }

    #[test]
    fn serve_actions_carry_serve_fault_codes() {
        assert_eq!(
            FaultAction::ServeCrash { op: 3 }.code(),
            fault_code::SERVE_CRASH
        );
        assert_eq!(
            FaultAction::ServeVoteLoss { op: 3 }.code(),
            fault_code::SERVE_VOTE_LOSS
        );
        assert_eq!(
            FaultAction::ServeReplyLoss { op: 3 }.code(),
            fault_code::SERVE_REPLY_LOSS
        );
        assert!(FaultAction::ServeCrash { op: 0 }.is_control_plane());
        assert!(!FaultAction::LinkDown {
            node: NodeId::Switch(0),
            port: 0
        }
        .is_control_plane());
    }

    #[test]
    fn events_are_time_sorted_and_bounded() {
        let start = 1_000;
        let horizon = 80_000;
        let plan = FaultPlan::generate(9, start, horizon, 2, 4, 4);
        let mut last = 0;
        for &(t, _) in &plan.events {
            assert!(t >= last, "plan not time-sorted");
            assert!(t >= start && t <= start + horizon);
            last = t;
        }
    }

    #[test]
    fn target_encoding_separates_hosts_and_switches() {
        assert_eq!(encode_target(NodeId::Switch(3), 2), 0x0302);
        assert_eq!(encode_target(NodeId::Host(5), 0), 0x8005);
        assert_ne!(
            encode_target(NodeId::Switch(0), 5),
            encode_target(NodeId::Host(5), 0)
        );
    }

    #[test]
    fn action_codes_match_contract() {
        let n = NodeId::Switch(0);
        assert_eq!(
            FaultAction::LinkDown { node: n, port: 0 }.code(),
            fault_code::LINK_DOWN
        );
        assert_eq!(
            FaultAction::LinkUp { node: n, port: 0 }.code(),
            fault_code::LINK_UP
        );
        assert_eq!(
            FaultAction::DegradeLink {
                node: n,
                port: 0,
                shift: 2
            }
            .code(),
            fault_code::LINK_DEGRADE
        );
        assert_eq!(
            FaultAction::DegradeLink {
                node: n,
                port: 0,
                shift: 0
            }
            .code(),
            fault_code::LINK_UP
        );
    }

    #[test]
    fn default_state_is_healthy() {
        let mut st = FaultState::default();
        assert!(st.healthy());
        st.down = true;
        assert!(!st.healthy());
    }
}
