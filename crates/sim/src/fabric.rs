//! The fabric: nodes, links, and the deterministic event loop.

use crate::arb::PortArbiter;
use crate::buffer::{Credits, PacketPool, VlQueueSet};
use crate::config::SimConfig;
use crate::event::{Event, EventQueue};
use crate::fault::{corrupt_config, encode_target, FaultAction, FaultPlan, FaultState};
use crate::invariants;
use crate::packet::{FlowSpec, Packet};
use crate::port::{InFlight, InputPort, OutputPort, Peer, PortStats};
use crate::time::{cycles_for_bytes, Cycles};
use crate::trace::{DeliveryRecord, Observer};
use iba_core::{ArbEntry, ServedBy, VirtualLane, VlArbConfig};
use iba_obs::{NullRecorder, Recorder, ServedKind};
use iba_topo::{HostId, PortPeer, RoutingTable, SwitchId, Topology};

/// A node of the fabric.
///
/// The derived `Ord` (switches before hosts, then index) is the
/// fabric-wide canonical node order; `BTreeMap<PortKey, _>` registries
/// and report sorting rely on it staying aligned with the variant
/// declaration order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeId {
    /// A switch.
    Switch(u16),
    /// A host channel adapter.
    Host(u16),
}

impl NodeId {
    fn encode(self) -> u32 {
        match self {
            NodeId::Switch(s) => u32::from(s),
            NodeId::Host(h) => 0x8000_0000 | u32::from(h),
        }
    }

    fn decode(v: u32) -> Self {
        if v & 0x8000_0000 != 0 {
            NodeId::Host((v & 0x7FFF_FFFF) as u16)
        } else {
            NodeId::Switch(v as u16)
        }
    }
}

struct SwitchNode {
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
}

struct HostNode {
    out: OutputPort,
    /// Per-VL injection queues (unbounded: sources are paced by their
    /// arrival process, not by back-pressure). Packets live in the
    /// fabric's shared pool.
    queues: VlQueueSet,
    injected_bytes: u64,
    injected_packets: u64,
    delivered_bytes: u64,
    delivered_packets: u64,
}

struct FlowState {
    spec: FlowSpec,
    next_seq: u64,
}

/// Aggregate measurements over the current statistics window.
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    /// Window length in cycles.
    pub window: Cycles,
    /// Bytes generated at all sources during the window.
    pub injected_bytes: u64,
    /// Packets generated.
    pub injected_packets: u64,
    /// Bytes delivered to all destinations.
    pub delivered_bytes: u64,
    /// Packets delivered.
    pub delivered_packets: u64,
    /// Mean utilisation (%) over host links (both directions).
    pub host_link_utilization: f64,
    /// Mean utilisation (%) over switch-to-switch links.
    pub switch_link_utilization: f64,
    /// Mean utilisation (%) over host links counting only
    /// high-priority-table (QoS) bytes — the paper's Table 2 accounting,
    /// whose reachable maximum is the QoS reservation cap.
    pub host_link_qos_utilization: f64,
    /// Mean QoS-only utilisation (%) over switch-to-switch links.
    pub switch_link_qos_utilization: f64,
}

impl FabricStats {
    /// Injected traffic in bytes/cycle/node, the unit of the paper's
    /// Table 2.
    #[must_use]
    pub fn injected_per_node(&self, hosts: usize) -> f64 {
        if self.window == 0 || hosts == 0 {
            return 0.0;
        }
        self.injected_bytes as f64 / self.window as f64 / hosts as f64
    }

    /// Delivered traffic in bytes/cycle/node.
    #[must_use]
    pub fn delivered_per_node(&self, hosts: usize) -> f64 {
        if self.window == 0 || hosts == 0 {
            return 0.0;
        }
        self.delivered_bytes as f64 / self.window as f64 / hosts as f64
    }
}

/// The simulator: a fabric of switches and hosts driven by a
/// deterministic event loop.
pub struct Fabric {
    topo: Topology,
    routing: RoutingTable,
    config: SimConfig,
    switches: Vec<SwitchNode>,
    hosts: Vec<HostNode>,
    flows: Vec<FlowState>,
    /// Backing storage for every queued packet in the fabric.
    pool: PacketPool,
    queue: EventQueue,
    /// Registered fault actions, addressed by [`Event::Fault`] index.
    faults: Vec<FaultAction>,
    now: Cycles,
    window_start: Cycles,
    events_processed: u64,
    /// Arbitration schedules compiled so far (initial port setup plus
    /// one per table change).
    schedule_compiles: u64,
    /// Compiled schedules invalidated by a table change (admit,
    /// teardown, repair, fault corruption — every mutation path).
    schedule_invalidations: u64,
}

impl Fabric {
    /// Builds an idle fabric over `topo` with `routing` tables and the
    /// given configuration. All arbitration tables start as a plain
    /// round-robin over the data VLs in the low-priority table;
    /// experiments overwrite them via [`Fabric::set_output_table`].
    #[must_use]
    pub fn new(topo: Topology, routing: RoutingTable, config: SimConfig) -> Self {
        let cap = config.vl_buffer_bytes();
        // Compile the default schedule once and clone it onto every
        // port: a clone is a flat copy of the compiled arrays, far
        // cheaper than validating and compiling per port.
        let proto = PortArbiter::new(Self::default_arb_config(), config.arbiter);

        let switches: Vec<SwitchNode> = topo
            .switch_ids()
            .map(|s| {
                let n = topo.ports_per_switch() as usize;
                let inputs = (0..n).map(|_| InputPort::new(cap)).collect();
                let outputs = (0..n)
                    .map(|p| {
                        let peer = match topo.peer(s, p as u8) {
                            PortPeer::Switch { switch, port } => Peer::SwitchIn {
                                switch: switch.0,
                                port,
                            },
                            PortPeer::Host(h) => Peer::Host(h.0),
                            PortPeer::Free => Peer::None,
                        };
                        OutputPort::new(proto.clone(), Credits::full(cap), peer)
                    })
                    .collect();
                SwitchNode { inputs, outputs }
            })
            .collect();

        let hosts: Vec<HostNode> = topo
            .host_ids()
            .map(|h| {
                let att = topo.host(h);
                HostNode {
                    out: OutputPort::new(
                        proto.clone(),
                        Credits::full(cap),
                        Peer::SwitchIn {
                            switch: att.switch.0,
                            port: att.port,
                        },
                    ),
                    queues: VlQueueSet::unbounded(),
                    injected_bytes: 0,
                    injected_packets: 0,
                    delivered_bytes: 0,
                    delivered_packets: 0,
                }
            })
            .collect();

        let initial_compiles =
            switches.iter().map(|s| s.outputs.len() as u64).sum::<u64>() + hosts.len() as u64;

        Fabric {
            topo,
            routing,
            config,
            switches,
            hosts,
            flows: Vec::new(),
            pool: PacketPool::new(),
            queue: EventQueue::new(),
            faults: Vec::new(),
            now: 0,
            window_start: 0,
            events_processed: 0,
            schedule_compiles: initial_compiles,
            schedule_invalidations: 0,
        }
    }

    /// The fallback arbitration table: every data VL in the low-priority
    /// table with maximum weight (plain round-robin, no QoS).
    #[must_use]
    pub fn default_arb_config() -> VlArbConfig {
        VlArbConfig::low_only(
            VirtualLane::all_data()
                .map(|vl| ArbEntry { vl, weight: 255 })
                .collect(),
        )
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing tables in use.
    #[must_use]
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Events processed so far (performance metric).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Installs an arbitration table on one output port.
    ///
    /// This invalidates the port's compiled grant schedule and compiles
    /// the new table (every mutation path — admit, teardown, repair,
    /// fault corruption — funnels through here or through the fault
    /// handler's corruption arm).
    pub fn set_output_table(&mut self, node: NodeId, port: u8, cfg: VlArbConfig) {
        self.set_output_table_recorded(node, port, cfg, &mut NullRecorder);
    }

    /// [`Fabric::set_output_table`] with instrumentation: fires the
    /// recorder's `schedule_invalidated` / `schedule_compiled` hooks so
    /// the `schedule_invalidate_total` / `schedule_compile_total`
    /// metrics attribute recompiles to the QoS mutation that caused
    /// them.
    pub fn set_output_table_recorded(
        &mut self,
        node: NodeId,
        port: u8,
        cfg: VlArbConfig,
        rec: &mut dyn Recorder,
    ) {
        match node {
            NodeId::Switch(s) => {
                self.switches[s as usize].outputs[port as usize]
                    .arb
                    .reconfigure(cfg);
            }
            NodeId::Host(h) => {
                assert_eq!(port, 0, "hosts have a single port");
                self.hosts[h as usize].out.arb.reconfigure(cfg);
            }
        }
        self.schedule_invalidations += 1;
        self.schedule_compiles += 1;
        rec.schedule_invalidated();
        rec.schedule_compiled();
    }

    /// Installs the same arbitration table on every output port of
    /// every switch and host (each port's schedule is invalidated and
    /// recompiled).
    pub fn set_uniform_tables(&mut self, cfg: &VlArbConfig) {
        // One compile, then flat clones: every port gets an identical
        // freshly-reset schedule, exactly as if each had recompiled.
        let proto = PortArbiter::new(cfg.clone(), self.config.arbiter);
        for s in 0..self.switches.len() {
            for p in 0..self.switches[s].outputs.len() {
                self.switches[s].outputs[p].arb = proto.clone();
                self.schedule_invalidations += 1;
                self.schedule_compiles += 1;
            }
        }
        for h in 0..self.hosts.len() {
            self.hosts[h].out.arb = proto.clone();
            self.schedule_invalidations += 1;
            self.schedule_compiles += 1;
        }
    }

    /// Arbitration schedules compiled so far: one per output port at
    /// construction, plus one per table change since.
    #[must_use]
    pub fn schedule_compiles(&self) -> u64 {
        self.schedule_compiles
    }

    /// Compiled schedules invalidated by table changes (admit,
    /// teardown, repair, fault corruption).
    #[must_use]
    pub fn schedule_invalidations(&self) -> u64 {
        self.schedule_invalidations
    }

    /// Schedules one fault action on the event calendar at time `at`.
    ///
    /// The action travels through the same `(time, seq)`-ordered queue
    /// as every other event, so faulted runs stay deterministic.
    pub fn schedule_fault(&mut self, at: Cycles, action: FaultAction) {
        let index = self.faults.len() as u32;
        self.faults.push(action);
        self.queue.push(at.max(self.now), Event::Fault { index });
    }

    /// Schedules every action of a [`FaultPlan`].
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for &(at, action) in &plan.events {
            self.schedule_fault(at, action);
        }
    }

    /// Current fault state of an output port (`None` for an invalid
    /// target).
    #[must_use]
    pub fn fault_state(&self, node: NodeId, port: u8) -> Option<FaultState> {
        match node {
            NodeId::Switch(s) => self
                .switches
                .get(s as usize)?
                .outputs
                .get(port as usize)
                .map(|o| o.fault),
            NodeId::Host(h) => {
                if port != 0 {
                    return None;
                }
                self.hosts.get(h as usize).map(|h| h.out.fault)
            }
        }
    }

    fn output_port_mut(&mut self, node: NodeId, port: u8) -> Option<&mut OutputPort> {
        match node {
            NodeId::Switch(s) => self
                .switches
                .get_mut(s as usize)?
                .outputs
                .get_mut(port as usize),
            NodeId::Host(h) => {
                if port != 0 {
                    return None;
                }
                self.hosts.get_mut(h as usize).map(|h| &mut h.out)
            }
        }
    }

    /// Registers a flow and schedules its first packet.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        assert!(
            spec.src.index() < self.hosts.len() && spec.dst.index() < self.hosts.len(),
            "flow endpoints must exist"
        );
        let flow = self.flows.len() as u32;
        let start = spec.start.max(self.now);
        self.flows.push(FlowState { spec, next_seq: 0 });
        self.queue.push(start, Event::Generate { flow });
    }

    /// Stops every flow with the given id at time `at` (no packets are
    /// generated after `at`; packets already queued still drain).
    /// Returns how many flow registrations matched.
    pub fn stop_flow(&mut self, id: u32, at: Cycles) -> usize {
        let mut n = 0;
        for f in &mut self.flows {
            if f.spec.id == id {
                let stop = f.spec.stop.map_or(at, |s| s.min(at));
                f.spec.stop = Some(stop);
                n += 1;
            }
        }
        n
    }

    /// Zeroes all counters and starts a new measurement window at the
    /// current time (call after the warm-up/transient period).
    pub fn reset_stats(&mut self) {
        self.window_start = self.now;
        for s in &mut self.switches {
            for o in &mut s.outputs {
                o.stats = PortStats::default();
            }
        }
        for h in &mut self.hosts {
            h.out.stats = PortStats::default();
            h.injected_bytes = 0;
            h.injected_packets = 0;
            h.delivered_bytes = 0;
            h.delivered_packets = 0;
        }
    }

    /// Runs the event loop until `t_end` (inclusive).
    pub fn run_until(&mut self, t_end: Cycles, observer: &mut impl Observer) {
        self.run_until_recorded(t_end, observer, &mut NullRecorder);
    }

    /// [`Fabric::run_until`] with instrumentation: arbitration grants,
    /// weight exhaustions, head-of-line stalls and queue depths are
    /// recorded into `rec` (see `METRICS.md` for the metric names).
    ///
    /// The recorder is a generic parameter, not a trait object: with
    /// [`NullRecorder`] every hook monomorphizes to nothing, keeping the
    /// plain [`Fabric::run_until`] on the uninstrumented fast path.
    pub fn run_until_recorded<R: Recorder>(
        &mut self,
        t_end: Cycles,
        observer: &mut impl Observer,
        rec: &mut R,
    ) {
        rec.span_begin("sim.run_until");
        while let Some((t, event)) = self.queue.pop_at_most(t_end) {
            debug_assert!(
                invariants::time_monotone(self.now, t),
                "time went backwards: now={} event={t}",
                self.now
            );
            self.now = t;
            self.events_processed += 1;
            rec.tick(t);
            rec.sim_event(self.queue.len() as u64);
            match event {
                Event::Generate { flow } => self.on_generate(flow as usize, observer, rec),
                Event::Complete { node, port } => {
                    self.on_complete(NodeId::decode(node), port, observer, rec);
                }
                Event::Fault { index } => self.on_fault(index as usize, rec),
            }
        }
        self.now = self.now.max(t_end);
        rec.span_end("sim.run_until");
    }

    /// Per-port statistics of a switch output.
    #[must_use]
    pub fn switch_port_stats(&self, switch: SwitchId, port: u8) -> PortStats {
        self.switches[switch.index()].outputs[port as usize].stats
    }

    /// Statistics of a host's uplink.
    #[must_use]
    pub fn host_port_stats(&self, host: HostId) -> PortStats {
        self.hosts[host.index()].out.stats
    }

    /// Bytes and packets injected by one host in the current window.
    #[must_use]
    pub fn host_injected(&self, host: HostId) -> (u64, u64) {
        let h = &self.hosts[host.index()];
        (h.injected_bytes, h.injected_packets)
    }

    /// Bytes and packets delivered to one host in the current window.
    #[must_use]
    pub fn host_delivered(&self, host: HostId) -> (u64, u64) {
        let h = &self.hosts[host.index()];
        (h.delivered_bytes, h.delivered_packets)
    }

    /// Aggregate measurements over the current window.
    #[must_use]
    pub fn summarize(&self) -> FabricStats {
        let window = self.now - self.window_start;
        let mut st = FabricStats {
            window,
            ..Default::default()
        };
        for h in &self.hosts {
            st.injected_bytes += h.injected_bytes;
            st.injected_packets += h.injected_packets;
            st.delivered_bytes += h.delivered_bytes;
            st.delivered_packets += h.delivered_packets;
        }
        let bpc = self.config.link_bytes_per_cycle;
        let qos_util = |s: &PortStats| {
            if window == 0 {
                0.0
            } else {
                100.0 * s.high_bytes as f64 / (window as f64 * bpc as f64)
            }
        };
        // Host links: host uplinks plus switch->host downlinks.
        let mut host_util = Vec::new();
        let mut host_qos = Vec::new();
        for h in &self.hosts {
            host_util.push(h.out.stats.utilization(window, bpc));
            host_qos.push(qos_util(&h.out.stats));
        }
        let mut switch_util = Vec::new();
        let mut switch_qos = Vec::new();
        for s in &self.switches {
            for o in &s.outputs {
                match o.peer {
                    Peer::Host(_) => {
                        host_util.push(o.stats.utilization(window, bpc));
                        host_qos.push(qos_util(&o.stats));
                    }
                    Peer::SwitchIn { .. } => {
                        switch_util.push(o.stats.utilization(window, bpc));
                        switch_qos.push(qos_util(&o.stats));
                    }
                    Peer::None => {}
                }
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        st.host_link_utilization = mean(&host_util);
        st.switch_link_utilization = mean(&switch_util);
        st.host_link_qos_utilization = mean(&host_qos);
        st.switch_link_qos_utilization = mean(&switch_qos);
        st
    }

    /// Total bytes currently waiting in one host's injection queues.
    #[must_use]
    pub fn host_backlog(&self, host: HostId) -> u64 {
        self.hosts[host.index()].queues.total_used()
    }

    /// Packets currently buffered anywhere in the fabric (pool
    /// occupancy) and the pool's high-water slot count.
    #[must_use]
    pub fn pool_usage(&self) -> (usize, usize) {
        (self.pool.in_use(), self.pool.capacity())
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_generate<R: Recorder>(&mut self, flow: usize, observer: &mut impl Observer, rec: &mut R) {
        let (packet, gap, stopped) = {
            let f = &mut self.flows[flow];
            if f.spec.stop.is_some_and(|s| self.now > s) {
                return;
            }
            let packet = Packet {
                flow: f.spec.id,
                seq: f.next_seq,
                src: f.spec.src,
                dst: f.spec.dst,
                sl: f.spec.sl,
                // Wire size: payload plus the configured header overhead.
                bytes: f.spec.packet_bytes + self.config.header_bytes,
                created: self.now,
            };
            let gap = f.spec.arrival.gap(f.next_seq);
            f.next_seq += 1;
            let stopped = f.spec.stop.is_some_and(|s| self.now + gap > s);
            (packet, gap, stopped)
        };

        let src = packet.src;
        let vl = self.config.sl_to_vl.vl(packet.sl).index();
        observer.on_generated(packet.flow, packet.bytes, self.now);
        {
            let Fabric { hosts, pool, .. } = self;
            let h = &mut hosts[src.index()];
            h.injected_bytes += u64::from(packet.bytes);
            h.injected_packets += 1;
            h.queues.push(pool, vl, packet);
        }
        if !stopped {
            self.queue
                .push(self.now + gap, Event::Generate { flow: flow as u32 });
        }
        self.kick(NodeId::Host(src.0), 0, rec);
    }

    fn on_complete<R: Recorder>(
        &mut self,
        node: NodeId,
        port: u8,
        observer: &mut impl Observer,
        rec: &mut R,
    ) {
        let (inflight, peer) = match node {
            NodeId::Switch(s) => {
                let out = &mut self.switches[s as usize].outputs[port as usize];
                (out.inflight.take(), out.peer)
            }
            NodeId::Host(h) => {
                let out = &mut self.hosts[h as usize].out;
                (out.inflight.take(), out.peer)
            }
        };
        assert!(
            inflight.is_some(),
            "complete event without an in-flight transfer"
        );
        let Some(inflight) = inflight else { return };

        // Free the crossbar input the packet came from.
        if let (NodeId::Switch(s), Some(q)) = (node, inflight.src_input) {
            self.switches[s as usize].inputs[q as usize].busy = false;
        }

        // Hand the packet to the link's far end.
        match peer {
            Peer::Host(h) => {
                let p = &inflight.packet;
                observer.on_delivered(&DeliveryRecord {
                    flow: p.flow,
                    seq: p.seq,
                    src: p.src,
                    dst: p.dst,
                    sl: p.sl,
                    bytes: p.bytes,
                    created: p.created,
                    delivered: self.now,
                });
                let host = &mut self.hosts[h as usize];
                host.delivered_bytes += u64::from(p.bytes);
                host.delivered_packets += 1;
                // Hosts consume instantly: return the buffer credit.
                match node {
                    NodeId::Switch(s) => self.switches[s as usize].outputs[port as usize]
                        .credits
                        .restore(inflight.vl as usize, u64::from(p.bytes)),
                    NodeId::Host(h2) => self.hosts[h2 as usize]
                        .out
                        .credits
                        .restore(inflight.vl as usize, u64::from(p.bytes)),
                }
            }
            Peer::SwitchIn {
                switch,
                port: in_port,
            } => {
                let dst = inflight.packet.dst;
                let vl = inflight.vl as usize;
                let onward = self.routing.port(SwitchId(switch), dst);
                {
                    let Fabric { switches, pool, .. } = self;
                    let input = &mut switches[switch as usize].inputs[in_port as usize];
                    input.vls.push(pool, vl, inflight.packet);
                    // A packet that became its lane's head carries the
                    // lane's cached route from here on.
                    if input.vls.len(vl) == 1 {
                        input.head_route[vl] = onward;
                    }
                }
                // The new packet may enable its onward output.
                self.kick(NodeId::Switch(switch), onward, rec);
            }
            Peer::None => unreachable!("transfer on an unwired port"),
        }

        // The link is free again.
        self.kick(node, port, rec);
        // A freed input may unblock transfers on other outputs — but
        // only on the outputs its remaining head packets actually route
        // to, so kick exactly those instead of scanning every port.
        if let (NodeId::Switch(s), Some(q)) = (node, inflight.src_input) {
            let mut ports_mask: u64 = 0;
            {
                let input = &self.switches[s as usize].inputs[q as usize];
                let mut pend = input.vls.occupied();
                while pend != 0 {
                    let vl = pend.trailing_zeros() as usize;
                    pend &= pend - 1;
                    ports_mask |= 1 << input.head_route[vl];
                }
            }
            ports_mask &= !(1u64 << port);
            while ports_mask != 0 {
                let p = ports_mask.trailing_zeros() as u8;
                ports_mask &= ports_mask - 1;
                self.kick(node, p, rec);
            }
        }
    }

    /// Applies a scheduled fault action to its target port.
    fn on_fault<R: Recorder>(&mut self, index: usize, rec: &mut R) {
        let Some(action) = self.faults.get(index).copied() else {
            return;
        };
        if action.is_control_plane() {
            // Serve faults are consumed by the admission service's
            // fault engine; the fabric only traces their passage.
            rec.fault_injected(action.code(), 0, 0);
            return;
        }
        let (node, port) = action.target();
        let code = action.code();
        let mut recompiled = false;
        let detail = {
            let Some(out) = self.output_port_mut(node, port) else {
                return;
            };
            match action {
                FaultAction::DegradeLink { shift, .. } => {
                    out.fault.rate_shift = shift;
                    u32::from(shift)
                }
                FaultAction::LinkDown { .. } => {
                    out.fault.down = true;
                    0
                }
                FaultAction::LinkUp { .. } => {
                    out.fault.down = false;
                    0
                }
                FaultAction::SetVlBlackout { mask, .. } => {
                    out.fault.blackout_mask = mask;
                    u32::from(mask)
                }
                FaultAction::SetCreditStall { mask, .. } => {
                    out.fault.stall_mask = mask;
                    u32::from(mask)
                }
                FaultAction::CorruptTable { seed, .. } => {
                    let corrupted = corrupt_config(out.arb.config(), seed);
                    out.arb.reconfigure(corrupted);
                    recompiled = true;
                    (seed & 0xFFFF_FFFF) as u32
                }
                // Handled by the early return above.
                FaultAction::ServeCrash { .. }
                | FaultAction::ServeVoteLoss { .. }
                | FaultAction::ServeReplyLoss { .. } => 0,
            }
        };
        if recompiled {
            self.schedule_invalidations += 1;
            self.schedule_compiles += 1;
            rec.schedule_invalidated();
            rec.schedule_compiled();
        }
        rec.fault_injected(code, encode_target(node, port), detail);
        // Restores (and table rewrites) can enable pending work on a
        // port no Complete event will ever revisit: kick it now.
        self.kick(node, port, rec);
    }

    // ------------------------------------------------------------------
    // Arbitration and transfer start
    // ------------------------------------------------------------------

    /// Attempts to start a transfer on an idle output port.
    ///
    /// The busy/down test is inlined here so the overwhelmingly common
    /// outcome — the kicked port is mid-transfer — costs a couple of
    /// loads at the call site instead of a call into the scan bodies.
    fn kick<R: Recorder>(&mut self, node: NodeId, port: u8, rec: &mut R) {
        match node {
            NodeId::Switch(s) => self.kick_switch_output(s as usize, port as usize, rec),
            NodeId::Host(h) => self.kick_host_output(h as usize, rec),
        }
    }

    /// Whether input `q` holds a head packet that some *other* output
    /// could serve from its high-priority table right now (used by the
    /// priority-aware input-claiming extension).
    fn input_has_foreign_high_work(&self, s: usize, q: usize, this_port: usize) -> bool {
        let node = &self.switches[s];
        let input = &node.inputs[q];
        let mut pend = input.vls.occupied();
        while pend != 0 {
            let vl = pend.trailing_zeros() as usize;
            pend &= pend - 1;
            let o2 = input.head_route[vl] as usize;
            if o2 == this_port {
                continue;
            }
            let out2 = &node.outputs[o2];
            if out2.arb.high_vl_mask() & (1 << vl) != 0
                && out2
                    .credits
                    .can_send(vl, u64::from(input.vls.head_bytes(vl)))
            {
                return true;
            }
        }
        false
    }

    fn kick_switch_output<R: Recorder>(&mut self, s: usize, port: usize, rec: &mut R) {
        let protect_inputs = self.config.priority_input_claiming;
        loop {
            // Busy/unwired/down ports exit before any candidate state
            // is set up — most kicks land on a busy port.
            {
                let out = &self.switches[s].outputs[port];
                if out.busy() || out.peer == Peer::None || out.fault.down {
                    return;
                }
            }
            // Candidate head packet per VL, struct-of-arrays: bit `v` of
            // `cand_mask` set iff VL v has a candidate, with its source
            // input and size in the parallel arrays.
            let mut cand_mask: u16 = 0;
            let mut cand_src = [0u8; 16];
            let mut cand_bytes = [0u64; 16];
            {
                let node = &self.switches[s];
                let out = &node.outputs[port];
                let fault = out.fault;
                let my_high = out.arb.high_vl_mask();
                let n_in = node.inputs.len();
                let start = out.next_input as usize;
                for off in 0..n_in {
                    // `start < n_in`, so one conditional subtract wraps.
                    let mut q = start + off;
                    if q >= n_in {
                        q -= n_in;
                    }
                    let input = &node.inputs[q];
                    if input.busy {
                        continue;
                    }
                    // Extension: inputs with pending high-priority work
                    // for other outputs are reserved for that work —
                    // this output may still take its *own* high-table
                    // VLs from them, but not low-priority packets.
                    let protected = protect_inputs && self.input_has_foreign_high_work(s, q, port);
                    // Occupied lanes without a candidate yet, ascending.
                    // The cached head route and head size answer the
                    // whole scan from port-local arrays — no packet
                    // pool or routing table access on this path.
                    let mut pend = input.vls.occupied() & !cand_mask;
                    while pend != 0 {
                        let vl = pend.trailing_zeros() as usize;
                        pend &= pend - 1;
                        if input.head_route[vl] as usize != port {
                            continue;
                        }
                        if protected && vl != 15 && my_high & (1 << vl) == 0 {
                            continue;
                        }
                        if fault.blackout_mask & (1 << vl) != 0 || fault.stall_mask & (1 << vl) != 0
                        {
                            // Injected VL blackout / credit stall: the
                            // head packet is routed here but the fault
                            // layer withholds it from the arbiter.
                            rec.fault_blocked(vl as u8);
                            continue;
                        }
                        let bytes = u64::from(input.vls.head_bytes(vl));
                        if !out.credits.can_send(vl, bytes) {
                            // Head packet routed here but blocked on
                            // downstream credit: a head-of-line stall.
                            rec.arb_hol_stall(vl as u8);
                            continue;
                        }
                        cand_mask |= 1 << vl;
                        cand_src[vl] = q as u8;
                        cand_bytes[vl] = bytes;
                    }
                }
            }

            // VL15 bypasses arbitration entirely.
            let grant = if cand_mask & (1 << 15) != 0 {
                Some((15u8, cand_src[15], cand_bytes[15] as u32, None, false))
            } else {
                let out = &mut self.switches[s].outputs[port];
                out.arb.select(cand_mask, &cand_bytes).map(|g| {
                    let vl = g.vl.index();
                    (
                        g.vl.raw(),
                        cand_src[vl],
                        cand_bytes[vl] as u32,
                        Some(g.served_by),
                        g.exhausted,
                    )
                })
            };

            let Some((vl, q, bytes, served, exhausted)) = grant else {
                return;
            };
            if exhausted {
                rec.arb_weight_exhausted(vl);
            }
            rec.arb_queue_depth(self.switches[s].inputs[q as usize].vls.len(vl as usize) as u64);
            self.start_switch_transfer(s, port, q as usize, vl, bytes, served, rec);
            // The port is now busy; the loop exits on the next pass.
        }
    }

    #[allow(clippy::too_many_arguments)] // internal hot-path plumbing; a struct would just rename the args
    fn start_switch_transfer<R: Recorder>(
        &mut self,
        s: usize,
        port: usize,
        q: usize,
        vl: u8,
        bytes: u32,
        served: Option<ServedBy>,
        rec: &mut R,
    ) {
        let packet = {
            let Fabric { switches, pool, .. } = self;
            switches[s].inputs[q].vls.pop(pool, vl as usize)
        };
        assert!(
            packet.is_some(),
            "granted candidate vanished from input buffer"
        );
        let Some(packet) = packet else { return };
        debug_assert!(
            invariants::grant_matches_head(packet.bytes, bytes),
            "granted size {bytes} differs from head packet {}",
            packet.bytes
        );
        self.switches[s].inputs[q].busy = true;
        // The pop promoted a new head: refresh the lane's cached route.
        let head_dst = self.switches[s].inputs[q]
            .vls
            .head(&self.pool, vl as usize)
            .map(|p| p.dst);
        if let Some(dst) = head_dst {
            self.switches[s].inputs[q].head_route[vl as usize] =
                self.routing.port(SwitchId(s as u16), dst);
        }

        // Return the buffer credit to whoever feeds this input port.
        let upstream = self.topo.peer(SwitchId(s as u16), q as u8);
        match upstream {
            PortPeer::Switch { switch, port: up } => {
                self.switches[switch.index()].outputs[up as usize]
                    .credits
                    .restore(vl as usize, u64::from(bytes));
                self.kick(NodeId::Switch(switch.0), up, rec);
            }
            PortPeer::Host(h) => {
                self.hosts[h.index()]
                    .out
                    .credits
                    .restore(vl as usize, u64::from(bytes));
                self.kick(NodeId::Host(h.0), 0, rec);
            }
            PortPeer::Free => unreachable!("packet arrived on an unwired port"),
        }

        let bpc = self.config.link_bytes_per_cycle;
        let out = &mut self.switches[s].outputs[port];
        // An injected rate degradation stretches the transfer.
        let duration =
            cycles_for_bytes(u64::from(bytes), bpc) << u32::from(out.fault.rate_shift.min(20));
        out.credits.consume(vl as usize, u64::from(bytes));
        // `q < ports_per_switch`, so one conditional reset wraps — no
        // modulo on the transfer path.
        let next = q as u8 + 1;
        out.next_input = if next >= self.topo.ports_per_switch() {
            0
        } else {
            next
        };
        Self::account(&mut out.stats, bytes, duration, vl, served, rec);
        out.inflight = Some(InFlight {
            packet,
            src_input: Some(q as u8),
            vl,
        });
        self.queue.push(
            self.now + duration,
            Event::Complete {
                node: NodeId::Switch(s as u16).encode(),
                port: port as u8,
            },
        );
    }

    fn kick_host_output<R: Recorder>(&mut self, h: usize, rec: &mut R) {
        // Busy/down uplinks exit before any candidate state is set up —
        // most kicks land on a busy port.
        {
            let host = &self.hosts[h];
            if host.out.busy() || host.out.fault.down || host.queues.occupied() == 0 {
                return;
            }
        }
        let mut cand_mask: u16 = 0;
        let mut cand_bytes = [0u64; 16];
        {
            let host = &self.hosts[h];
            let fault = host.out.fault;
            let mut pend = host.queues.occupied();
            while pend != 0 {
                let vl = pend.trailing_zeros() as usize;
                pend &= pend - 1;
                let bytes = u64::from(host.queues.head_bytes(vl));
                if fault.blackout_mask & (1 << vl) != 0 || fault.stall_mask & (1 << vl) != 0 {
                    rec.fault_blocked(vl as u8);
                } else if host.out.credits.can_send(vl, bytes) {
                    cand_mask |= 1 << vl;
                    cand_bytes[vl] = bytes;
                } else {
                    rec.arb_hol_stall(vl as u8);
                }
            }
        }

        let grant = if cand_mask & (1 << 15) != 0 {
            Some((15u8, cand_bytes[15] as u32, None, false))
        } else {
            self.hosts[h]
                .out
                .arb
                .select(cand_mask, &cand_bytes)
                .map(|g| {
                    (
                        g.vl.raw(),
                        cand_bytes[g.vl.index()] as u32,
                        Some(g.served_by),
                        g.exhausted,
                    )
                })
        };

        let Some((vl, bytes, served, exhausted)) = grant else {
            return;
        };
        if exhausted {
            rec.arb_weight_exhausted(vl);
        }
        rec.arb_queue_depth(self.hosts[h].queues.len(vl as usize) as u64);
        let packet = {
            let Fabric { hosts, pool, .. } = self;
            hosts[h].queues.pop(pool, vl as usize)
        };
        assert!(
            packet.is_some(),
            "granted candidate vanished from host queue"
        );
        let Some(packet) = packet else { return };
        let bpc = self.config.link_bytes_per_cycle;
        let out = &mut self.hosts[h].out;
        let duration =
            cycles_for_bytes(u64::from(bytes), bpc) << u32::from(out.fault.rate_shift.min(20));
        out.credits.consume(vl as usize, u64::from(bytes));
        Self::account(&mut out.stats, bytes, duration, vl, served, rec);
        out.inflight = Some(InFlight {
            packet,
            src_input: None,
            vl,
        });
        self.queue.push(
            self.now + duration,
            Event::Complete {
                node: NodeId::Host(h as u16).encode(),
                port: 0,
            },
        );
    }

    fn account<R: Recorder>(
        stats: &mut PortStats,
        bytes: u32,
        duration: Cycles,
        vl: u8,
        served: Option<ServedBy>,
        rec: &mut R,
    ) {
        stats.busy_cycles += duration;
        stats.bytes += u64::from(bytes);
        stats.packets += 1;
        stats.per_vl_bytes[vl as usize] += u64::from(bytes);
        let kind = match served {
            Some(ServedBy::High) => {
                stats.high_bytes += u64::from(bytes);
                ServedKind::High
            }
            Some(ServedBy::Low) => {
                stats.low_bytes += u64::from(bytes);
                ServedKind::Low
            }
            None => {
                debug_assert!(
                    invariants::unarbitrated_is_management(vl),
                    "only VL15 bypasses arbitration, got VL{vl}"
                );
                stats.vl15_bytes += u64::from(bytes);
                ServedKind::Management
            }
        };
        rec.arb_grant(vl, u64::from(bytes), kind);
    }
}

// The parallel harness moves whole fabrics (and their configs) into
// worker threads; keep that property checked at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Fabric>();
    assert_send::<SimConfig>();
    assert_send::<EventQueue>();
    assert_send::<PacketPool>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Arrival;
    use crate::trace::VecObserver;
    use iba_core::ServiceLevel;
    use iba_topo::updown;

    fn two_host_fabric(mtu: u32) -> Fabric {
        // Two switches in a line, one host each.
        let mut t = Topology::new(2, 4);
        t.connect_switches(SwitchId(0), 1, SwitchId(1), 1);
        t.attach_host(SwitchId(0), 0);
        t.attach_host(SwitchId(1), 0);
        let r = updown::compute(&t);
        Fabric::new(t, r, SimConfig::paper_default(mtu))
    }

    fn flow(id: u32, src: u16, dst: u16, sl: u8, bytes: u32, interval: Cycles) -> FlowSpec {
        FlowSpec {
            id,
            src: HostId(src),
            dst: HostId(dst),
            sl: ServiceLevel::new(sl).unwrap(),
            packet_bytes: bytes,
            arrival: Arrival::Cbr { interval },
            start: 0,
            stop: None,
        }
    }

    #[test]
    fn single_packet_end_to_end_latency() {
        let mut f = two_host_fabric(256);
        f.add_flow(FlowSpec {
            stop: Some(0),
            ..flow(0, 0, 1, 0, 256, 1000)
        });
        let mut obs = VecObserver::default();
        f.run_until(100_000, &mut obs);
        assert_eq!(obs.records.len(), 1);
        let r = obs.records[0];
        // Three store-and-forward link crossings of 256 cycles each.
        assert_eq!(r.created, 0);
        assert_eq!(r.delivered, 3 * 256);
        assert_eq!(r.delay(), 768);
    }

    #[test]
    fn cbr_flow_delivers_all_packets_at_rate() {
        let mut f = two_host_fabric(256);
        f.add_flow(flow(7, 0, 1, 3, 256, 512)); // 50% load
        let mut obs = VecObserver::default();
        f.run_until(512 * 100, &mut obs);
        // ~100 packets generated, all but the in-flight tail delivered.
        assert!(obs.records.len() >= 98, "{} delivered", obs.records.len());
        // Deliveries are evenly spaced at the source interval.
        for w in obs.records.windows(2) {
            assert_eq!(w[1].delivered - w[0].delivered, 512);
        }
        // All carry the right flow id and SL.
        assert!(obs.records.iter().all(|r| r.flow == 7 && r.sl.raw() == 3));
    }

    #[test]
    fn saturated_link_throttles_to_capacity() {
        let mut f = two_host_fabric(256);
        // Two hosts each offering 100% toward the same destination: the
        // shared switch-switch link saturates at 1 byte/cycle.
        f.add_flow(flow(0, 0, 1, 0, 256, 256));
        let mut obs = VecObserver::default();
        f.run_until(256 * 200, &mut obs);
        f.reset_stats();
        f.run_until(256 * 1200, &mut obs);
        let st = f.summarize();
        // Delivered at full capacity: 1 byte/cycle over the link.
        let link = f.switch_port_stats(SwitchId(0), 1);
        assert!(
            link.utilization(st.window, 1) > 99.0,
            "link only {}% busy",
            link.utilization(st.window, 1)
        );
    }

    #[test]
    fn two_flows_share_by_table_weights() {
        // Hosts 0 and 1 both on switch 0... need a 3-host fabric: use a
        // single switch with 3 hosts, two senders to one receiver.
        let mut t = Topology::new(1, 4);
        t.attach_host(SwitchId(0), 0);
        t.attach_host(SwitchId(0), 1);
        t.attach_host(SwitchId(0), 2);
        let r = updown::compute(&t);
        let mut f = Fabric::new(t, r, SimConfig::paper_default(256));
        // Table on the receiver-facing output: VL1 weight 3, VL2 weight 1.
        let cfg = VlArbConfig {
            high: vec![
                ArbEntry {
                    vl: VirtualLane::data(1),
                    weight: 12,
                },
                ArbEntry {
                    vl: VirtualLane::data(2),
                    weight: 4,
                },
            ],
            low: vec![],
            limit_of_high_priority: 255,
        };
        f.set_uniform_tables(&cfg);
        // Both senders saturate their links.
        f.add_flow(flow(1, 0, 2, 1, 256, 256));
        f.add_flow(flow(2, 1, 2, 2, 256, 256));
        let mut obs = VecObserver::default();
        f.run_until(256 * 100, &mut obs); // warm-up
        obs.records.clear();
        f.run_until(256 * 1100, &mut obs);
        let f1 = obs.records.iter().filter(|r| r.flow == 1).count();
        let f2 = obs.records.iter().filter(|r| r.flow == 2).count();
        let ratio = f1 as f64 / f2 as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio} (f1={f1} f2={f2})");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut f = two_host_fabric(256);
            f.add_flow(flow(0, 0, 1, 0, 256, 300));
            f.add_flow(flow(1, 1, 0, 1, 256, 700));
            let mut obs = VecObserver::default();
            f.run_until(1_000_000, &mut obs);
            obs.records
                .iter()
                .map(|r| (r.flow, r.seq, r.delivered))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_packet_loss_under_congestion() {
        let mut f = two_host_fabric(256);
        f.add_flow(FlowSpec {
            stop: Some(256 * 50),
            ..flow(0, 0, 1, 0, 256, 256)
        });
        f.add_flow(FlowSpec {
            stop: Some(256 * 50),
            ..flow(1, 1, 0, 1, 256, 256)
        });
        let mut obs = VecObserver::default();
        f.run_until(10_000_000, &mut obs);
        // Both flows emitted 51 packets (t=0..=50*256 inclusive start).
        let f0 = obs.records.iter().filter(|r| r.flow == 0).count();
        let f1 = obs.records.iter().filter(|r| r.flow == 1).count();
        assert_eq!(f0, 51);
        assert_eq!(f1, 51);
    }

    #[test]
    fn vl15_preempts_data_traffic() {
        let mut f = two_host_fabric(256);
        // Saturating data flow on VL0.
        f.add_flow(flow(0, 0, 1, 0, 256, 256));
        // Sparse management flow on SL15 -> VL15.
        f.add_flow(flow(1, 0, 1, 15, 64, 10_000));
        let mut obs = VecObserver::default();
        f.run_until(300_000, &mut obs);
        let mgmt: Vec<_> = obs.records.iter().filter(|r| r.flow == 1).collect();
        assert!(!mgmt.is_empty());
        // Management packets ride through with minimal queueing: their
        // delay stays near the unloaded 3-hop time for a 64B packet
        // behind at most one 256B packet per hop.
        for r in &mgmt {
            assert!(
                r.delay() <= 3 * (64 + 256) + 64,
                "VL15 delayed {} cycles",
                r.delay()
            );
        }
    }

    #[test]
    fn per_vl_accounting_sums_to_total() {
        let mut f = two_host_fabric(256);
        f.add_flow(flow(0, 0, 1, 2, 256, 600));
        f.add_flow(flow(1, 0, 1, 5, 256, 900));
        let mut obs = VecObserver::default();
        f.run_until(1_000_000, &mut obs);
        let st = f.host_port_stats(HostId(0));
        let sum: u64 = st.per_vl_bytes.iter().sum();
        assert_eq!(sum, st.bytes);
        assert!(st.per_vl_bytes[2] > 0);
        assert!(st.per_vl_bytes[5] > 0);
        assert_eq!(st.per_vl_bytes[7], 0);
    }

    #[test]
    fn header_overhead_appears_on_the_wire() {
        let mut t = Topology::new(2, 4);
        t.connect_switches(SwitchId(0), 1, SwitchId(1), 1);
        t.attach_host(SwitchId(0), 0);
        t.attach_host(SwitchId(1), 0);
        let r = updown::compute(&t);
        let mut f = Fabric::new(t, r, SimConfig::with_headers(256));
        f.add_flow(FlowSpec {
            stop: Some(0),
            ..flow(0, 0, 1, 0, 256, 1000)
        });
        let mut obs = VecObserver::default();
        f.run_until(100_000, &mut obs);
        let rec = obs.records[0];
        // 256 payload + 26 header bytes on the wire.
        assert_eq!(rec.bytes, 282);
        assert_eq!(rec.delay(), 3 * 282);
    }

    #[test]
    fn stats_window_reset() {
        let mut f = two_host_fabric(256);
        f.add_flow(flow(0, 0, 1, 0, 256, 512));
        let mut obs = VecObserver::default();
        f.run_until(51_200, &mut obs);
        let before = f.summarize();
        assert!(before.injected_packets > 0);
        f.reset_stats();
        let after = f.summarize();
        assert_eq!(after.injected_packets, 0);
        assert_eq!(after.window, 0);
    }

    #[test]
    fn recorded_run_matches_plain_run_and_measures_shares() {
        use iba_obs::ObsRecorder;
        // 2-VL steady state, weights 12:4 (= 3:1), both lanes saturated:
        // the per-VL serviced-bytes ratio must match the weights within
        // 1%, and the recorded run must behave identically to the plain
        // one.
        let build = || {
            let mut t = Topology::new(1, 4);
            t.attach_host(SwitchId(0), 0);
            t.attach_host(SwitchId(0), 1);
            t.attach_host(SwitchId(0), 2);
            let r = updown::compute(&t);
            let mut f = Fabric::new(t, r, SimConfig::paper_default(256));
            let cfg = VlArbConfig {
                high: vec![
                    ArbEntry {
                        vl: VirtualLane::data(1),
                        weight: 12,
                    },
                    ArbEntry {
                        vl: VirtualLane::data(2),
                        weight: 4,
                    },
                ],
                low: vec![],
                limit_of_high_priority: 255,
            };
            f.set_uniform_tables(&cfg);
            f.add_flow(flow(1, 0, 2, 1, 256, 256));
            f.add_flow(flow(2, 1, 2, 2, 256, 256));
            f
        };

        let mut plain = build();
        let mut obs_plain = VecObserver::default();
        plain.run_until(256 * 2000, &mut obs_plain);

        let mut recorded = build();
        let mut obs_rec = VecObserver::default();
        let mut rec = ObsRecorder::new();
        recorded.run_until_recorded(256 * 2000, &mut obs_rec, &mut rec);

        // Identical deliveries: instrumentation must not perturb the sim.
        let key = |v: &VecObserver| {
            v.records
                .iter()
                .map(|r| (r.flow, r.seq, r.delivered))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&obs_plain), key(&obs_rec));

        // Per-VL serviced-bytes ratio matches the 3:1 weights within 1%.
        let m = &rec.metrics;
        let vl1 = m.arb_bytes.0[1].get() as f64;
        let vl2 = m.arb_bytes.0[2].get() as f64;
        assert!(vl1 > 0.0 && vl2 > 0.0);
        let ratio = vl1 / vl2;
        assert!(
            (ratio - 3.0).abs() / 3.0 < 0.01,
            "serviced-bytes ratio {ratio} deviates >1% from 3.0"
        );
        // Saturated lanes exhaust their weight; grants were recorded on
        // both lanes and on the high table only.
        assert!(m.arb_weight_exhausted.0[1].get() > 0);
        assert!(m.arb_weight_exhausted.0[2].get() > 0);
        assert!(m.arb_high_bytes.get() > 0);
        assert_eq!(m.arb_low_bytes.get(), 0);
        assert!(m.arb_queue_depth.count() > 0);
    }

    #[test]
    fn packet_pool_drains_and_stays_bounded() {
        let mut f = two_host_fabric(256);
        f.add_flow(FlowSpec {
            stop: Some(256 * 100),
            ..flow(0, 0, 1, 0, 256, 256)
        });
        f.add_flow(FlowSpec {
            stop: Some(256 * 100),
            ..flow(1, 1, 0, 1, 256, 256)
        });
        let mut obs = VecObserver::default();
        f.run_until(10_000_000, &mut obs);
        let (in_use, cap) = f.pool_usage();
        // Everything delivered: the pool is empty again, and its
        // high-water mark stayed at the peak buffered population, not
        // the total packet count (202 generated).
        assert_eq!(in_use, 0);
        assert!(cap > 0 && cap < 202, "pool high-water {cap}");
    }

    #[test]
    fn link_flap_pauses_and_resumes_delivery() {
        let mut f = two_host_fabric(256);
        f.add_flow(flow(0, 0, 1, 0, 256, 512));
        // Take the inter-switch link down for a while, then restore it.
        f.schedule_fault(
            10_000,
            FaultAction::LinkDown {
                node: NodeId::Switch(0),
                port: 1,
            },
        );
        f.schedule_fault(
            60_000,
            FaultAction::LinkUp {
                node: NodeId::Switch(0),
                port: 1,
            },
        );
        let mut obs = VecObserver::default();
        f.run_until(200_000, &mut obs);
        // Nothing crosses the downed link inside the outage window
        // (transfers already on the wire at t=10_000 may still land).
        let during = obs
            .records
            .iter()
            .filter(|r| r.delivered > 11_000 && r.delivered < 60_000)
            .count();
        assert_eq!(during, 0, "packets crossed a downed link");
        // After the restore the backlog drains and delivery resumes.
        let after = obs.records.iter().filter(|r| r.delivered >= 60_000).count();
        assert!(after > 100, "only {after} deliveries after link-up");
        assert_eq!(f.host_backlog(HostId(0)), 0);
        assert!(f
            .fault_state(NodeId::Switch(0), 1)
            .is_some_and(|st| st.healthy()));
    }

    #[test]
    fn degraded_link_stretches_transfers() {
        let mut f = two_host_fabric(256);
        f.schedule_fault(
            0,
            FaultAction::DegradeLink {
                node: NodeId::Switch(0),
                port: 1,
                shift: 2,
            },
        );
        f.add_flow(FlowSpec {
            stop: Some(0),
            ..flow(0, 0, 1, 0, 256, 1000)
        });
        let mut obs = VecObserver::default();
        f.run_until(100_000, &mut obs);
        // Host hop + degraded (4x) switch hop + final hop.
        assert_eq!(obs.records[0].delay(), 256 + 4 * 256 + 256);
    }

    #[test]
    fn vl_blackout_blocks_only_that_lane() {
        let mut f = two_host_fabric(256);
        f.schedule_fault(
            0,
            FaultAction::SetVlBlackout {
                node: NodeId::Host(0),
                port: 0,
                mask: 1 << 1,
            },
        );
        f.add_flow(flow(0, 0, 1, 1, 256, 512)); // VL1: blacked out
        f.add_flow(flow(1, 0, 1, 2, 256, 512)); // VL2: unaffected
        let mut obs = VecObserver::default();
        f.run_until(100_000, &mut obs);
        assert!(obs.records.iter().all(|r| r.flow == 1));
        assert!(obs.records.iter().filter(|r| r.flow == 1).count() > 100);
        assert!(f.host_backlog(HostId(0)) > 0);
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let run = || {
            let mut f = two_host_fabric(256);
            f.add_flow(flow(0, 0, 1, 0, 256, 300));
            f.add_flow(flow(1, 1, 0, 1, 256, 700));
            let plan = FaultPlan::generate(99, 5_000, 400_000, 2, 4, 2);
            f.apply_fault_plan(&plan);
            let mut obs = VecObserver::default();
            f.run_until(1_000_000, &mut obs);
            obs.records
                .iter()
                .map(|r| (r.flow, r.seq, r.delivered))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn corrupt_table_damages_high_entries() {
        let cfg = VlArbConfig {
            high: vec![
                ArbEntry {
                    vl: VirtualLane::data(1),
                    weight: 12,
                },
                ArbEntry {
                    vl: VirtualLane::data(2),
                    weight: 4,
                },
            ],
            low: vec![],
            limit_of_high_priority: 255,
        };
        let bad = corrupt_config(&cfg, 7);
        assert_ne!(bad.high, cfg.high, "corruption must change the table");
        assert_eq!(
            bad.high,
            corrupt_config(&cfg, 7).high,
            "corruption is seeded"
        );
    }

    #[test]
    fn backlog_drains_when_capacity_allows() {
        let mut f = two_host_fabric(256);
        f.add_flow(FlowSpec {
            stop: Some(256 * 20),
            ..flow(0, 0, 1, 0, 256, 256)
        });
        let mut obs = VecObserver::default();
        f.run_until(5_000_000, &mut obs);
        assert_eq!(f.host_backlog(HostId(0)), 0);
    }
}
