//! Named runtime invariants of the event-driven fabric model.
//!
//! Each predicate states one property the simulator maintains by
//! construction. `fabric.rs` checks them in `debug_assert!`s on the hot
//! path; the verification crate and the test suites call them directly
//! so a violation names the broken property instead of a bare boolean.

use crate::time::Cycles;

/// Event times never move backwards: the queue is a priority queue and
/// every scheduled event lies at or after the current simulation time.
#[must_use]
pub fn time_monotone(now: Cycles, event_time: Cycles) -> bool {
    event_time >= now
}

/// An arbitration grant always matches the head packet it was issued
/// for — the candidate table and the VL buffer stay in lock-step during
/// one `kick` pass.
#[must_use]
pub fn grant_matches_head(head_bytes: u32, granted_bytes: u32) -> bool {
    head_bytes == granted_bytes
}

/// Only the management lane (VL15) may be served without passing the
/// VL arbitration engine.
#[must_use]
pub fn unarbitrated_is_management(vl: u8) -> bool {
    vl == 15
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_hold_on_their_domains() {
        assert!(time_monotone(5, 5));
        assert!(time_monotone(5, 9));
        assert!(!time_monotone(5, 4));
        assert!(grant_matches_head(256, 256));
        assert!(!grant_matches_head(256, 64));
        assert!(unarbitrated_is_management(15));
        assert!(!unarbitrated_is_management(0));
    }
}
