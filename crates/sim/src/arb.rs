//! The per-output-port arbiter: compiled grant streams by default,
//! with the interpreted reference engine selectable for differential
//! testing.
//!
//! Every table change (subnet-manager download, fault corruption)
//! funnels through [`PortArbiter::reconfigure`], which invalidates the
//! previous compiled schedule and recompiles — the single point the
//! fabric's `schedule_compile_total` / `schedule_invalidate_total`
//! accounting hangs off.

use crate::config::ArbiterMode;
use iba_core::{CompiledVlArb, Grant, VlArbConfig, VlArbEngine};

/// The arbitration engine of one output port, in either mode.
///
/// Both variants expose the same mask-shaped query
/// ([`PortArbiter::select`]) and are grant-for-grant identical; the
/// interpreted variant adapts the mask back into the closure protocol
/// of [`VlArbEngine`]. The high-priority VL mask — consulted on every
/// kick by the priority-input-claiming extension — is cached at
/// (re)compile time instead of being re-derived from the table per
/// arbitration pass.
#[derive(Clone, Debug)]
pub enum PortArbiter {
    /// Compiled grant streams (the hot path).
    Compiled(CompiledVlArb),
    /// Interpreted table walking (the reference semantics).
    Interpreted {
        /// The reference engine.
        engine: VlArbEngine,
        /// Cached bitmask of VLs with nonzero high-table weight.
        high_mask: u16,
    },
}

/// Bitmask of VLs carrying nonzero weight in the high-priority table.
fn high_mask_of(config: &VlArbConfig) -> u16 {
    config
        .high
        .iter()
        .filter(|e| e.weight > 0)
        .fold(0u16, |m, e| m | 1 << e.vl.raw())
}

impl PortArbiter {
    /// Builds (and for [`ArbiterMode::Compiled`], compiles) the arbiter
    /// for `config`.
    #[must_use]
    pub fn new(config: VlArbConfig, mode: ArbiterMode) -> Self {
        match mode {
            ArbiterMode::Compiled => PortArbiter::Compiled(CompiledVlArb::new(config)),
            ArbiterMode::Interpreted => {
                let high_mask = high_mask_of(&config);
                PortArbiter::Interpreted {
                    engine: VlArbEngine::new(config),
                    high_mask,
                }
            }
        }
    }

    /// Installs a new table: the previous schedule (compiled stream or
    /// round-robin state) is discarded and rebuilt.
    pub fn reconfigure(&mut self, config: VlArbConfig) {
        match self {
            PortArbiter::Compiled(arb) => arb.reconfigure(config),
            PortArbiter::Interpreted { engine, high_mask } => {
                *high_mask = high_mask_of(&config);
                engine.reconfigure(config);
            }
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &VlArbConfig {
        match self {
            PortArbiter::Compiled(arb) => arb.config(),
            PortArbiter::Interpreted { engine, .. } => engine.config(),
        }
    }

    /// Cached bitmask of VLs with nonzero high-table weight.
    #[must_use]
    pub fn high_vl_mask(&self) -> u16 {
        match self {
            PortArbiter::Compiled(arb) => arb.high_stream().vl_mask(),
            PortArbiter::Interpreted { high_mask, .. } => *high_mask,
        }
    }

    /// Arbitrates one packet: bit `v` of `ready_mask` set iff VL `v`
    /// has a transmittable head packet of `bytes[v]` bytes.
    pub fn select(&mut self, ready_mask: u16, bytes: &[u64; 16]) -> Option<Grant> {
        match self {
            PortArbiter::Compiled(arb) => arb.select(ready_mask, bytes),
            PortArbiter::Interpreted { engine, .. } => {
                engine.select(|vl| (ready_mask & (1 << vl.index()) != 0).then(|| bytes[vl.index()]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::{ArbEntry, VirtualLane};

    fn config() -> VlArbConfig {
        VlArbConfig {
            high: vec![
                ArbEntry {
                    vl: VirtualLane::data(1),
                    weight: 12,
                },
                ArbEntry {
                    vl: VirtualLane::data(3),
                    weight: 0,
                },
                ArbEntry {
                    vl: VirtualLane::data(2),
                    weight: 4,
                },
            ],
            low: vec![ArbEntry {
                vl: VirtualLane::data(0),
                weight: 255,
            }],
            limit_of_high_priority: 255,
        }
    }

    #[test]
    fn both_modes_agree_and_cache_the_high_mask() {
        let mut compiled = PortArbiter::new(config(), ArbiterMode::Compiled);
        let mut interpreted = PortArbiter::new(config(), ArbiterMode::Interpreted);
        // Weight-0 VL3 is not part of the high mask.
        assert_eq!(compiled.high_vl_mask(), 0b0110);
        assert_eq!(interpreted.high_vl_mask(), 0b0110);
        let bytes = [64u64; 16];
        for step in 0..200 {
            let mask = 0b0111 & (step as u16 | 1);
            assert_eq!(
                compiled.select(mask, &bytes),
                interpreted.select(mask, &bytes),
                "step {step}"
            );
        }
    }

    #[test]
    fn reconfigure_refreshes_the_cached_mask() {
        let mut arb = PortArbiter::new(config(), ArbiterMode::Compiled);
        let mut low_only = config();
        low_only.high.clear();
        arb.reconfigure(low_only.clone());
        assert_eq!(arb.high_vl_mask(), 0);
        let mut interp = PortArbiter::new(config(), ArbiterMode::Interpreted);
        interp.reconfigure(low_only);
        assert_eq!(interp.high_vl_mask(), 0);
    }
}
