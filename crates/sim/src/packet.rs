//! Packets and traffic flows.

use crate::time::Cycles;
use iba_core::ServiceLevel;
use iba_topo::HostId;

/// A packet in flight. IBA segments messages into packets of up to one
/// MTU; the experiments use fixed-size packets, so a packet here is one
/// MTU-sized unit (header overhead is included in `bytes`).
#[derive(Clone, Debug)]
pub struct Packet {
    /// Id of the flow (connection) the packet belongs to.
    pub flow: u32,
    /// Sequence number within the flow (0-based).
    pub seq: u64,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Service level stamped in the header.
    pub sl: ServiceLevel,
    /// Total wire size in bytes (payload + headers).
    pub bytes: u32,
    /// Cycle at which the source generated the packet.
    pub created: Cycles,
}

/// Packet arrival process of a flow.
#[derive(Clone, Debug)]
pub enum Arrival {
    /// Constant bit rate: one packet every `interval` cycles.
    Cbr {
        /// Inter-packet gap in cycles.
        interval: Cycles,
    },
    /// A repeating pattern of inter-packet gaps (models VBR traffic with
    /// a periodic rate envelope).
    Pattern {
        /// Successive gaps, cycled through forever.
        intervals: Vec<Cycles>,
    },
}

impl Arrival {
    /// The gap before packet number `seq + 1`.
    #[must_use]
    pub fn gap(&self, seq: u64) -> Cycles {
        match self {
            Arrival::Cbr { interval } => *interval,
            Arrival::Pattern { intervals } => intervals[(seq as usize) % intervals.len()],
        }
    }

    /// Mean gap (cycles) of the process.
    #[must_use]
    pub fn mean_gap(&self) -> f64 {
        match self {
            Arrival::Cbr { interval } => *interval as f64,
            Arrival::Pattern { intervals } => {
                intervals.iter().sum::<u64>() as f64 / intervals.len() as f64
            }
        }
    }
}

/// A traffic flow (one established connection).
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Unique flow id (used in delivery records).
    pub id: u32,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Service level of every packet.
    pub sl: ServiceLevel,
    /// Packet size in bytes.
    pub packet_bytes: u32,
    /// Arrival process.
    pub arrival: Arrival,
    /// Cycle of the first packet.
    pub start: Cycles,
    /// Stop generating after this cycle (`None` = run forever).
    pub stop: Option<Cycles>,
}

impl FlowSpec {
    /// Offered load of the flow in bytes/cycle.
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        self.packet_bytes as f64 / self.arrival.mean_gap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_gaps_are_constant() {
        let a = Arrival::Cbr { interval: 100 };
        for seq in 0..5 {
            assert_eq!(a.gap(seq), 100);
        }
        assert_eq!(a.mean_gap(), 100.0);
    }

    #[test]
    fn pattern_cycles() {
        let a = Arrival::Pattern {
            intervals: vec![10, 20, 30],
        };
        assert_eq!(a.gap(0), 10);
        assert_eq!(a.gap(1), 20);
        assert_eq!(a.gap(2), 30);
        assert_eq!(a.gap(3), 10);
        assert_eq!(a.mean_gap(), 20.0);
    }

    #[test]
    fn offered_load() {
        let f = FlowSpec {
            id: 0,
            src: HostId(0),
            dst: HostId(1),
            sl: ServiceLevel::new(0).unwrap(),
            packet_bytes: 256,
            arrival: Arrival::Cbr { interval: 512 },
            start: 0,
            stop: None,
        };
        assert_eq!(f.offered_load(), 0.5);
    }
}
