//! # iba-sim — discrete-event InfiniBand fabric simulator
//!
//! A from-scratch, deterministic, single-threaded discrete-event
//! simulator of an IBA subnet, implementing the architectural elements
//! the paper's evaluation depends on:
//!
//! * full-duplex point-to-point links (1x/4x/12x) — one *cycle* is the
//!   time to move one byte over a 1x link ([`time`]);
//! * ports with up to 16 virtual lanes, each VL buffer sized in whole
//!   packets (the paper: four), and credit-based flow control per VL
//!   ([`buffer`], [`port`]);
//! * a multiplexed crossbar per switch: at any instant at most one VL of
//!   each input port is transmitting and one VL of each output port is
//!   receiving ([`fabric`]);
//! * output arbitration by the IBA `VLArbitrationTable` engine from
//!   `iba-core`, VL15 always first;
//! * host channel adapters with per-VL injection queues and CBR/pattern
//!   sources ([`packet`]);
//! * deterministic event ordering — identical runs for identical inputs.
//!
//! The simulator reports per-port utilisation and hands every delivered
//! packet to an [`trace::Observer`] for measurement.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arb;
pub mod buffer;
pub mod config;
pub mod event;
pub mod fabric;
pub mod fault;
pub mod invariants;
pub mod packet;
pub mod port;
pub mod time;
pub mod trace;

pub use arb::PortArbiter;
pub use buffer::VlQueueSet;
pub use config::{ArbiterMode, SimConfig};
pub use event::{Event, EventQueue};
pub use fabric::{Fabric, FabricStats, NodeId};
pub use fault::{encode_target, FaultAction, FaultPlan, FaultState};
pub use packet::{Arrival, FlowSpec, Packet};
pub use port::PortStats;
pub use time::{cycles_for_bytes, interval_for_rate, Cycles, LINK_1X_MBPS};
pub use trace::{DeliveryRecord, NullObserver, Observer};
