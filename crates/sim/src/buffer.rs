//! Virtual-lane buffers, the shared packet pool, and credit accounting.
//!
//! Every queued packet in the fabric — switch input VL buffers and host
//! injection queues alike — lives in one [`PacketPool`]: a slab of
//! reusable slots threaded by an intrusive free list. Queues
//! ([`VlBuffer`]) are intrusive singly-linked lists of slot indices, so
//! pushing and popping a packet is two or three index writes and **no
//! allocation** once the pool has warmed up to the fabric's peak
//! population. The previous design kept a `VecDeque<Packet>` per VL per
//! port (16 lanes x ports x switches of them), each growing its own
//! heap block; the pool replaces all of that with a single arena that
//! the steady state never grows.
//!
//! Pool placement is driven purely by push/pop order, which is itself
//! fully determined by the simulation's event order — pooling does not
//! perturb determinism.

use crate::packet::Packet;

/// Sentinel index: "no slot".
const NIL: u32 = u32::MAX;

struct Slot {
    packet: Packet,
    /// Next slot in whichever list (queue or free list) owns this slot.
    next: u32,
}

/// A slab of packet slots with an intrusive free list, shared by every
/// queue of a fabric.
#[derive(Default)]
pub struct PacketPool {
    slots: Vec<Slot>,
    free_head: u32,
    in_use: usize,
}

impl PacketPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        PacketPool {
            slots: Vec::new(),
            free_head: NIL,
            in_use: 0,
        }
    }

    /// A pool with `capacity` slots pre-allocated (queues still start
    /// empty).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut pool = PacketPool::new();
        pool.slots.reserve(capacity);
        pool
    }

    /// Packets currently held in queues.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total slots ever allocated (the high-water mark of the live
    /// packet population).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn alloc(&mut self, packet: Packet) -> u32 {
        self.in_use += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next;
            slot.packet = packet;
            slot.next = NIL;
            idx
        } else {
            assert!(
                self.slots.len() < NIL as usize,
                "packet pool exhausted the u32 index space"
            );
            self.slots.push(Slot { packet, next: NIL });
            (self.slots.len() - 1) as u32
        }
    }

    fn release(&mut self, idx: u32) {
        self.in_use -= 1;
        let slot = &mut self.slots[idx as usize];
        slot.next = self.free_head;
        self.free_head = idx;
    }
}

/// One VL's receive buffer at an input port: a FIFO of whole packets
/// with a byte-capacity bound ("each VL is large enough to store four
/// whole packets"). The packets themselves live in the fabric's shared
/// [`PacketPool`]; the buffer is an intrusive list of slot indices.
#[derive(Clone, Debug)]
pub struct VlBuffer {
    head: u32,
    tail: u32,
    len: usize,
    used: u64,
    capacity: u64,
}

impl VlBuffer {
    /// An empty buffer of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        VlBuffer {
            head: NIL,
            tail: NIL,
            len: 0,
            used: 0,
            capacity,
        }
    }

    /// An empty buffer with no byte bound (host injection queues:
    /// sources are paced by their arrival process, not back-pressure).
    #[must_use]
    pub fn unbounded() -> Self {
        VlBuffer::new(u64::MAX)
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently buffered.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Whether `bytes` more would fit.
    #[must_use]
    pub fn fits(&self, bytes: u64) -> bool {
        self.used.saturating_add(bytes) <= self.capacity
    }

    /// Packets queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// No packets queued?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The head packet, if any.
    #[must_use]
    pub fn head<'p>(&self, pool: &'p PacketPool) -> Option<&'p Packet> {
        if self.head == NIL {
            None
        } else {
            Some(&pool.slots[self.head as usize].packet)
        }
    }

    /// Appends a packet. Panics on overflow — the sender must have held
    /// credits, so an overflow is a flow-control bug.
    pub fn push(&mut self, pool: &mut PacketPool, p: Packet) {
        assert!(
            self.fits(u64::from(p.bytes)),
            "VL buffer overflow: flow control violated"
        );
        self.used += u64::from(p.bytes);
        self.len += 1;
        let idx = pool.alloc(p);
        if self.tail == NIL {
            self.head = idx;
        } else {
            pool.slots[self.tail as usize].next = idx;
        }
        self.tail = idx;
    }

    /// Removes and returns the head packet, returning its slot to the
    /// pool.
    pub fn pop(&mut self, pool: &mut PacketPool) -> Option<Packet> {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        let slot = &pool.slots[idx as usize];
        let p = slot.packet.clone();
        self.head = slot.next;
        if self.head == NIL {
            self.tail = NIL;
        }
        pool.release(idx);
        self.used -= u64::from(p.bytes);
        self.len -= 1;
        Some(p)
    }
}

/// Sender-side credit counters for one link: bytes of free space in the
/// peer's input VL buffers. Decremented when a transfer starts,
/// replenished when the peer drains the packet.
#[derive(Clone, Debug)]
pub struct Credits {
    per_vl: [u64; 16],
}

impl Credits {
    /// Full credits for a peer whose every VL buffer holds
    /// `capacity_bytes`.
    #[must_use]
    pub fn full(capacity_bytes: u64) -> Self {
        Credits {
            per_vl: [capacity_bytes; 16],
        }
    }

    /// Credits available on a VL.
    #[must_use]
    pub fn available(&self, vl: usize) -> u64 {
        self.per_vl[vl]
    }

    /// Whether `bytes` may be sent on `vl`.
    #[must_use]
    pub fn can_send(&self, vl: usize, bytes: u64) -> bool {
        self.per_vl[vl] >= bytes
    }

    /// Consumes credit at transfer start.
    pub fn consume(&mut self, vl: usize, bytes: u64) {
        assert!(self.per_vl[vl] >= bytes, "credit underflow on VL{vl}");
        self.per_vl[vl] -= bytes;
    }

    /// Returns credit when the peer frees the space.
    pub fn restore(&mut self, vl: usize, bytes: u64) {
        self.per_vl[vl] += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::ServiceLevel;
    use iba_topo::HostId;

    fn pkt(bytes: u32) -> Packet {
        Packet {
            flow: 0,
            seq: 0,
            src: HostId(0),
            dst: HostId(1),
            sl: ServiceLevel::new(0).unwrap(),
            bytes,
            created: 0,
        }
    }

    #[test]
    fn buffer_fifo_and_accounting() {
        let mut pool = PacketPool::new();
        let mut b = VlBuffer::new(1024);
        assert!(b.is_empty());
        b.push(&mut pool, pkt(256));
        b.push(&mut pool, pkt(512));
        assert_eq!(b.len(), 2);
        assert_eq!(b.used(), 768);
        assert!(b.fits(256));
        assert!(!b.fits(257));
        assert_eq!(b.pop(&mut pool).unwrap().bytes, 256);
        assert_eq!(b.used(), 512);
        assert_eq!(b.head(&pool).unwrap().bytes, 512);
    }

    #[test]
    #[should_panic(expected = "flow control violated")]
    fn buffer_overflow_is_a_bug() {
        let mut pool = PacketPool::new();
        let mut b = VlBuffer::new(100);
        b.push(&mut pool, pkt(101));
    }

    #[test]
    fn four_packet_rule() {
        // Four whole packets fit, a fifth does not.
        let mut pool = PacketPool::new();
        let mut b = VlBuffer::new(4 * 256);
        for _ in 0..4 {
            b.push(&mut pool, pkt(256));
        }
        assert!(!b.fits(256));
    }

    #[test]
    fn pool_recycles_slots_across_queues() {
        let mut pool = PacketPool::new();
        let mut a = VlBuffer::new(10_000);
        let mut b = VlBuffer::new(10_000);
        for _ in 0..4 {
            a.push(&mut pool, pkt(100));
        }
        assert_eq!(pool.in_use(), 4);
        assert_eq!(pool.capacity(), 4);
        while a.pop(&mut pool).is_some() {}
        assert_eq!(pool.in_use(), 0);
        // A different queue reuses the same four slots: the arena does
        // not grow in steady state.
        for i in 0..4u32 {
            b.push(&mut pool, pkt(100 + i));
        }
        assert_eq!(pool.capacity(), 4);
        assert_eq!(pool.in_use(), 4);
        // FIFO order survived recycling (free list is LIFO, queues are
        // linked in push order regardless).
        for i in 0..4u32 {
            assert_eq!(b.pop(&mut pool).unwrap().bytes, 100 + i);
        }
    }

    #[test]
    fn unbounded_buffer_never_overflows() {
        let mut pool = PacketPool::new();
        let mut q = VlBuffer::unbounded();
        for _ in 0..100 {
            q.push(&mut pool, pkt(u32::MAX / 2));
        }
        assert_eq!(q.len(), 100);
    }

    #[test]
    fn credits_consume_restore() {
        let mut c = Credits::full(1024);
        assert!(c.can_send(3, 1024));
        c.consume(3, 1000);
        assert!(!c.can_send(3, 25));
        assert!(c.can_send(3, 24));
        c.restore(3, 1000);
        assert_eq!(c.available(3), 1024);
        // Other VLs unaffected.
        assert_eq!(c.available(4), 1024);
    }

    #[test]
    #[should_panic(expected = "credit underflow")]
    fn credit_underflow_is_a_bug() {
        let mut c = Credits::full(10);
        c.consume(0, 11);
    }
}
