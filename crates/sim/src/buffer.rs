//! Virtual-lane buffers, the shared packet pool, and credit accounting.
//!
//! Every queued packet in the fabric — switch input VL buffers and host
//! injection queues alike — lives in one [`PacketPool`]: a slab of
//! reusable slots threaded by an intrusive free list. Queues
//! ([`VlBuffer`]) are intrusive singly-linked lists of slot indices, so
//! pushing and popping a packet is two or three index writes and **no
//! allocation** once the pool has warmed up to the fabric's peak
//! population. The previous design kept a `VecDeque<Packet>` per VL per
//! port (16 lanes x ports x switches of them), each growing its own
//! heap block; the pool replaces all of that with a single arena that
//! the steady state never grows.
//!
//! Pool placement is driven purely by push/pop order, which is itself
//! fully determined by the simulation's event order — pooling does not
//! perturb determinism.

use crate::packet::Packet;

/// Sentinel index: "no slot".
const NIL: u32 = u32::MAX;

struct Slot {
    packet: Packet,
    /// Next slot in whichever list (queue or free list) owns this slot.
    next: u32,
}

/// A slab of packet slots with an intrusive free list, shared by every
/// queue of a fabric.
#[derive(Default)]
pub struct PacketPool {
    slots: Vec<Slot>,
    free_head: u32,
    in_use: usize,
}

impl PacketPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        PacketPool {
            slots: Vec::new(),
            free_head: NIL,
            in_use: 0,
        }
    }

    /// A pool with `capacity` slots pre-allocated (queues still start
    /// empty).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut pool = PacketPool::new();
        pool.slots.reserve(capacity);
        pool
    }

    /// Packets currently held in queues.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total slots ever allocated (the high-water mark of the live
    /// packet population).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn alloc(&mut self, packet: Packet) -> u32 {
        self.in_use += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next;
            slot.packet = packet;
            slot.next = NIL;
            idx
        } else {
            assert!(
                self.slots.len() < NIL as usize,
                "packet pool exhausted the u32 index space"
            );
            self.slots.push(Slot { packet, next: NIL });
            (self.slots.len() - 1) as u32
        }
    }

    #[inline]
    fn release(&mut self, idx: u32) {
        self.in_use -= 1;
        let slot = &mut self.slots[idx as usize];
        slot.next = self.free_head;
        self.free_head = idx;
    }
}

/// One VL's receive buffer at an input port: a FIFO of whole packets
/// with a byte-capacity bound ("each VL is large enough to store four
/// whole packets"). The packets themselves live in the fabric's shared
/// [`PacketPool`]; the buffer is an intrusive list of slot indices.
#[derive(Clone, Debug)]
pub struct VlBuffer {
    head: u32,
    tail: u32,
    len: usize,
    used: u64,
    capacity: u64,
}

impl VlBuffer {
    /// An empty buffer of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        VlBuffer {
            head: NIL,
            tail: NIL,
            len: 0,
            used: 0,
            capacity,
        }
    }

    /// An empty buffer with no byte bound (host injection queues:
    /// sources are paced by their arrival process, not back-pressure).
    #[must_use]
    pub fn unbounded() -> Self {
        VlBuffer::new(u64::MAX)
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently buffered.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Whether `bytes` more would fit.
    #[must_use]
    pub fn fits(&self, bytes: u64) -> bool {
        self.used.saturating_add(bytes) <= self.capacity
    }

    /// Packets queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// No packets queued?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The head packet, if any.
    #[must_use]
    pub fn head<'p>(&self, pool: &'p PacketPool) -> Option<&'p Packet> {
        if self.head == NIL {
            None
        } else {
            Some(&pool.slots[self.head as usize].packet)
        }
    }

    /// Appends a packet. Panics on overflow — the sender must have held
    /// credits, so an overflow is a flow-control bug.
    pub fn push(&mut self, pool: &mut PacketPool, p: Packet) {
        assert!(
            self.fits(u64::from(p.bytes)),
            "VL buffer overflow: flow control violated"
        );
        self.used += u64::from(p.bytes);
        self.len += 1;
        let idx = pool.alloc(p);
        if self.tail == NIL {
            self.head = idx;
        } else {
            pool.slots[self.tail as usize].next = idx;
        }
        self.tail = idx;
    }

    /// Removes and returns the head packet, returning its slot to the
    /// pool.
    pub fn pop(&mut self, pool: &mut PacketPool) -> Option<Packet> {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        let slot = &pool.slots[idx as usize];
        let p = slot.packet.clone();
        self.head = slot.next;
        if self.head == NIL {
            self.tail = NIL;
        }
        pool.release(idx);
        self.used -= u64::from(p.bytes);
        self.len -= 1;
        Some(p)
    }
}

/// All 16 VL queues of one port in struct-of-arrays layout, plus an
/// occupancy bitmask.
///
/// Semantically this is `[VlBuffer; 16]`, but the hot path never asks
/// "what is the state of lane v" — it asks "which lanes have a head
/// packet". Keeping heads, tails, lengths and byte counts in parallel
/// arrays puts each question's answers on one or two cache lines, and
/// the `occupied` bitmask answers the candidate scan in a single
/// `trailing_zeros` loop over set bits instead of sixteen head probes
/// (see the compiled-arbitration section of `DESIGN.md`).
#[derive(Clone, Debug)]
pub struct VlQueueSet {
    /// Head slot index per lane (`NIL` when empty).
    head: [u32; 16],
    /// Tail slot index per lane (`NIL` when empty).
    tail: [u32; 16],
    /// Packets queued per lane.
    len: [u32; 16],
    /// Bytes queued per lane.
    used: [u64; 16],
    /// Wire size of the head packet per lane (valid only while the
    /// lane's `occupied` bit is set). The arbitration candidate scan
    /// reads this instead of dereferencing the pool slot — the cache is
    /// refreshed on the push/pop that changes a lane's head, which
    /// happens far less often than the scan runs.
    head_bytes: [u32; 16],
    /// Byte capacity shared by every lane.
    capacity: u64,
    /// Bit `v` set iff lane `v` holds at least one packet.
    occupied: u16,
}

impl VlQueueSet {
    /// Sixteen empty queues of `capacity` bytes each.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        VlQueueSet {
            head: [NIL; 16],
            tail: [NIL; 16],
            len: [0; 16],
            used: [0; 16],
            head_bytes: [0; 16],
            capacity,
            occupied: 0,
        }
    }

    /// Sixteen empty queues with no byte bound (host injection queues:
    /// sources are paced by their arrival process, not back-pressure).
    #[must_use]
    pub fn unbounded() -> Self {
        VlQueueSet::new(u64::MAX)
    }

    /// Bitmask of lanes holding at least one packet (bit `v` = VL v).
    #[must_use]
    #[inline]
    pub fn occupied(&self) -> u16 {
        self.occupied
    }

    /// Packets queued on lane `vl`.
    #[must_use]
    #[inline]
    pub fn len(&self, vl: usize) -> usize {
        self.len[vl] as usize
    }

    /// Whether every lane is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Bytes queued on lane `vl`.
    #[must_use]
    pub fn used(&self, vl: usize) -> u64 {
        self.used[vl]
    }

    /// Bytes queued over all lanes.
    #[must_use]
    pub fn total_used(&self) -> u64 {
        self.used.iter().sum()
    }

    /// Whether `bytes` more would fit on lane `vl`.
    #[must_use]
    #[inline]
    pub fn fits(&self, vl: usize, bytes: u64) -> bool {
        self.used[vl].saturating_add(bytes) <= self.capacity
    }

    /// Wire size of the head packet of lane `vl`. Only meaningful while
    /// the lane's [`VlQueueSet::occupied`] bit is set.
    #[must_use]
    #[inline]
    pub fn head_bytes(&self, vl: usize) -> u32 {
        self.head_bytes[vl]
    }

    /// The head packet of lane `vl`, if any.
    #[must_use]
    #[inline]
    pub fn head<'p>(&self, pool: &'p PacketPool, vl: usize) -> Option<&'p Packet> {
        if self.head[vl] == NIL {
            None
        } else {
            Some(&pool.slots[self.head[vl] as usize].packet)
        }
    }

    /// Appends a packet to lane `vl`. Panics on overflow — the sender
    /// must have held credits, so an overflow is a flow-control bug.
    #[inline]
    pub fn push(&mut self, pool: &mut PacketPool, vl: usize, p: Packet) {
        assert!(
            self.fits(vl, u64::from(p.bytes)),
            "VL buffer overflow: flow control violated"
        );
        self.used[vl] += u64::from(p.bytes);
        self.len[vl] += 1;
        self.occupied |= 1 << vl;
        let bytes = p.bytes;
        let idx = pool.alloc(p);
        if self.tail[vl] == NIL {
            self.head[vl] = idx;
            self.head_bytes[vl] = bytes;
        } else {
            pool.slots[self.tail[vl] as usize].next = idx;
        }
        self.tail[vl] = idx;
    }

    /// Removes and returns the head packet of lane `vl`, returning its
    /// slot to the pool.
    #[inline]
    pub fn pop(&mut self, pool: &mut PacketPool, vl: usize) -> Option<Packet> {
        if self.head[vl] == NIL {
            return None;
        }
        let idx = self.head[vl];
        let slot = &pool.slots[idx as usize];
        let p = slot.packet.clone();
        self.head[vl] = slot.next;
        if self.head[vl] == NIL {
            self.tail[vl] = NIL;
            self.occupied &= !(1 << vl);
        } else {
            self.head_bytes[vl] = pool.slots[self.head[vl] as usize].packet.bytes;
        }
        pool.release(idx);
        self.used[vl] -= u64::from(p.bytes);
        self.len[vl] -= 1;
        Some(p)
    }
}

/// Sender-side credit counters for one link: bytes of free space in the
/// peer's input VL buffers. Decremented when a transfer starts,
/// replenished when the peer drains the packet.
#[derive(Clone, Debug)]
pub struct Credits {
    per_vl: [u64; 16],
}

impl Credits {
    /// Full credits for a peer whose every VL buffer holds
    /// `capacity_bytes`.
    #[must_use]
    pub fn full(capacity_bytes: u64) -> Self {
        Credits {
            per_vl: [capacity_bytes; 16],
        }
    }

    /// Credits available on a VL.
    #[must_use]
    #[inline]
    pub fn available(&self, vl: usize) -> u64 {
        self.per_vl[vl]
    }

    /// Whether `bytes` may be sent on `vl`.
    #[must_use]
    #[inline]
    pub fn can_send(&self, vl: usize, bytes: u64) -> bool {
        self.per_vl[vl] >= bytes
    }

    /// Consumes credit at transfer start.
    #[inline]
    pub fn consume(&mut self, vl: usize, bytes: u64) {
        assert!(self.per_vl[vl] >= bytes, "credit underflow on VL{vl}");
        self.per_vl[vl] -= bytes;
    }

    /// Returns credit when the peer frees the space.
    #[inline]
    pub fn restore(&mut self, vl: usize, bytes: u64) {
        self.per_vl[vl] += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::ServiceLevel;
    use iba_topo::HostId;

    fn pkt(bytes: u32) -> Packet {
        Packet {
            flow: 0,
            seq: 0,
            src: HostId(0),
            dst: HostId(1),
            sl: ServiceLevel::new(0).unwrap(),
            bytes,
            created: 0,
        }
    }

    #[test]
    fn buffer_fifo_and_accounting() {
        let mut pool = PacketPool::new();
        let mut b = VlBuffer::new(1024);
        assert!(b.is_empty());
        b.push(&mut pool, pkt(256));
        b.push(&mut pool, pkt(512));
        assert_eq!(b.len(), 2);
        assert_eq!(b.used(), 768);
        assert!(b.fits(256));
        assert!(!b.fits(257));
        assert_eq!(b.pop(&mut pool).unwrap().bytes, 256);
        assert_eq!(b.used(), 512);
        assert_eq!(b.head(&pool).unwrap().bytes, 512);
    }

    #[test]
    #[should_panic(expected = "flow control violated")]
    fn buffer_overflow_is_a_bug() {
        let mut pool = PacketPool::new();
        let mut b = VlBuffer::new(100);
        b.push(&mut pool, pkt(101));
    }

    #[test]
    fn four_packet_rule() {
        // Four whole packets fit, a fifth does not.
        let mut pool = PacketPool::new();
        let mut b = VlBuffer::new(4 * 256);
        for _ in 0..4 {
            b.push(&mut pool, pkt(256));
        }
        assert!(!b.fits(256));
    }

    #[test]
    fn pool_recycles_slots_across_queues() {
        let mut pool = PacketPool::new();
        let mut a = VlBuffer::new(10_000);
        let mut b = VlBuffer::new(10_000);
        for _ in 0..4 {
            a.push(&mut pool, pkt(100));
        }
        assert_eq!(pool.in_use(), 4);
        assert_eq!(pool.capacity(), 4);
        while a.pop(&mut pool).is_some() {}
        assert_eq!(pool.in_use(), 0);
        // A different queue reuses the same four slots: the arena does
        // not grow in steady state.
        for i in 0..4u32 {
            b.push(&mut pool, pkt(100 + i));
        }
        assert_eq!(pool.capacity(), 4);
        assert_eq!(pool.in_use(), 4);
        // FIFO order survived recycling (free list is LIFO, queues are
        // linked in push order regardless).
        for i in 0..4u32 {
            assert_eq!(b.pop(&mut pool).unwrap().bytes, 100 + i);
        }
    }

    #[test]
    fn unbounded_buffer_never_overflows() {
        let mut pool = PacketPool::new();
        let mut q = VlBuffer::unbounded();
        for _ in 0..100 {
            q.push(&mut pool, pkt(u32::MAX / 2));
        }
        assert_eq!(q.len(), 100);
    }

    #[test]
    fn queue_set_tracks_occupancy_mask() {
        let mut pool = PacketPool::new();
        let mut q = VlQueueSet::new(1024);
        assert!(q.is_empty());
        assert_eq!(q.occupied(), 0);
        q.push(&mut pool, 3, pkt(256));
        q.push(&mut pool, 3, pkt(128));
        q.push(&mut pool, 15, pkt(64));
        assert_eq!(q.occupied(), (1 << 3) | (1 << 15));
        assert_eq!(q.len(3), 2);
        assert_eq!(q.used(3), 384);
        assert_eq!(q.total_used(), 448);
        assert_eq!(q.head(&pool, 3).unwrap().bytes, 256);
        assert_eq!(q.pop(&mut pool, 3).unwrap().bytes, 256);
        assert_eq!(q.occupied(), (1 << 3) | (1 << 15), "lane 3 still has one");
        assert_eq!(q.pop(&mut pool, 3).unwrap().bytes, 128);
        assert_eq!(q.occupied(), 1 << 15, "lane 3 drained");
        assert_eq!(q.pop(&mut pool, 15).unwrap().bytes, 64);
        assert!(q.is_empty());
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn queue_set_matches_vl_buffer_fifo_semantics() {
        // The SoA layout is an internal change: per-lane behaviour must
        // be indistinguishable from the original one-VlBuffer-per-lane
        // layout under an interleaved push/pop sequence.
        let mut pool_a = PacketPool::new();
        let mut pool_b = PacketPool::new();
        let mut set = VlQueueSet::new(4 * 256);
        let mut bufs: Vec<VlBuffer> = (0..16).map(|_| VlBuffer::new(4 * 256)).collect();
        let ops = [(2, 256), (5, 100), (2, 128), (5, 30), (9, 256)];
        for &(vl, bytes) in &ops {
            set.push(&mut pool_a, vl, pkt(bytes));
            bufs[vl].push(&mut pool_b, pkt(bytes));
        }
        for (vl, buf) in bufs.iter_mut().enumerate() {
            assert_eq!(set.len(vl), buf.len(), "lane {vl} length");
            assert_eq!(set.used(vl), buf.used(), "lane {vl} bytes");
            assert_eq!(set.fits(vl, 256), buf.fits(256), "lane {vl} fits");
            loop {
                let a = set.pop(&mut pool_a, vl).map(|p| p.bytes);
                let b = buf.pop(&mut pool_b).map(|p| p.bytes);
                assert_eq!(a, b, "lane {vl} pop order");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "flow control violated")]
    fn queue_set_overflow_is_a_bug() {
        let mut pool = PacketPool::new();
        let mut q = VlQueueSet::new(100);
        q.push(&mut pool, 0, pkt(101));
    }

    #[test]
    fn credits_consume_restore() {
        let mut c = Credits::full(1024);
        assert!(c.can_send(3, 1024));
        c.consume(3, 1000);
        assert!(!c.can_send(3, 25));
        assert!(c.can_send(3, 24));
        c.restore(3, 1000);
        assert_eq!(c.available(3), 1024);
        // Other VLs unaffected.
        assert_eq!(c.available(4), 1024);
    }

    #[test]
    #[should_panic(expected = "credit underflow")]
    fn credit_underflow_is_a_bug() {
        let mut c = Credits::full(10);
        c.consume(0, 11);
    }
}
