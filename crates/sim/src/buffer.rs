//! Virtual-lane buffers and credit accounting.

use crate::packet::Packet;
use std::collections::VecDeque;

/// One VL's receive buffer at an input port: a FIFO of whole packets
/// with a byte-capacity bound ("each VL is large enough to store four
/// whole packets").
#[derive(Clone, Debug)]
pub struct VlBuffer {
    queue: VecDeque<Packet>,
    used: u64,
    capacity: u64,
}

impl VlBuffer {
    /// An empty buffer of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        VlBuffer {
            queue: VecDeque::new(),
            used: 0,
            capacity,
        }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently buffered.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Whether `bytes` more would fit.
    #[must_use]
    pub fn fits(&self, bytes: u64) -> bool {
        self.used + bytes <= self.capacity
    }

    /// Packets queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// No packets queued?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The head packet, if any.
    #[must_use]
    pub fn head(&self) -> Option<&Packet> {
        self.queue.front()
    }

    /// Appends a packet. Panics on overflow — the sender must have held
    /// credits, so an overflow is a flow-control bug.
    pub fn push(&mut self, p: Packet) {
        assert!(
            self.fits(u64::from(p.bytes)),
            "VL buffer overflow: flow control violated"
        );
        self.used += u64::from(p.bytes);
        self.queue.push_back(p);
    }

    /// Removes and returns the head packet.
    pub fn pop(&mut self) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        self.used -= u64::from(p.bytes);
        Some(p)
    }
}

/// Sender-side credit counters for one link: bytes of free space in the
/// peer's input VL buffers. Decremented when a transfer starts,
/// replenished when the peer drains the packet.
#[derive(Clone, Debug)]
pub struct Credits {
    per_vl: [u64; 16],
}

impl Credits {
    /// Full credits for a peer whose every VL buffer holds
    /// `capacity_bytes`.
    #[must_use]
    pub fn full(capacity_bytes: u64) -> Self {
        Credits {
            per_vl: [capacity_bytes; 16],
        }
    }

    /// Credits available on a VL.
    #[must_use]
    pub fn available(&self, vl: usize) -> u64 {
        self.per_vl[vl]
    }

    /// Whether `bytes` may be sent on `vl`.
    #[must_use]
    pub fn can_send(&self, vl: usize, bytes: u64) -> bool {
        self.per_vl[vl] >= bytes
    }

    /// Consumes credit at transfer start.
    pub fn consume(&mut self, vl: usize, bytes: u64) {
        assert!(self.per_vl[vl] >= bytes, "credit underflow on VL{vl}");
        self.per_vl[vl] -= bytes;
    }

    /// Returns credit when the peer frees the space.
    pub fn restore(&mut self, vl: usize, bytes: u64) {
        self.per_vl[vl] += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::ServiceLevel;
    use iba_topo::HostId;

    fn pkt(bytes: u32) -> Packet {
        Packet {
            flow: 0,
            seq: 0,
            src: HostId(0),
            dst: HostId(1),
            sl: ServiceLevel::new(0).unwrap(),
            bytes,
            created: 0,
        }
    }

    #[test]
    fn buffer_fifo_and_accounting() {
        let mut b = VlBuffer::new(1024);
        assert!(b.is_empty());
        b.push(pkt(256));
        b.push(pkt(512));
        assert_eq!(b.len(), 2);
        assert_eq!(b.used(), 768);
        assert!(b.fits(256));
        assert!(!b.fits(257));
        assert_eq!(b.pop().unwrap().bytes, 256);
        assert_eq!(b.used(), 512);
        assert_eq!(b.head().unwrap().bytes, 512);
    }

    #[test]
    #[should_panic(expected = "flow control violated")]
    fn buffer_overflow_is_a_bug() {
        let mut b = VlBuffer::new(100);
        b.push(pkt(101));
    }

    #[test]
    fn four_packet_rule() {
        // Four whole packets fit, a fifth does not.
        let mut b = VlBuffer::new(4 * 256);
        for _ in 0..4 {
            b.push(pkt(256));
        }
        assert!(!b.fits(256));
    }

    #[test]
    fn credits_consume_restore() {
        let mut c = Credits::full(1024);
        assert!(c.can_send(3, 1024));
        c.consume(3, 1000);
        assert!(!c.can_send(3, 25));
        assert!(c.can_send(3, 24));
        c.restore(3, 1000);
        assert_eq!(c.available(3), 1024);
        // Other VLs unaffected.
        assert_eq!(c.available(4), 1024);
    }

    #[test]
    #[should_panic(expected = "credit underflow")]
    fn credit_underflow_is_a_bug() {
        let mut c = Credits::full(10);
        c.consume(0, 11);
    }
}
