//! Simulator-wide properties: packet conservation, in-order delivery,
//! determinism — on random fabrics with random flow sets.

use iba_core::ServiceLevel;
use iba_sim::{Arrival, Fabric, FlowSpec, SimConfig};
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::{updown, HostId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct FlowPick {
    src: u16,
    dst: u16,
    sl: u8,
    interval: u64,
    packets: u64,
}

fn arb_flow() -> impl Strategy<Value = FlowPick> {
    (0u16..16, 0u16..16, 0u8..10, 300u64..4000, 1u64..40).prop_map(
        |(src, dst, sl, interval, packets)| FlowPick {
            src,
            dst,
            sl,
            interval,
            packets,
        },
    )
}

fn build(seed: u64, picks: &[FlowPick], mtu: u32) -> (Fabric, u64) {
    let topo = generate(IrregularConfig::with_switches(4, seed));
    let routing = updown::compute(&topo);
    let mut fabric = Fabric::new(topo, routing, SimConfig::paper_default(mtu));
    let mut expected = 0u64;
    for (i, p) in picks.iter().enumerate() {
        if p.src == p.dst {
            continue;
        }
        let stop = p.interval * (p.packets - 1);
        fabric.add_flow(FlowSpec {
            id: i as u32,
            src: HostId(p.src),
            dst: HostId(p.dst),
            sl: ServiceLevel::new(p.sl).unwrap(),
            packet_bytes: mtu,
            arrival: Arrival::Cbr { interval: p.interval },
            start: 0,
            stop: Some(stop),
        });
        expected += p.packets;
    }
    (fabric, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated packet is delivered exactly once (no loss, no
    /// duplication) once the fabric drains.
    #[test]
    fn packet_conservation(
        seed in 0u64..1000,
        picks in prop::collection::vec(arb_flow(), 1..10),
    ) {
        let (mut fabric, expected) = build(seed, &picks, 256);
        let mut obs = iba_sim::trace::VecObserver::default();
        fabric.run_until(u64::MAX / 2, &mut obs); // run to drain
        prop_assert_eq!(obs.records.len() as u64, expected);
        // Exactly-once: (flow, seq) pairs are unique.
        let mut seen = std::collections::HashSet::new();
        for r in &obs.records {
            prop_assert!(seen.insert((r.flow, r.seq)), "duplicate {:?}", (r.flow, r.seq));
        }
    }

    /// Packets of one flow arrive in generation order (same SL, same
    /// path, FIFO VL buffers).
    #[test]
    fn per_flow_in_order_delivery(
        seed in 0u64..1000,
        picks in prop::collection::vec(arb_flow(), 1..8),
    ) {
        let (mut fabric, _) = build(seed, &picks, 256);
        let mut obs = iba_sim::trace::VecObserver::default();
        fabric.run_until(u64::MAX / 2, &mut obs);
        let mut last: std::collections::HashMap<u32, u64> = Default::default();
        for r in &obs.records {
            if let Some(prev) = last.insert(r.flow, r.seq) {
                prop_assert!(r.seq > prev, "flow {} reordered", r.flow);
            }
        }
    }

    /// Delays are at least the ideal store-and-forward time and the
    /// simulation is deterministic.
    #[test]
    fn delays_bounded_below_and_deterministic(
        seed in 0u64..1000,
        picks in prop::collection::vec(arb_flow(), 1..6),
    ) {
        let run = || {
            let (mut fabric, _) = build(seed, &picks, 256);
            let mut obs = iba_sim::trace::VecObserver::default();
            fabric.run_until(u64::MAX / 2, &mut obs);
            obs.records
                .iter()
                .map(|r| (r.flow, r.seq, r.created, r.delivered))
                .collect::<Vec<_>>()
        };
        let a = run();
        for &(_, _, created, delivered) in &a {
            // Minimum: two link crossings (host->switch, switch->host).
            prop_assert!(delivered >= created + 2 * 256);
        }
        prop_assert_eq!(a, run());
    }

    /// The byte accounting of the fabric summary matches the observer.
    #[test]
    fn summary_matches_observer(
        seed in 0u64..1000,
        picks in prop::collection::vec(arb_flow(), 1..8),
    ) {
        let (mut fabric, _) = build(seed, &picks, 256);
        let mut obs = iba_sim::trace::VecObserver::default();
        fabric.run_until(u64::MAX / 2, &mut obs);
        let st = fabric.summarize();
        let observed: u64 = obs.records.iter().map(|r| u64::from(r.bytes)).sum();
        prop_assert_eq!(st.delivered_bytes, observed);
        prop_assert_eq!(st.injected_bytes, observed, "drained fabric");
        prop_assert_eq!(st.delivered_packets, obs.records.len() as u64);
    }
}
