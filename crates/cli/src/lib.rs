//! # iba-cli — command-line driver
//!
//! The `ibaqos` binary exposes the library over four subcommands:
//!
//! ```text
//! ibaqos topo   [--switches N] [--seed S] [--dot]       fabric summary / DOT
//! ibaqos fill   [--switches N] [--seed S] [--mtu M]     admission to saturation
//! ibaqos run    [--switches N] [--seed S] [--mtu M]
//!               [--steady-packets P] [--background]     full experiment
//! ibaqos sweep  [run options] [--seeds N] [--threads T]
//!               [--perfetto FILE]                       parallel seed sweep
//! ibaqos report [run options]                           per-VL metrics report
//! ibaqos trace  [run options] [--limit L]
//!               [--perfetto FILE]                       decoded event trace
//! ibaqos audit  [--allocator A] [--mtu M] [--seed S]
//!               [--perfetto FILE]                       service-guarantee audit
//! ibaqos chaos  [--allocator A] [--mtu M] [--seed S]
//!               [--rounds R] [--seeds N] [--threads T]  fault-injection + recovery
//! ibaqos serve  [--switches N] [--seed S] [--shards K]
//!               [--requests N] [--replay] [--window W]
//!               [--slo SPEC] [--flight-dir DIR]
//!               [--perfetto FILE]                       sharded admission service
//! ibaqos chaos-serve [serve options] [--no-journal]    admission service under
//!                                                      control-plane faults
//! ibaqos timeline [run options] [--seeds N] [--threads T]
//!               [--window W] [--json] [--slo SPEC]
//!               [--flight-dir DIR]                      windowed metric timeline
//! ibaqos demo                                           table-filling walkthrough
//! ```
//!
//! `report` and `trace` run the experiment with the `iba-obs`
//! instrumentation enabled; the metric names they print are documented
//! in the repository-level `METRICS.md` contract. `audit` checks the
//! paper's distance guarantee against a live grant stream and exits
//! non-zero on any violation; `--perfetto` writes a Chrome trace-event
//! timeline viewable at <https://ui.perfetto.dev>. `chaos` damages the
//! filled table under seeded fault injection, recovers it with the
//! guarantee-preserving `RecoveryManager` and exits non-zero when any
//! post-repair violation remains; on failure both `audit` and `chaos`
//! print a machine-readable `verdict=FAIL` line first on stderr.
//! `serve` drives a seeded admit/teardown/repair trace through the
//! sharded admission service, differentially audits it against the
//! sequential manager, and exits non-zero on any divergence; its
//! `--replay` report is byte-identical at any `--shards`, and its
//! `--perfetto` export renders one causal track per request.
//! `chaos-serve` replays the same trace under a seeded control-plane
//! fault calendar — shard-worker crashes, vote-message loss/delay,
//! reply loss — and exits non-zero unless the write-ahead journal,
//! deterministic timeouts and idempotent retries make the faulted run
//! converge to the sequential manager with zero lost and zero
//! duplicated reservations; `--no-journal` is the negative control and
//! must FAIL under the same calendar. `timeline`
//! merges windowed metric deltas from a seed sweep into a
//! `TIMELINE.json` document that is byte-identical at any `--threads`.
//! `report --prom` renders the registry in Prometheus text exposition.
//! `--slo` gates `timeline`/`serve`/`audit`/`chaos` on a declarative
//! spec (see `METRICS.md`); a breach exits non-zero with a
//! machine-readable `slo: verdict=FAIL` first line and, with
//! `--flight-dir`, dumps a flight-recorder bundle for post-mortems.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{Args, Command, ParseError};

/// Entry point shared by the binary and the tests: parses and runs.
pub fn run(argv: &[String]) -> Result<String, String> {
    let args = Args::parse(argv).map_err(|e| e.to_string())?;
    match args.command {
        Command::Topo => Ok(commands::topo(&args)),
        Command::Fill => Ok(commands::fill(&args)),
        Command::Run => Ok(commands::run_experiment(&args)),
        Command::Sweep => commands::sweep(&args),
        Command::Report => Ok(commands::report(&args)),
        Command::Trace => commands::trace(&args),
        Command::Audit => commands::audit(&args),
        Command::Chaos => commands::chaos(&args),
        Command::Serve => commands::serve(&args),
        Command::ChaosServe => commands::chaos_serve(&args),
        Command::Timeline => commands::timeline(&args),
        Command::Demo => Ok(commands::demo()),
        Command::Help => Ok(args::USAGE.to_string()),
    }
}
