//! Command implementations. Every command returns its report as a
//! `String` so the logic is testable without capturing stdout.

use crate::args::Args;
use iba_core::{Distance, HighPriorityTable, ServiceLevel, SlTable, VirtualLane};
use iba_qos::QosFrame;
use iba_sim::SimConfig;
use iba_stats::Table;
use iba_topo::irregular::{generate, IrregularConfig};
use iba_topo::{dot, updown, validate};
use iba_traffic::{RequestGenerator, WorkloadConfig};
use std::fmt::Write as _;

fn build_topo(args: &Args) -> (iba_topo::Topology, iba_topo::RoutingTable) {
    let topo = generate(IrregularConfig::with_switches(args.switches, args.seed));
    let routing = updown::compute(&topo);
    (topo, routing)
}

/// `ibaqos topo`
#[must_use]
pub fn topo(args: &Args) -> String {
    let (topo, routing) = build_topo(args);
    if args.dot {
        return dot::to_dot(&topo, Some(&routing));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fabric: {} switches / {} hosts ({} ports per switch), seed {}",
        topo.num_switches(),
        topo.num_hosts(),
        topo.ports_per_switch(),
        args.seed
    );
    let _ = writeln!(out, "up*/down* root: {}", routing.root());
    let _ = writeln!(
        out,
        "mean path length: {:.2} switches",
        validate::mean_path_switches(&topo, &routing)
    );
    if let Some((s, p, load)) = validate::hottest_channel(&topo, &routing) {
        let _ = writeln!(
            out,
            "hottest channel: {s} port {p} ({load} pairs route through)"
        );
    }
    match validate::check_deadlock_freedom(&topo, &routing) {
        Ok(()) => {
            let _ = writeln!(out, "channel dependency graph: acyclic (deadlock-free)");
        }
        Err(e) => {
            let _ = writeln!(out, "DEADLOCK HAZARD: {e}");
        }
    }
    out
}

/// `ibaqos fill`
#[must_use]
pub fn fill(args: &Args) -> String {
    let (topo, routing) = build_topo(args);
    let sl_table = SlTable::paper_table1();
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        sl_table.clone(),
        SimConfig::paper_default(args.mtu),
    );
    let mut gen = RequestGenerator::new(
        &topo,
        &sl_table,
        &WorkloadConfig::new(args.mtu, args.seed ^ 0xF00D),
    );
    let report = frame.fill(&mut gen, 120, 100_000);

    let mut t = Table::new("Admission fill", &["Metric", "Value"]);
    t.row(vec!["attempted".into(), report.attempted.to_string()]);
    t.row(vec!["accepted".into(), report.accepted.to_string()]);
    t.row(vec![
        "offered load (bytes/cycle total)".into(),
        format!("{:.3}", report.offered_load),
    ]);
    let (h, s) = frame.manager.reservation_summary();
    t.row(vec![
        "mean host-link reservation (Mbps)".into(),
        format!("{h:.1}"),
    ]);
    t.row(vec![
        "mean switch-link reservation (Mbps)".into(),
        format!("{s:.1}"),
    ]);

    let mut out = t.render();
    let mut per_sl = Table::new("\nConnections per SL", &["SL", "count"]);
    for slp in sl_table.qos_profiles() {
        let n = frame
            .manager
            .connections()
            .filter(|(_, c)| c.request.sl == slp.sl)
            .count();
        per_sl.row(vec![slp.sl.to_string(), n.to_string()]);
    }
    out.push_str(&per_sl.render());
    out
}

/// `ibaqos run`
#[must_use]
pub fn run_experiment(args: &Args) -> String {
    let (topo, routing) = build_topo(args);
    let sl_table = SlTable::paper_table1();
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        sl_table,
        SimConfig::paper_default(args.mtu),
    );
    let mut gen = RequestGenerator::new(
        &topo,
        &SlTable::paper_table1(),
        &WorkloadConfig::new(args.mtu, args.seed ^ 0xF00D),
    );
    let fill = frame.fill(&mut gen, 120, 100_000);

    let bg = args
        .background
        .then(iba_traffic::besteffort::BackgroundConfig::default);
    let (mut fabric, mut obs) = frame.build_fabric(args.seed, bg.as_ref());
    let transient = frame.steady_state_cycles(2);
    fabric.run_until(transient, &mut obs);
    obs.reset_samples();
    fabric.reset_stats();
    fabric.run_until(
        transient + frame.steady_state_cycles(args.steady_packets),
        &mut obs,
    );
    let st = fabric.summarize();

    let mut t = Table::new("Experiment summary", &["Metric", "Value"]);
    t.row(vec!["connections".into(), fill.accepted.to_string()]);
    t.row(vec![
        "QoS packets delivered".into(),
        obs.qos_packets.to_string(),
    ]);
    t.row(vec![
        "best-effort packets".into(),
        obs.be_packets.to_string(),
    ]);
    t.row(vec![
        "QoS delivered (bytes/cycle/node)".into(),
        format!(
            "{:.4}",
            obs.qos_bytes as f64 / st.window.max(1) as f64 / topo.num_hosts() as f64
        ),
    ]);
    t.row(vec![
        "QoS utilization host / switch (%)".into(),
        format!(
            "{:.2} / {:.2}",
            st.host_link_qos_utilization, st.switch_link_qos_utilization
        ),
    ]);
    let misses: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
    t.row(vec![
        "deadline misses".into(),
        format!("{misses} / {}", obs.qos_packets),
    ]);
    let worst = obs
        .delay_by_sl
        .groups()
        .map(|(_, d)| d.max_ratio())
        .fold(0.0f64, f64::max);
    t.row(vec!["worst delay/deadline".into(), format!("{worst:.4}")]);

    let mut out = t.render();
    let mut per_sl = Table::new(
        "\nPer-SL delay (fractions of deadline D)",
        &["SL", "packets", "% <= D/10", "% <= D/2", "% <= D", "max/D"],
    );
    for (sl, d) in obs.delay_by_sl.groups() {
        let pct = d.percentages();
        per_sl.row(vec![
            format!("SL {sl}"),
            d.total().to_string(),
            format!("{:.2}", pct[2]),
            format!("{:.2}", pct[5]),
            format!("{:.2}", pct[7]),
            format!("{:.3}", d.max_ratio()),
        ]);
    }
    out.push_str(&per_sl.render());
    out
}

/// Writes a Perfetto/Chrome trace-event JSON timeline built from the
/// given span, ring-trace and per-request sources (any may be absent).
fn write_perfetto(
    path: &str,
    spans: Option<&iba_obs::SpanRecorder>,
    sim: Option<&iba_obs::RingTracer>,
    requests: &[(u64, iba_obs::TraceEvent)],
) -> Result<String, String> {
    let json = iba_obs::perfetto_trace_full(spans, sim, requests).pretty();
    std::fs::write(path, &json).map_err(|e| format!("cannot write '{path}': {e}"))?;
    Ok(format!(
        "perfetto timeline written to {path} ({} bytes) — open with ui.perfetto.dev\n",
        json.len()
    ))
}

/// The machine-readable first line of an SLO report — the line CI
/// greps for on stderr.
fn slo_first_line(report: &iba_obs::SloReport) -> String {
    report
        .render()
        .lines()
        .next()
        .unwrap_or_default()
        .to_string()
}

/// Parses `--slo` and evaluates it over the given windows.
fn evaluate_slo(
    spec: &str,
    windows: &[(u64, &iba_obs::Metrics)],
) -> Result<iba_obs::SloReport, String> {
    let spec = iba_obs::SloSpec::parse(spec).map_err(|e| format!("slo: {e}"))?;
    Ok(spec.evaluate(windows))
}

/// Writes a flight-recorder bundle into `--flight-dir` (created if
/// absent) and reports what landed there.
fn write_flight_bundle(dir: &str, input: &iba_obs::FlightInput<'_>) -> Result<String, String> {
    let files = iba_obs::flight_build(input);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create '{dir}': {e}"))?;
    for (name, contents) in &files {
        let path = std::path::Path::new(dir).join(name);
        std::fs::write(&path, contents)
            .map_err(|e| format!("cannot write '{}': {e}", path.display()))?;
    }
    Ok(format!(
        "flight recorder bundle written to {dir} ({} file(s))\n",
        files.len()
    ))
}

/// `ibaqos sweep` — one experiment per seed (`--seeds` points starting
/// at `--seed`), sharded over `--threads` workers by the deterministic
/// parallel engine. The table is identical at any thread count. With
/// `--perfetto` the workers also record wall-clock spans, exported as a
/// per-thread timeline.
pub fn sweep(args: &Args) -> Result<String, String> {
    let threads = if args.threads > 0 {
        args.threads
    } else {
        iba_harness::threads_from_env()
    };
    let points: Vec<iba_harness::SimPoint> = (0..args.seeds)
        .map(|i| iba_harness::SimPoint {
            switches: args.switches,
            seed: args.seed + i,
            mtu: args.mtu,
            background: args.background,
            steady_packets: args.steady_packets,
            reject_limit: 120,
        })
        .collect();
    let (outcomes, merged) = match args.perfetto {
        Some(_) => iba_harness::run_points_spanned(&points, threads, 64 * 1024),
        None => iba_harness::run_points(&points, threads),
    };

    let mut t = Table::new(
        "Seed sweep",
        &[
            "Seed",
            "Connections",
            "Delivered (B/cyc/node)",
            "QoS util (%)",
            "Packets",
            "Digest",
        ],
    );
    for o in &outcomes {
        t.row(vec![
            o.point.seed.to_string(),
            format!("{}/{}", o.accepted, o.attempted),
            format!("{:.4}", o.delivered_per_node),
            format!("{:.2}", o.qos_utilization),
            o.delivered_packets.to_string(),
            format!("{:016x}", o.delivery_digest),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "\n{} run(s) on {} worker thread(s); {} sim events merged",
        merged.metrics.harness_runs.get(),
        merged.metrics.harness_threads.get(),
        merged.metrics.sim_events.get(),
    );
    if let Some(path) = &args.perfetto {
        out.push_str(&write_perfetto(path, merged.spans.as_ref(), None, &[])?);
    }
    Ok(out)
}

/// Fill + simulate with instrumentation: the shared body of `report`
/// and `trace`. Every admission attempt and every arbitration grant of
/// the steady-state window lands in `rec`.
fn run_instrumented(args: &Args, rec: &mut iba_obs::ObsRecorder) {
    let (topo, routing) = build_topo(args);
    let sl_table = SlTable::paper_table1();
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        sl_table.clone(),
        SimConfig::paper_default(args.mtu),
    );
    let mut gen = RequestGenerator::new(
        &topo,
        &sl_table,
        &WorkloadConfig::new(args.mtu, args.seed ^ 0xF00D),
    );
    frame.fill_observed(&mut gen, 120, 100_000, rec);

    let bg = args
        .background
        .then(iba_traffic::besteffort::BackgroundConfig::default);
    let (mut fabric, mut obs) = frame.build_fabric(args.seed, bg.as_ref());
    let steady = frame.steady_state_cycles(args.steady_packets);
    fabric.run_until_recorded(steady, &mut obs, rec);
}

/// `ibaqos report` — per-VL metrics and serviced-bytes shares. With
/// `--prom` the same registry is rendered in Prometheus text
/// exposition format instead (golden-tested byte for byte).
#[must_use]
pub fn report(args: &Args) -> String {
    let mut rec = iba_obs::ObsRecorder::new();
    run_instrumented(args, &mut rec);
    if args.prom {
        iba_obs::render_prom(&rec.metrics)
    } else {
        iba_obs::render_metrics(&rec.metrics)
    }
}

/// `ibaqos trace` — the newest `--limit` ring-buffer events as text.
/// With `--perfetto`, spans and sim events are additionally merged onto
/// one Perfetto timeline.
pub fn trace(args: &Args) -> Result<String, String> {
    let mut rec = iba_obs::ObsRecorder::with_tracer(4096);
    if args.perfetto.is_some() {
        rec.spans = Some(iba_obs::SpanRecorder::new(16 * 1024));
    }
    run_instrumented(args, &mut rec);
    let tracer = rec.tracer.as_ref().ok_or("tracer installed above")?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} event(s) retained, {} dropped (ring capacity 4096)",
        tracer.len(),
        tracer.dropped()
    );
    for line in tracer.render(args.limit) {
        let _ = writeln!(out, "{line}");
    }
    if let Some(path) = &args.perfetto {
        out.push_str(&write_perfetto(
            path,
            rec.spans.as_ref(),
            rec.tracer.as_ref(),
            &[],
        )?);
    }
    Ok(out)
}

/// `ibaqos audit` — fills one port's table with paper-Table-1 requests
/// under the selected `--allocator`, drives the arbitration engine to
/// saturation and audits every grant against the contracted per-SL
/// distance budgets. Returns `Err` (non-zero process exit) when any
/// guarantee was violated, so CI can assert both directions.
pub fn audit(args: &Args) -> Result<String, String> {
    let cfg = iba_harness::AuditConfig::new(args.allocator, args.mtu, args.seed);
    let mut spans = iba_obs::SpanRecorder::new(1024);
    let outcome = iba_harness::run_audit_spanned(&cfg, Some(&mut spans));
    let mut out = outcome.render_report();
    if let Some(path) = &args.perfetto {
        out.push_str(&write_perfetto(
            path,
            Some(&spans),
            outcome.auditor.tracer(),
            &[],
        )?);
    }
    // SLO gating: the audit has no timeline, so the spec is evaluated
    // over a single pseudo-window holding the auditor's exported
    // registry (audit_gap_max / audit_bound_cycles /
    // audit_violations_total).
    let mut exported = iba_obs::Metrics::new();
    outcome.auditor.export_into(&mut exported);
    let slo_report = match &args.slo {
        Some(spec) => {
            let report = evaluate_slo(spec, &[(0, &exported)])?;
            report.stamp(&mut exported);
            out.push_str(&report.render());
            Some(report)
        }
        None => None,
    };
    let verdict_pass = outcome.passed();
    let slo_pass = slo_report.as_ref().is_none_or(|r| r.pass);
    if !verdict_pass || !slo_pass {
        if let Some(dir) = &args.flight_dir {
            let reason = if verdict_pass {
                slo_first_line(slo_report.as_ref().expect("slo failed"))
            } else {
                format!(
                    "audit: verdict=FAIL violations={} allocator={} mtu={} seed={}",
                    outcome.violations(),
                    args.allocator.name(),
                    args.mtu,
                    args.seed,
                )
            };
            out.push_str(&write_flight_bundle(
                dir,
                &iba_obs::FlightInput {
                    reason: &reason,
                    metrics: &exported,
                    timeline: None,
                    tracer: outcome.auditor.tracer(),
                    requests: &[],
                    slo: slo_report.as_ref(),
                    tail_windows: 8,
                },
            )?);
        }
    }
    if !verdict_pass {
        // Failure contract: the first stderr line is machine-readable.
        return Err(format!(
            "audit: verdict=FAIL violations={} allocator={} mtu={} seed={}\n{out}",
            outcome.violations(),
            args.allocator.name(),
            args.mtu,
            args.seed,
        ));
    }
    if !slo_pass {
        return Err(format!(
            "{}\n{out}",
            slo_first_line(slo_report.as_ref().expect("slo failed"))
        ));
    }
    Ok(out)
}

/// `ibaqos chaos` — fills a port's table, injects `--rounds` of seeded
/// corruption each answered by the guarantee-preserving
/// `RecoveryManager`, re-audits the repaired table against the original
/// contracts, and runs a faulted full-fabric sweep (seeded fault plans
/// through the event calendar) whose delivery digest witnesses
/// determinism. Returns `Err` (non-zero process exit, machine-readable
/// first stderr line) when recovery leaves a violation or an
/// inconsistent table behind.
pub fn chaos(args: &Args) -> Result<String, String> {
    let mut cfg = iba_harness::ChaosConfig::new(args.allocator, args.mtu, args.seed);
    cfg.rounds = args.rounds;
    cfg.sweep_points = args.seeds as usize;
    let threads = if args.threads == 0 {
        iba_harness::threads_from_env()
    } else {
        args.threads
    };
    let outcome = iba_harness::run_chaos(&cfg, threads);
    let mut out = outcome.render_report();
    // SLO gating over a single pseudo-window: the post-repair
    // auditor's exported registry plus the fault-injection totals.
    let mut exported = iba_obs::Metrics::new();
    outcome.audit.auditor.export_into(&mut exported);
    exported.fault_injected.add(outcome.faults_injected);
    let slo_report = match &args.slo {
        Some(spec) => {
            let report = evaluate_slo(spec, &[(0, &exported)])?;
            report.stamp(&mut exported);
            out.push_str(&report.render());
            Some(report)
        }
        None => None,
    };
    let verdict_pass = outcome.passed();
    let slo_pass = slo_report.as_ref().is_none_or(|r| r.pass);
    if !verdict_pass || !slo_pass {
        if let Some(dir) = &args.flight_dir {
            let reason = if verdict_pass {
                slo_first_line(slo_report.as_ref().expect("slo failed"))
            } else {
                outcome.summary_line()
            };
            out.push_str(&write_flight_bundle(
                dir,
                &iba_obs::FlightInput {
                    reason: &reason,
                    metrics: &exported,
                    timeline: None,
                    tracer: outcome.audit.auditor.tracer(),
                    requests: &[],
                    slo: slo_report.as_ref(),
                    tail_windows: 8,
                },
            )?);
        }
    }
    if !verdict_pass {
        return Err(format!("{}\n{out}", outcome.summary_line()));
    }
    if !slo_pass {
        return Err(format!(
            "{}\n{out}",
            slo_first_line(slo_report.as_ref().expect("slo failed"))
        ));
    }
    Ok(out)
}

/// `ibaqos serve` — drives a seeded admit/teardown/repair trace
/// through the sharded admission service and differentially audits it
/// against the sequential `QosManager` on outcomes, final tables and
/// shard-invariant metrics. With `--replay` the full replay report is
/// printed; it is byte-identical at any `--shards`, which CI verifies
/// with `cmp`. Returns `Err` (non-zero process exit, machine-readable
/// first stderr line) on any divergence or consistency failure.
pub fn serve(args: &Args) -> Result<String, String> {
    let cfg = iba_harness::ServeConfig::new(args.switches, args.seed, args.requests, args.shards);
    // `--slo`/`--flight-dir`/`--perfetto` need the windowed run: a
    // timeline keyed by finalized trace operations plus per-request
    // trace records for span reassembly and request tracks.
    let windowed = args.slo.is_some() || args.flight_dir.is_some() || args.perfetto.is_some();
    let mut outcome = if windowed {
        iba_harness::run_serve_windowed(&cfg, args.window)
    } else {
        iba_harness::run_serve(&cfg)
    };
    let mut out = if args.replay {
        outcome.render_report()
    } else {
        format!(
            "{}\n{}",
            outcome.summary_line(),
            format_args!(
                "trace: accepted={} rejected={} released={} live={}",
                outcome.report.accepted,
                outcome.report.rejected,
                outcome.report.released,
                outcome.report.live.len(),
            )
        )
    };
    if let Some(path) = &args.perfetto {
        // Request tracks: one pid-3 track per request id, the causal
        // dispatch -> vote -> commit/abort -> finalize chain. The ring
        // tracer is skipped here — its Request records are the same
        // ones already drained into `request_records`.
        out.push_str(&write_perfetto(
            path,
            None,
            None,
            &outcome.report.request_records,
        )?);
    }
    let slo_report = match &args.slo {
        Some(spec) => {
            let report = match &outcome.recorder.timeline {
                Some(tl) => {
                    let windows: Vec<(u64, &iba_obs::Metrics)> =
                        tl.windows().iter().map(|(i, m)| (*i, m)).collect();
                    evaluate_slo(spec, &windows)?
                }
                None => evaluate_slo(spec, &[(0, &outcome.recorder.metrics)])?,
            };
            // Stamp after the replay report above was rendered, so the
            // shard-invariant report is not perturbed by the verdict.
            report.stamp(&mut outcome.recorder.metrics);
            out.push('\n');
            out.push_str(&report.render());
            Some(report)
        }
        None => None,
    };
    let verdict_pass = outcome.passed();
    let slo_pass = slo_report.as_ref().is_none_or(|r| r.pass);
    if !verdict_pass || !slo_pass {
        if let Some(dir) = &args.flight_dir {
            let reason = if verdict_pass {
                slo_first_line(slo_report.as_ref().expect("slo failed"))
            } else {
                outcome.summary_line()
            };
            out.push_str(&write_flight_bundle(
                dir,
                &iba_obs::FlightInput {
                    reason: &reason,
                    metrics: &outcome.recorder.metrics,
                    timeline: outcome.recorder.timeline.as_ref(),
                    tracer: outcome.recorder.tracer.as_ref(),
                    requests: &outcome.report.request_records,
                    slo: slo_report.as_ref(),
                    tail_windows: 8,
                },
            )?);
        }
    }
    if !verdict_pass {
        return Err(format!("{}\n{out}", outcome.summary_line()));
    }
    if !slo_pass {
        return Err(format!(
            "{}\n{out}",
            slo_first_line(slo_report.as_ref().expect("slo failed"))
        ));
    }
    Ok(out)
}

/// `ibaqos chaos-serve` — drives the sharded admission service under a
/// seeded control-plane fault calendar (worker crashes, vote-message
/// loss/delay, reply loss) and audits the survivor for convergence to
/// the sequential manager plus exactly-once reservation semantics. The
/// `--replay` report is byte-identical at any `--shards`; CI checks 1,
/// 2 and 8 with `cmp`. `--no-journal` is the negative control: the
/// same calendar must then lose reservations and FAIL (machine-readable
/// `chaos-serve: verdict=FAIL` first line on stderr).
pub fn chaos_serve(args: &Args) -> Result<String, String> {
    let mut cfg =
        iba_harness::ChaosServeConfig::new(args.switches, args.seed, args.requests, args.shards);
    cfg.journal = !args.no_journal;
    let windowed = args.slo.is_some() || args.flight_dir.is_some() || args.perfetto.is_some();
    let mut outcome = if windowed {
        iba_harness::run_chaos_serve_windowed(&cfg, args.window)
    } else {
        iba_harness::run_chaos_serve(&cfg)
    };
    let mut out = if args.replay {
        outcome.render_report()
    } else {
        let f = &outcome.fault_stats;
        format!(
            "{}\n{}",
            outcome.summary_line(),
            format_args!(
                "faults: crashes={} msg_losses={} msg_delays={} reply_losses={} timeouts={}",
                f.crashes, f.msg_losses, f.msg_delays, f.reply_losses, f.timeouts,
            )
        )
    };
    if let Some(path) = &args.perfetto {
        out.push_str(&write_perfetto(
            path,
            None,
            None,
            &outcome.report.request_records,
        )?);
    }
    let slo_report = match &args.slo {
        Some(spec) => {
            let report = match &outcome.recorder.timeline {
                Some(tl) => {
                    let windows: Vec<(u64, &iba_obs::Metrics)> =
                        tl.windows().iter().map(|(i, m)| (*i, m)).collect();
                    evaluate_slo(spec, &windows)?
                }
                None => evaluate_slo(spec, &[(0, &outcome.recorder.metrics)])?,
            };
            report.stamp(&mut outcome.recorder.metrics);
            out.push('\n');
            out.push_str(&report.render());
            Some(report)
        }
        None => None,
    };
    let verdict_pass = outcome.passed();
    let slo_pass = slo_report.as_ref().is_none_or(|r| r.pass);
    if !verdict_pass || !slo_pass {
        if let Some(dir) = &args.flight_dir {
            let reason = if verdict_pass {
                slo_first_line(slo_report.as_ref().expect("slo failed"))
            } else {
                outcome.summary_line()
            };
            out.push_str(&write_flight_bundle(
                dir,
                &iba_obs::FlightInput {
                    reason: &reason,
                    metrics: &outcome.recorder.metrics,
                    timeline: outcome.recorder.timeline.as_ref(),
                    tracer: outcome.recorder.tracer.as_ref(),
                    requests: &outcome.report.request_records,
                    slo: slo_report.as_ref(),
                    tail_windows: 8,
                },
            )?);
        }
    }
    if !verdict_pass {
        return Err(format!("{}\n{out}", outcome.summary_line()));
    }
    if !slo_pass {
        return Err(format!(
            "{}\n{out}",
            slo_first_line(slo_report.as_ref().expect("slo failed"))
        ));
    }
    Ok(out)
}

/// `ibaqos timeline` — runs `--seeds` seeded experiments with a
/// windowed timeline aggregator attached to every run and merges the
/// per-run deltas in seed order. The `--json` document (schema
/// `iba.timeline.v1`) is byte-identical at any `--threads`, which CI
/// verifies with `cmp`. With `--slo` the spec is evaluated over the
/// merged windows; a breach exits non-zero (machine-readable
/// `slo: verdict=FAIL` first line) and, with `--flight-dir`, dumps a
/// flight-recorder bundle.
pub fn timeline(args: &Args) -> Result<String, String> {
    let threads = if args.threads > 0 {
        args.threads
    } else {
        iba_harness::threads_from_env()
    };
    let mut cfg =
        iba_harness::TimelineConfig::new(args.switches, args.seed, args.seeds, args.window);
    cfg.mtu = args.mtu;
    cfg.steady_packets = args.steady_packets;
    let mut outcome = iba_harness::run_timeline(&cfg, threads);
    let mut out = if args.json {
        outcome.to_json_string()
    } else {
        outcome.render()
    };
    let slo_report = match &args.slo {
        Some(spec) => {
            let report = {
                let windows: Vec<(u64, &iba_obs::Metrics)> = outcome
                    .timeline()
                    .windows()
                    .iter()
                    .map(|(i, m)| (*i, m))
                    .collect();
                evaluate_slo(spec, &windows)?
            };
            report.stamp(&mut outcome.recorder.metrics);
            // Keep `--json` output the bare TIMELINE.json document (CI
            // byte-compares it); the verdict then only reaches stderr.
            if !args.json {
                out.push_str(&report.render());
            }
            Some(report)
        }
        None => None,
    };
    let slo_pass = slo_report.as_ref().is_none_or(|r| r.pass);
    if !slo_pass {
        if let Some(dir) = &args.flight_dir {
            let reason = slo_first_line(slo_report.as_ref().expect("slo failed"));
            let note = write_flight_bundle(
                dir,
                &iba_obs::FlightInput {
                    reason: &reason,
                    metrics: &outcome.recorder.metrics,
                    timeline: Some(outcome.timeline()),
                    tracer: outcome.recorder.tracer.as_ref(),
                    requests: &[],
                    slo: slo_report.as_ref(),
                    tail_windows: 8,
                },
            )?;
            if !args.json {
                out.push_str(&note);
            }
        }
        return Err(format!(
            "{}\n{out}",
            slo_first_line(slo_report.as_ref().expect("slo failed"))
        ));
    }
    Ok(out)
}

/// `ibaqos demo` — a narrated walk through the paper's algorithm.
#[must_use]
pub fn demo() -> String {
    let mut out = String::new();
    let mut table = HighPriorityTable::new();
    let _ = writeln!(
        out,
        "The 64-entry high-priority table, filled by the bit-reversal policy.\n\
         Requests: (SL, distance d, weight w) -> max(64/d, ceil(w/255)) entries.\n"
    );

    let script: &[(u8, Distance, u32, &str)] = &[
        (0, Distance::D2, 64, "strict video: entries every 2 slots"),
        (6, Distance::D64, 200, "bulk transfer: a single entry"),
        (
            6,
            Distance::D64,
            55,
            "second bulk connection joins the same entry",
        ),
        (
            2,
            Distance::D8,
            80,
            "interactive stream: entries every 8 slots",
        ),
        (
            6,
            Distance::D64,
            30,
            "third bulk connection forces a new entry",
        ),
    ];
    let mut live = Vec::new();
    for &(sl_id, d, w, note) in script {
        let sl = ServiceLevel::new(sl_id).unwrap();
        let adm = table
            .admit(sl, VirtualLane::data(sl_id), d, w)
            .expect("demo requests fit");
        live.push((adm.sequence, w));
        let info = table.sequence(adm.sequence).unwrap();
        let _ = writeln!(
            out,
            "admit SL{sl_id} {d} w={w:<3} -> {} {} (slots {:?}, {} conn(s), weight {}): {note}",
            if adm.new_sequence { "NEW " } else { "JOIN" },
            info.eset,
            info.eset.slots().collect::<Vec<_>>().len(),
            info.connections,
            info.total_weight,
        );
        let _ = writeln!(out, "{}", render_occupancy(&table));
    }

    let _ = writeln!(
        out,
        "\nnow release the strict d=2 connection — defragmentation re-packs:"
    );
    let (first, w) = live.remove(0);
    let moves = table.release(first, w).unwrap();
    let _ = writeln!(out, "{} sequence(s) relocated", moves.len());
    let _ = writeln!(out, "{}", render_occupancy(&table));
    let _ = writeln!(
        out,
        "free entries: {}; a new d=2 request (32 entries) fits again: {}",
        table.free_entries(),
        table.can_admit(ServiceLevel::new(0).unwrap(), Distance::D2, 64),
    );
    out
}

fn render_occupancy(table: &HighPriorityTable) -> String {
    let mut s = String::with_capacity(70);
    s.push_str("  [");
    for slot in table.slots() {
        s.push(if slot.is_free() { '.' } else { '#' });
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(cmd: crate::Command) -> Args {
        Args {
            command: cmd,
            switches: 2,
            seed: 3,
            mtu: 256,
            steady_packets: 2,
            limit: 32,
            seeds: 2,
            threads: 0,
            ..Args::default()
        }
    }

    #[test]
    fn topo_summary_mentions_root_and_deadlock() {
        let out = topo(&args(crate::Command::Topo));
        assert!(out.contains("up*/down* root"));
        assert!(out.contains("deadlock-free"));
    }

    #[test]
    fn topo_dot_output() {
        let mut a = args(crate::Command::Topo);
        a.dot = true;
        let out = topo(&a);
        assert!(out.starts_with("graph fabric {"));
    }

    #[test]
    fn fill_reports_counts() {
        let out = fill(&args(crate::Command::Fill));
        assert!(out.contains("accepted"));
        assert!(out.contains("Connections per SL"));
    }

    #[test]
    fn run_reports_misses() {
        let out = run_experiment(&args(crate::Command::Run));
        assert!(out.contains("deadline misses"));
        assert!(out.contains("Per-SL delay"));
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let mut a = args(crate::Command::Sweep);
        a.seeds = 3;
        a.threads = 1;
        let serial = sweep(&a).unwrap();
        a.threads = 3;
        let parallel = sweep(&a).unwrap();
        // Identical table; the footer differs only in the thread count.
        let table = |s: &str| {
            s.lines()
                .take_while(|l| !l.is_empty())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table(&serial), table(&parallel));
        assert!(
            serial.contains("3 run(s) on 1 worker thread(s)"),
            "{serial}"
        );
        assert!(
            parallel.contains("3 run(s) on 3 worker thread(s)"),
            "{parallel}"
        );
    }

    #[test]
    fn report_renders_per_vl_shares() {
        let out = report(&args(crate::Command::Report));
        assert!(out.contains("metrics:"), "{out}");
        assert!(out.contains("arb_bytes_total"), "{out}");
        assert!(out.contains("per-VL serviced-bytes shares"), "{out}");
        assert!(out.contains("share="), "{out}");
        assert!(out.contains("cac_admit_total"), "{out}");
    }

    #[test]
    fn report_on_empty_registry_does_not_panic() {
        let out = iba_obs::render_metrics(&iba_obs::Metrics::new());
        assert!(out.contains("no data recorded"));
    }

    #[test]
    fn trace_decodes_events() {
        let mut a = args(crate::Command::Trace);
        a.limit = 8;
        let out = trace(&a).unwrap();
        assert!(out.starts_with("trace:"), "{out}");
        assert!(out.contains("grant"), "{out}");
        // --limit 8: header plus at most 8 event lines.
        assert!(out.lines().count() <= 9, "{out}");
    }

    #[test]
    fn audit_passes_for_bit_reversal_and_fails_for_first_fit() {
        let mut a = args(crate::Command::Audit);
        a.mtu = 4096;
        a.seed = 42;
        let passing = audit(&a).expect("bit-reversal must audit clean");
        assert!(passing.contains("verdict: PASS"), "{passing}");
        assert!(passing.contains("allocator=bit-reversal"), "{passing}");
        a.allocator = iba_core::AllocatorKind::FirstFit;
        let failing = audit(&a).expect_err("first-fit must be indicted");
        assert!(failing.contains("verdict: FAIL"), "{failing}");
        assert!(failing.contains("worst offender"), "{failing}");
    }

    #[test]
    fn audit_writes_a_parseable_perfetto_file() {
        let path =
            std::env::temp_dir().join(format!("ibaqos_audit_perfetto_{}.json", std::process::id()));
        let mut a = args(crate::Command::Audit);
        a.mtu = 4096;
        a.seed = 42;
        a.allocator = iba_core::AllocatorKind::FirstFit;
        a.perfetto = Some(path.to_string_lossy().into_owned());
        let report = audit(&a).expect_err("first-fit fails, but the file is still written");
        assert!(report.contains("perfetto timeline written"), "{report}");
        let text = std::fs::read_to_string(&path).unwrap();
        let json = iba_obs::Json::parse(&text).expect("valid JSON");
        let events = json.get("traceEvents").expect("traceEvents key");
        assert!(matches!(events, iba_obs::Json::Array(v) if !v.is_empty()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_prom_renders_exposition() {
        let mut a = args(crate::Command::Report);
        a.prom = true;
        let out = report(&a);
        assert!(out.starts_with("# TYPE"), "{out}");
        assert!(out.contains("# TYPE cac_admit_total counter"), "{out}");
        assert!(out.contains("arb_bytes_total{vl="), "{out}");
    }

    #[test]
    fn timeline_command_renders_and_json_is_thread_invariant() {
        let mut a = args(crate::Command::Timeline);
        a.switches = 4;
        a.seeds = 2;
        a.window = 2048;
        a.threads = 1;
        let text = timeline(&a).unwrap();
        assert!(text.starts_with("timeline sweep:"), "{text}");
        assert!(text.contains("runs:"), "{text}");
        a.json = true;
        let serial = timeline(&a).unwrap();
        assert!(serial.contains("iba.timeline.v1"), "{serial}");
        a.threads = 3;
        assert_eq!(serial, timeline(&a).unwrap(), "TIMELINE.json not invariant");
    }

    #[test]
    fn timeline_slo_gates_and_dumps_flight_bundle() {
        let dir =
            std::env::temp_dir().join(format!("ibaqos_timeline_flight_{}", std::process::id()));
        let mut a = args(crate::Command::Timeline);
        a.switches = 4;
        a.seeds = 2;
        a.window = 2048;
        a.slo = Some("rate(sim_events_total) >= 1".into());
        let ok = timeline(&a).expect("busy windows satisfy the floor");
        assert!(ok.contains("slo: verdict=PASS"), "{ok}");
        // An impossible ceiling must breach, exit Err and dump.
        a.slo = Some("rate(sim_events_total) == 0".into());
        a.flight_dir = Some(dir.to_string_lossy().into_owned());
        let err = timeline(&a).expect_err("every busy window breaches");
        assert!(err.starts_with("slo: verdict=FAIL"), "{err}");
        let manifest = std::fs::read_to_string(dir.join("MANIFEST.txt")).unwrap();
        assert!(manifest.contains("iba.flight.v1"), "{manifest}");
        assert!(manifest.contains("timeline_tail.json"), "{manifest}");
        assert!(dir.join("metrics.prom").exists());
        assert!(dir.join("slo.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_slo_gates_and_dumps_request_traces() {
        let dir = std::env::temp_dir().join(format!("ibaqos_serve_flight_{}", std::process::id()));
        let mut a = args(crate::Command::Serve);
        a.switches = 4;
        a.seed = 3;
        a.requests = 48;
        a.shards = 3;
        a.window = 16;
        a.slo = Some("rate(cac_admit_total) >= 1 burn 0.99".into());
        let ok = serve(&a).expect("admissions happen");
        assert!(ok.contains("slo: verdict=PASS"), "{ok}");
        // The tight spec from CI: zero admissions can never hold.
        a.slo = Some("rate(cac_admit_total) == 0".into());
        a.flight_dir = Some(dir.to_string_lossy().into_owned());
        let err = serve(&a).expect_err("admissions breach the zero-rate spec");
        assert!(err.starts_with("slo: verdict=FAIL"), "{err}");
        let manifest = std::fs::read_to_string(dir.join("MANIFEST.txt")).unwrap();
        assert!(manifest.contains("requests.txt"), "{manifest}");
        let requests = std::fs::read_to_string(dir.join("requests.txt")).unwrap();
        assert!(requests.contains("request"), "{requests}");
        assert!(dir.join("timeline_tail.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_perfetto_export_carries_request_tracks() {
        let path =
            std::env::temp_dir().join(format!("ibaqos_serve_perfetto_{}.json", std::process::id()));
        let mut a = args(crate::Command::Serve);
        a.switches = 4;
        a.seed = 3;
        a.requests = 24;
        a.shards = 2;
        a.perfetto = Some(path.to_string_lossy().into_owned());
        let report = serve(&a).expect("serve passes");
        assert!(report.contains("perfetto timeline written"), "{report}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"requests\""), "missing pid-3 track: {json}");
        assert!(json.contains("traceEvents"), "{json}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chaos_serve_passes_and_negative_control_fails() {
        let mut a = args(crate::Command::ChaosServe);
        a.switches = 4;
        a.seed = 7;
        a.requests = 48;
        a.shards = 2;
        let out = chaos_serve(&a).expect("faulted service converges with the journal on");
        assert!(out.starts_with("chaos-serve: verdict=PASS"), "{out}");
        assert!(out.contains("crashes="), "{out}");
        // The negative control: same calendar, journal off — crashes
        // must lose reservations, and the machine-readable FAIL line
        // must lead stderr.
        a.no_journal = true;
        let err = chaos_serve(&a).expect_err("journal-off run must fail");
        assert!(
            err.lines()
                .next()
                .unwrap_or_default()
                .starts_with("chaos-serve: verdict=FAIL"),
            "{err}"
        );
    }

    #[test]
    fn chaos_serve_replay_is_shard_invariant() {
        let reports: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&shards| {
                let mut a = args(crate::Command::ChaosServe);
                a.switches = 4;
                a.seed = 7;
                a.requests = 48;
                a.shards = shards;
                a.replay = true;
                chaos_serve(&a).expect("chaos-serve passes")
            })
            .collect();
        assert_eq!(reports[0], reports[1], "1 vs 2 shards");
        assert_eq!(reports[0], reports[2], "1 vs 8 shards");
        assert!(reports[0].contains("verdict: PASS"), "{}", reports[0]);
    }

    #[test]
    fn audit_and_chaos_slo_gate_on_exported_registry() {
        let mut a = args(crate::Command::Audit);
        a.mtu = 4096;
        a.seed = 42;
        a.slo = Some("rate(audit_violations_total) == 0".into());
        let ok = audit(&a).expect("bit-reversal audits clean");
        assert!(ok.contains("slo: verdict=PASS"), "{ok}");
        a.slo = Some("rate(audit_violations_total) >= 1".into());
        let err = audit(&a).expect_err("clean audit breaches a violation floor");
        assert!(err.starts_with("slo: verdict=FAIL"), "{err}");

        let mut c = args(crate::Command::Chaos);
        c.mtu = 4096;
        c.seed = 42;
        c.rounds = 1;
        c.seeds = 1;
        c.threads = 1;
        c.slo = Some("rate(fault_injected_total) >= 1".into());
        let ok = chaos(&c).expect("chaos injects faults and recovers");
        assert!(ok.contains("slo: verdict=PASS"), "{ok}");
        c.slo = Some("rate(fault_injected_total) == 0".into());
        let err = chaos(&c).expect_err("injected faults breach the zero spec");
        assert!(err.starts_with("slo: verdict=FAIL"), "{err}");
    }

    #[test]
    fn demo_walkthrough_is_stable() {
        let out = demo();
        assert!(out.contains("NEW"));
        assert!(out.contains("JOIN"));
        assert!(out.contains("relocated"));
        assert!(out.contains("fits again: true"));
    }
}
