//! Dependency-free argument parsing.

use iba_core::AllocatorKind;
use std::fmt;

/// Usage text.
pub const USAGE: &str = "\
ibaqos — InfiniBand arbitration-table QoS toolkit

USAGE:
    ibaqos <COMMAND> [OPTIONS]

COMMANDS:
    topo    generate a fabric and print a summary (or --dot)
    fill    fill the fabric's arbitration tables to saturation
    run     run the full experiment (fill + simulate + report)
    sweep   run one experiment per seed in parallel (deterministic merge)
    report  instrumented run: per-VL metrics and serviced-bytes shares
    trace   instrumented run: decode the newest ring-buffer events
    audit   check the per-SL service guarantee against a live grant stream
    chaos   inject faults + table corruption, recover, re-audit guarantees
    serve   drive the sharded admission service over a seeded trace
    chaos-serve  drive the sharded admission service under a control-plane
            fault calendar (crashes, message loss) and audit exactly-once
    timeline  windowed metric timeline over a seed sweep (TIMELINE.json)
    demo    step-by-step walkthrough of the table-filling algorithm
    help    show this text

OPTIONS:
    --switches <N>         number of switches        [default: 8]
    --seed <S>             RNG seed                  [default: 42]
    --mtu <M>              packet size in bytes      [default: 256]
    --steady-packets <P>   steady-state length       [default: 10]
    --limit <L>            (trace) events to print, 0 = all  [default: 32]
    --seeds <N>            (sweep) points: seeds S..S+N-1    [default: 4]
    --threads <T>          (sweep) worker threads, 0 = IBA_THREADS/auto
    --allocator <A>        (audit/chaos) bit-reversal | first-fit | reverse-fit
    --rounds <R>           (chaos) corruption/repair rounds   [default: 3]
    --shards <K>           (serve/chaos-serve) admission-service shards
                           [default: 2]
    --requests <N>         (serve/chaos-serve) trace operations [default: 96]
    --replay               (serve/chaos-serve) print the shard-invariant
                           replay report
    --no-journal           (chaos-serve) disable the per-shard write-ahead
                           intent journal — the negative control; injected
                           crashes then lose reservations and the run FAILs
    --perfetto <FILE>      (audit/trace/sweep/serve) write a Perfetto/
                           Chrome trace-event JSON timeline to FILE; on
                           serve it carries one pid-3 track per request
    --window <W>           (timeline/serve) ticks per timeline window
                           [default: 4096 sim cycles; serve counts
                           finalized trace ops instead]
    --json                 (timeline) emit the TIMELINE.json document
    --slo <SPEC>           (timeline/serve/audit/chaos) gate the run on a
                           declarative SLO spec, e.g.
                           'p99(serve_batch_latency) <= 8; rate(cac_reject_total) == 0'
    --flight-dir <DIR>     (timeline/serve/audit/chaos) on an SLO breach
                           or FAIL verdict, dump a flight-recorder
                           bundle into DIR
    --prom                 (report) Prometheus text exposition instead
                           of the human-readable report
    --background           add best-effort background traffic
    --dot                  (topo) emit Graphviz DOT instead of a summary

`audit` exits non-zero when any service-guarantee violation is observed.
`chaos` exits non-zero when recovery leaves a violation (or an
inconsistent table) behind; `--seeds` sizes its faulted fabric sweep.
`serve` exits non-zero when the sharded service diverges from the
sequential manager on any observable; its `--replay` report is
byte-identical at any `--shards`.
`chaos-serve` exits non-zero when the faulted service loses or
duplicates a reservation or diverges from the sequential manager; its
`--replay` report is byte-identical at any `--shards`.
`timeline` runs `--seeds` seeded experiments and merges their windowed
metric deltas; its TIMELINE.json is byte-identical at any `--threads`.
A breached `--slo` also exits non-zero, with a machine-readable
`slo: verdict=FAIL ...` first line on stderr.
";

/// Which subcommand to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Command {
    /// Fabric generation / inspection.
    Topo,
    /// Admission fill only.
    Fill,
    /// Full experiment.
    Run,
    /// Parallel multi-seed sweep.
    Sweep,
    /// Instrumented run rendering the metrics registry.
    Report,
    /// Instrumented run decoding the event ring buffer.
    Trace,
    /// Service-guarantee audit of one saturated port.
    Audit,
    /// Fault injection + recovery with a post-repair guarantee audit.
    Chaos,
    /// Sharded admission service differentially audited against the
    /// sequential manager.
    Serve,
    /// Sharded admission service under a control-plane fault calendar,
    /// audited for convergence and exactly-once semantics.
    ChaosServe,
    /// Windowed metric timeline over a seed sweep.
    Timeline,
    /// Educational walkthrough.
    Demo,
    /// Print usage.
    Help,
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Args {
    /// Subcommand.
    pub command: Command,
    /// `--switches`.
    pub switches: usize,
    /// `--seed`.
    pub seed: u64,
    /// `--mtu`.
    pub mtu: u32,
    /// `--steady-packets`.
    pub steady_packets: u64,
    /// `--limit` (trace): number of newest events to print, 0 = all.
    pub limit: usize,
    /// `--seeds` (sweep): number of sweep points.
    pub seeds: u64,
    /// `--threads` (sweep): worker threads; 0 = `IBA_THREADS`/auto.
    pub threads: usize,
    /// `--allocator` (audit/chaos): allocation policy under audit.
    pub allocator: AllocatorKind,
    /// `--rounds` (chaos): corruption/repair rounds.
    pub rounds: u32,
    /// `--shards` (serve): admission-service shard count.
    pub shards: usize,
    /// `--requests` (serve): trace operations to generate.
    pub requests: usize,
    /// `--replay` (serve/chaos-serve): print the shard-invariant
    /// replay report.
    pub replay: bool,
    /// `--no-journal` (chaos-serve): disable the write-ahead intent
    /// journal (the negative control).
    pub no_journal: bool,
    /// `--perfetto` (audit/trace/sweep/serve): write a Perfetto/Chrome
    /// trace-event JSON file here (serve adds per-request tracks).
    pub perfetto: Option<String>,
    /// `--window` (timeline/serve): ticks per timeline window.
    pub window: u64,
    /// `--json` (timeline): emit the TIMELINE.json document.
    pub json: bool,
    /// `--slo` (timeline/serve/audit/chaos): declarative SLO spec the
    /// run must satisfy to exit zero.
    pub slo: Option<String>,
    /// `--flight-dir` (timeline/serve/audit/chaos): where to dump the
    /// flight-recorder bundle on a breach or FAIL verdict.
    pub flight_dir: Option<String>,
    /// `--prom` (report): Prometheus text exposition.
    pub prom: bool,
    /// `--background`.
    pub background: bool,
    /// `--dot`.
    pub dot: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            command: Command::Help,
            switches: 8,
            seed: 42,
            mtu: 256,
            steady_packets: 10,
            limit: 32,
            seeds: 4,
            threads: 0,
            allocator: AllocatorKind::BitReversal,
            rounds: 3,
            shards: 2,
            requests: 96,
            replay: false,
            no_journal: false,
            perfetto: None,
            window: 4096,
            json: false,
            slo: None,
            flight_dir: None,
            prom: false,
            background: false,
            dot: false,
        }
    }
}

/// Parse failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag.
    UnknownFlag(String),
    /// A flag that needs a value didn't get one.
    MissingValue(String),
    /// A value failed to parse.
    BadValue(String, String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingCommand => write!(f, "missing command\n\n{USAGE}"),
            ParseError::UnknownCommand(c) => write!(f, "unknown command '{c}'\n\n{USAGE}"),
            ParseError::UnknownFlag(o) => write!(f, "unknown flag '{o}'\n\n{USAGE}"),
            ParseError::MissingValue(o) => write!(f, "flag '{o}' needs a value"),
            ParseError::BadValue(o, v) => write!(f, "bad value '{v}' for '{o}'"),
        }
    }
}

impl std::error::Error for ParseError {}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Args, ParseError> {
        let mut args = Args::default();
        let mut it = argv.iter();
        let cmd = it.next().ok_or(ParseError::MissingCommand)?;
        args.command = match cmd.as_str() {
            "topo" => Command::Topo,
            "fill" => Command::Fill,
            "run" => Command::Run,
            "sweep" => Command::Sweep,
            "report" => Command::Report,
            "trace" => Command::Trace,
            "audit" => Command::Audit,
            "chaos" => Command::Chaos,
            "serve" => Command::Serve,
            "chaos-serve" => Command::ChaosServe,
            "timeline" => Command::Timeline,
            "demo" => Command::Demo,
            "help" | "--help" | "-h" => Command::Help,
            other => return Err(ParseError::UnknownCommand(other.to_string())),
        };

        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--background" => args.background = true,
                "--dot" => args.dot = true,
                "--replay" => args.replay = true,
                "--no-journal" => args.no_journal = true,
                "--json" => args.json = true,
                "--prom" => args.prom = true,
                "--switches" | "--seed" | "--mtu" | "--steady-packets" | "--limit" | "--seeds"
                | "--threads" | "--allocator" | "--rounds" | "--shards" | "--requests"
                | "--perfetto" | "--window" | "--slo" | "--flight-dir" => {
                    let value = it
                        .next()
                        .ok_or_else(|| ParseError::MissingValue(flag.clone()))?;
                    let bad = || ParseError::BadValue(flag.clone(), value.clone());
                    match flag.as_str() {
                        "--switches" => args.switches = value.parse().map_err(|_| bad())?,
                        "--seed" => args.seed = value.parse().map_err(|_| bad())?,
                        "--mtu" => args.mtu = value.parse().map_err(|_| bad())?,
                        "--steady-packets" => {
                            args.steady_packets = value.parse().map_err(|_| bad())?;
                        }
                        "--limit" => args.limit = value.parse().map_err(|_| bad())?,
                        "--seeds" => args.seeds = value.parse().map_err(|_| bad())?,
                        "--threads" => args.threads = value.parse().map_err(|_| bad())?,
                        "--allocator" => {
                            args.allocator = AllocatorKind::ALL
                                .into_iter()
                                .find(|k| k.name() == value.as_str())
                                .ok_or_else(bad)?;
                        }
                        "--rounds" => args.rounds = value.parse().map_err(|_| bad())?,
                        "--shards" => args.shards = value.parse().map_err(|_| bad())?,
                        "--requests" => args.requests = value.parse().map_err(|_| bad())?,
                        "--perfetto" => {
                            if value.is_empty() {
                                return Err(bad());
                            }
                            args.perfetto = Some(value.clone());
                        }
                        "--window" => args.window = value.parse().map_err(|_| bad())?,
                        "--slo" => {
                            if value.is_empty() {
                                return Err(bad());
                            }
                            args.slo = Some(value.clone());
                        }
                        "--flight-dir" => {
                            if value.is_empty() {
                                return Err(bad());
                            }
                            args.flight_dir = Some(value.clone());
                        }
                        _ => unreachable!(),
                    }
                }
                other => return Err(ParseError::UnknownFlag(other.to_string())),
            }
        }
        if args.switches == 0 {
            return Err(ParseError::BadValue("--switches".into(), "0".into()));
        }
        if args.seeds == 0 {
            return Err(ParseError::BadValue("--seeds".into(), "0".into()));
        }
        if args.shards == 0 {
            return Err(ParseError::BadValue("--shards".into(), "0".into()));
        }
        if args.window == 0 {
            return Err(ParseError::BadValue("--window".into(), "0".into()));
        }
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv("run")).unwrap();
        assert_eq!(a.command, Command::Run);
        assert_eq!(a.switches, 8);
        assert_eq!(a.seed, 42);
        assert_eq!(a.mtu, 256);
        assert!(!a.background);
    }

    #[test]
    fn all_flags_parse() {
        let a = Args::parse(&argv(
            "run --switches 16 --seed 7 --mtu 4096 --steady-packets 30 --background",
        ))
        .unwrap();
        assert_eq!(a.switches, 16);
        assert_eq!(a.seed, 7);
        assert_eq!(a.mtu, 4096);
        assert_eq!(a.steady_packets, 30);
        assert!(a.background);
    }

    #[test]
    fn topo_dot_flag() {
        let a = Args::parse(&argv("topo --dot")).unwrap();
        assert_eq!(a.command, Command::Topo);
        assert!(a.dot);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(Args::parse(&[]).unwrap_err(), ParseError::MissingCommand);
        assert!(matches!(
            Args::parse(&argv("frobnicate")).unwrap_err(),
            ParseError::UnknownCommand(_)
        ));
        assert!(matches!(
            Args::parse(&argv("run --bogus")).unwrap_err(),
            ParseError::UnknownFlag(_)
        ));
        assert!(matches!(
            Args::parse(&argv("run --switches")).unwrap_err(),
            ParseError::MissingValue(_)
        ));
        assert!(matches!(
            Args::parse(&argv("run --switches banana")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
        assert!(matches!(
            Args::parse(&argv("run --switches 0")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
    }

    #[test]
    fn report_and_trace_parse() {
        let a = Args::parse(&argv("report --switches 4")).unwrap();
        assert_eq!(a.command, Command::Report);
        assert_eq!(a.switches, 4);
        let a = Args::parse(&argv("trace --limit 7")).unwrap();
        assert_eq!(a.command, Command::Trace);
        assert_eq!(a.limit, 7);
        let a = Args::parse(&argv("trace --limit 0")).unwrap();
        assert_eq!(a.limit, 0, "0 means all retained events");
        assert!(matches!(
            Args::parse(&argv("trace --limit banana")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
    }

    #[test]
    fn sweep_flags_parse() {
        let a = Args::parse(&argv("sweep --seeds 8 --threads 2 --switches 4")).unwrap();
        assert_eq!(a.command, Command::Sweep);
        assert_eq!(a.seeds, 8);
        assert_eq!(a.threads, 2);
        assert_eq!(a.switches, 4);
        assert!(matches!(
            Args::parse(&argv("sweep --seeds 0")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
        // Defaults: 4 seeds, auto threads.
        let a = Args::parse(&argv("sweep")).unwrap();
        assert_eq!(a.seeds, 4);
        assert_eq!(a.threads, 0);
    }

    #[test]
    fn audit_flags_parse() {
        let a = Args::parse(&argv("audit")).unwrap();
        assert_eq!(a.command, Command::Audit);
        assert_eq!(a.allocator, AllocatorKind::BitReversal);
        assert_eq!(a.perfetto, None);
        let a = Args::parse(&argv(
            "audit --allocator first-fit --mtu 4096 --perfetto out.json",
        ))
        .unwrap();
        assert_eq!(a.allocator, AllocatorKind::FirstFit);
        assert_eq!(a.mtu, 4096);
        assert_eq!(a.perfetto.as_deref(), Some("out.json"));
        let a = Args::parse(&argv("audit --allocator reverse-fit")).unwrap();
        assert_eq!(a.allocator, AllocatorKind::ReverseFit);
        assert!(matches!(
            Args::parse(&argv("audit --allocator worst-fit")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
        assert!(matches!(
            Args::parse(&argv("audit --perfetto")).unwrap_err(),
            ParseError::MissingValue(_)
        ));
    }

    #[test]
    fn chaos_flags_parse() {
        let a = Args::parse(&argv("chaos")).unwrap();
        assert_eq!(a.command, Command::Chaos);
        assert_eq!(a.allocator, AllocatorKind::BitReversal);
        assert_eq!(a.rounds, 3);
        let a = Args::parse(&argv(
            "chaos --allocator first-fit --mtu 4096 --rounds 5 --seeds 2 --threads 2",
        ))
        .unwrap();
        assert_eq!(a.allocator, AllocatorKind::FirstFit);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.seeds, 2);
        assert_eq!(a.threads, 2);
        assert!(matches!(
            Args::parse(&argv("chaos --rounds banana")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
    }

    #[test]
    fn serve_flags_parse() {
        let a = Args::parse(&argv("serve")).unwrap();
        assert_eq!(a.command, Command::Serve);
        assert_eq!(a.shards, 2);
        assert_eq!(a.requests, 96);
        assert!(!a.replay);
        let a = Args::parse(&argv(
            "serve --switches 4 --seed 3 --shards 8 --requests 40 --replay",
        ))
        .unwrap();
        assert_eq!(a.switches, 4);
        assert_eq!(a.seed, 3);
        assert_eq!(a.shards, 8);
        assert_eq!(a.requests, 40);
        assert!(a.replay);
        assert!(matches!(
            Args::parse(&argv("serve --shards 0")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
        assert!(matches!(
            Args::parse(&argv("serve --requests banana")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
    }

    #[test]
    fn chaos_serve_flags_parse() {
        let a = Args::parse(&argv("chaos-serve")).unwrap();
        assert_eq!(a.command, Command::ChaosServe);
        assert_eq!(a.shards, 2);
        assert_eq!(a.requests, 96);
        assert!(!a.no_journal);
        let a = Args::parse(&argv(
            "chaos-serve --switches 4 --seed 7 --shards 8 --requests 40 --replay --no-journal",
        ))
        .unwrap();
        assert_eq!(a.switches, 4);
        assert_eq!(a.seed, 7);
        assert_eq!(a.shards, 8);
        assert_eq!(a.requests, 40);
        assert!(a.replay);
        assert!(a.no_journal);
        assert!(matches!(
            Args::parse(&argv("chaos-serve --shards 0")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
    }

    #[test]
    fn perfetto_applies_to_trace_and_sweep_too() {
        let a = Args::parse(&argv("trace --perfetto t.json")).unwrap();
        assert_eq!(a.perfetto.as_deref(), Some("t.json"));
        let a = Args::parse(&argv("sweep --perfetto s.json --seeds 2")).unwrap();
        assert_eq!(a.perfetto.as_deref(), Some("s.json"));
    }

    #[test]
    fn timeline_flags_parse() {
        let a = Args::parse(&argv("timeline")).unwrap();
        assert_eq!(a.command, Command::Timeline);
        assert_eq!(a.window, 4096);
        assert!(!a.json);
        assert_eq!(a.slo, None);
        assert_eq!(a.flight_dir, None);
        let a = Args::parse(&argv(
            "timeline --switches 4 --seed 11 --seeds 3 --window 2048 --json --threads 2",
        ))
        .unwrap();
        assert_eq!(a.switches, 4);
        assert_eq!(a.seed, 11);
        assert_eq!(a.seeds, 3);
        assert_eq!(a.window, 2048);
        assert!(a.json);
        assert_eq!(a.threads, 2);
        assert!(matches!(
            Args::parse(&argv("timeline --window 0")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
        assert!(matches!(
            Args::parse(&argv("timeline --window banana")).unwrap_err(),
            ParseError::BadValue(_, _)
        ));
    }

    #[test]
    fn slo_and_flight_flags_parse() {
        let a = Args::parse(&argv(
            "serve --slo rate(cac_admit_total)==0 --flight-dir flight --window 16",
        ))
        .unwrap();
        assert_eq!(a.slo.as_deref(), Some("rate(cac_admit_total)==0"));
        assert_eq!(a.flight_dir.as_deref(), Some("flight"));
        assert_eq!(a.window, 16);
        let a = Args::parse(&argv("audit --slo rate(audit_violations_total)==0")).unwrap();
        assert_eq!(a.slo.as_deref(), Some("rate(audit_violations_total)==0"));
        assert!(matches!(
            Args::parse(&argv("serve --slo")).unwrap_err(),
            ParseError::MissingValue(_)
        ));
        assert!(matches!(
            Args::parse(&argv("serve --flight-dir")).unwrap_err(),
            ParseError::MissingValue(_)
        ));
    }

    #[test]
    fn report_prom_flag() {
        let a = Args::parse(&argv("report --prom --switches 4")).unwrap();
        assert_eq!(a.command, Command::Report);
        assert!(a.prom);
        assert!(!Args::parse(&argv("report")).unwrap().prom);
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(Args::parse(&argv(h)).unwrap().command, Command::Help);
        }
    }
}
