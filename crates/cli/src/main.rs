#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match iba_cli::run(&argv) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
