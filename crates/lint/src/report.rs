//! Report rendering (human text, hand-rolled JSON) and the committed
//! findings baseline.
//!
//! The baseline file (`LINT_baseline.txt`) is line-oriented:
//! `file<TAB>rule<TAB>detail`, `#` comments and blank lines ignored.
//! Line numbers are deliberately excluded so unrelated edits above a
//! tolerated finding don't churn the baseline. The tree is currently
//! clean, so the committed baseline is empty; it exists so a future
//! rule can land before its last offender is fixed.

use crate::rules::{count_by_rule, Finding, Severity, RULES};
use std::collections::BTreeSet;

/// JSON schema version emitted in every report; bump on breaking
/// shape changes.
pub const SCHEMA_VERSION: u32 = 1;

/// The outcome of linting a tree, after baseline application.
#[derive(Clone, Debug, Default)]
pub struct TreeReport {
    /// Files scanned, for the report header.
    pub files_scanned: usize,
    /// Findings NOT covered by the baseline, in (file, line, rule) order.
    pub fresh: Vec<Finding>,
    /// Findings tolerated by the baseline.
    pub baselined: Vec<Finding>,
    /// Findings suppressed by justified pragmas (count only).
    pub suppressed: usize,
}

impl TreeReport {
    /// Fresh findings at [`Severity::Error`].
    #[must_use]
    pub fn fresh_errors(&self) -> usize {
        self.fresh
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// All findings, fresh then baselined.
    #[must_use]
    pub fn all(&self) -> Vec<&Finding> {
        self.fresh.iter().chain(self.baselined.iter()).collect()
    }
}

/// Baseline identity of a finding: everything except the line number.
#[must_use]
pub fn baseline_key(f: &Finding) -> String {
    format!("{}\t{}\t{}", f.file, f.rule, f.detail)
}

/// Parses baseline text into the set of tolerated keys.
#[must_use]
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Renders findings back into baseline format (sorted, deduped) —
/// `cargo xtask lint --write-baseline` uses this.
#[must_use]
pub fn render_baseline(findings: &[Finding]) -> String {
    let keys: BTreeSet<String> = findings.iter().map(baseline_key).collect();
    let mut out = String::from(
        "# iba-lint findings baseline: file<TAB>rule<TAB>detail per line.\n\
         # Regenerate with `cargo xtask lint --write-baseline`. Keep empty\n\
         # unless a new rule must land before its last offender is fixed.\n",
    );
    for k in keys {
        out.push_str(&k);
        out.push('\n');
    }
    out
}

/// Splits findings into (fresh, baselined) against a tolerated-key set.
#[must_use]
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &BTreeSet<String>,
) -> (Vec<Finding>, Vec<Finding>) {
    findings
        .into_iter()
        .partition(|f| !baseline.contains(&baseline_key(f)))
}

/// Human-readable report body: one line per finding, fresh first,
/// then a summary line.
#[must_use]
pub fn render_text(report: &TreeReport) -> String {
    let mut out = String::new();
    for f in &report.fresh {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    for f in &report.baselined {
        out.push_str(&format!("{f} (baselined)\n"));
    }
    let by_rule = count_by_rule(&report.fresh);
    let breakdown = if by_rule.is_empty() {
        String::new()
    } else {
        let parts: Vec<String> = by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        format!(" [{}]", parts.join(", "))
    };
    out.push_str(&format!(
        "lint: {} file(s), {} fresh finding(s) ({} error), {} baselined, {} suppressed by pragma{breakdown}\n",
        report.files_scanned,
        report.fresh.len(),
        report.fresh_errors(),
        report.baselined.len(),
        report.suppressed,
    ));
    out
}

/// Escapes a string for JSON (the workspace's zero-dep pattern).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding, baselined: bool) -> String {
    format!(
        "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"detail\":\"{}\",\"baselined\":{}}}",
        esc(&f.file),
        f.line,
        f.rule,
        f.severity.name(),
        esc(&f.detail),
        baselined,
    )
}

/// The machine-readable report. Stable field order; see the snapshot
/// test in `tests/report_schema.rs`.
#[must_use]
pub fn render_json(report: &TreeReport) -> String {
    let rules: Vec<String> = RULES
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"severity\":\"{}\"}}",
                r.name,
                r.severity.name()
            )
        })
        .collect();
    let findings: Vec<String> = report
        .fresh
        .iter()
        .map(|f| finding_json(f, false))
        .chain(report.baselined.iter().map(|f| finding_json(f, true)))
        .collect();
    let errors = report.fresh_errors();
    let warnings = report.fresh.len() - errors;
    format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"tool\": \"iba-lint\",\n  \"files_scanned\": {},\n  \"counts\": {{\"errors\": {errors}, \"warnings\": {warnings}, \"baselined\": {}, \"suppressed\": {}}},\n  \"rules\": [{}],\n  \"findings\": [{}]\n}}\n",
        report.files_scanned,
        report.baselined.len(),
        report.suppressed,
        rules.join(","),
        findings.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, detail: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: "no-panic",
            severity: Severity::Error,
            detail: detail.to_string(),
        }
    }

    #[test]
    fn baseline_round_trips_and_ignores_lines() {
        let f1 = finding("a.rs", 10, "d1");
        let f2 = finding("b.rs", 20, "d2");
        let text = render_baseline(&[f1.clone(), f2.clone()]);
        let keys = parse_baseline(&text);
        assert_eq!(keys.len(), 2);
        // Same finding on a different line still matches.
        let moved = finding("a.rs", 99, "d1");
        let (fresh, old) = apply_baseline(vec![moved, finding("c.rs", 1, "d3")], &keys);
        assert_eq!(old.len(), 1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].file, "c.rs");
    }

    #[test]
    fn empty_baseline_tolerates_nothing() {
        let keys = parse_baseline("# comment only\n\n");
        assert!(keys.is_empty());
        let (fresh, old) = apply_baseline(vec![finding("a.rs", 1, "d")], &keys);
        assert_eq!(fresh.len(), 1);
        assert!(old.is_empty());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn text_summary_counts() {
        let report = TreeReport {
            files_scanned: 3,
            fresh: vec![finding("a.rs", 1, "d")],
            baselined: vec![finding("b.rs", 2, "e")],
            suppressed: 4,
        };
        let text = render_text(&report);
        assert!(text.contains("a.rs:1: error [no-panic] d"));
        assert!(text.contains("(baselined)"));
        assert!(text.contains("3 file(s), 1 fresh finding(s) (1 error), 1 baselined, 4 suppressed"));
    }
}
