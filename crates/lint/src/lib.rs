//! # iba-lint — the workspace's determinism & panic-freedom lint engine
//!
//! Zero-dependency static analysis for the InfiniBand arbitration-table
//! workspace. A real Rust lexer ([`lexer`]) tokenizes each source file
//! — nested block comments, raw strings (`r#"…"#` with any hash
//! count), byte/C strings, char-vs-lifetime disambiguation — and a
//! rule engine ([`rules`]) walks the token stream, so rules can never
//! be fooled by banned identifiers hiding in literals or real code
//! hiding behind a nested comment (the two blind spots of the string
//! scanners this crate replaced).
//!
//! The rule catalog lives in [`rules::RULES`] and is documented in
//! `LINTS.md` (cross-checked by `cargo xtask check`). Findings are
//! suppressed per-line with justified pragmas:
//!
//! ```text
//! // lint: allow(no-unordered-iter) -- membership-only; never iterated
//! ```
//!
//! Entry points: [`lint_source`] for one file, [`lint_tree`] for a
//! repository checkout, [`report`] for text/JSON rendering and the
//! committed baseline. The CLI front-end is `cargo xtask lint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{
    apply_baseline, baseline_key, parse_baseline, render_baseline, render_json, render_text,
    TreeReport, SCHEMA_VERSION,
};
pub use rules::{is_crate_root, is_test_path, lint_source, FileReport, Finding, Severity, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned: build output, VCS metadata, and anything
/// hidden.
fn skip_dir(name: &str) -> bool {
    name == "target" || name.starts_with('.')
}

/// Every `.rs` file under `root`, as sorted repository-relative
/// `/`-separated paths. Deterministic regardless of readdir order.
///
/// # Errors
/// Propagates filesystem errors from directory traversal.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !skip_dir(&name) {
                    walk(root, &path, out)?;
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

/// Lints a repository checkout. `paths` restricts the scan to files
/// whose relative path starts with one of the given prefixes (empty =
/// whole tree); `baseline` is the tolerated-key set from
/// [`parse_baseline`]. Findings come back in (file, line, rule) order.
///
/// # Errors
/// Propagates filesystem errors (traversal or file reads).
pub fn lint_tree(
    root: &Path,
    paths: &[String],
    baseline: &std::collections::BTreeSet<String>,
) -> io::Result<TreeReport> {
    let mut files = collect_rs_files(root)?;
    if !paths.is_empty() {
        files.retain(|f| paths.iter().any(|p| f.starts_with(p.as_str())));
    }
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let files_scanned = files.len();
    for rel in &files {
        let mut abs = PathBuf::from(root);
        abs.extend(rel.split('/'));
        let source = fs::read_to_string(&abs)?;
        let mut file_report = lint_source(rel, &source);
        suppressed += file_report.suppressed;
        findings.append(&mut file_report.findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let (fresh, baselined) = apply_baseline(findings, baseline);
    Ok(TreeReport {
        files_scanned,
        fresh,
        baselined,
        suppressed,
    })
}
