//! The rule engine: workspace discipline rules evaluated over the
//! token stream of [`crate::lexer`].
//!
//! Every rule guards a piece of the byte-identical determinism
//! contract or the panic-freedom contract (see `LINTS.md` for the
//! catalog). Rules see *tokens*, not lines: string/char literal
//! contents and comments can never masquerade as code, and code can
//! never hide in a raw string.
//!
//! Findings can be suppressed with a justified pragma on the same line
//! or the line above:
//!
//! ```text
//! // lint: allow(no-unordered-iter) -- membership-only; never iterated
//! ```
//!
//! A pragma without a `--` justification (or naming an unknown rule)
//! is itself a finding (`pragma-hygiene`), so suppressions stay
//! reviewable.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;

/// How bad a finding is. `Error` findings gate CI; `Warning` findings
/// are reported and must still be fixed or pragma'd to keep
/// `cargo xtask lint --no-baseline` clean.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Breaks the build when new.
    Error,
    /// Reported; strict mode treats it like an error.
    Warning,
}

impl Severity {
    /// Lowercase name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One rule violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Repository-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (see [`RULES`]).
    pub rule: &'static str,
    /// Severity of the rule.
    pub severity: Severity,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.file,
            self.line,
            self.severity.name(),
            self.rule,
            self.detail
        )
    }
}

/// Registry entry: everything `LINTS.md` documents per rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Rule identifier, as used in pragmas and reports.
    pub name: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// Where it applies, in words.
    pub scope: &'static str,
    /// Why it exists.
    pub rationale: &'static str,
}

/// Crates whose non-test source must not construct or iterate
/// hash-ordered containers: their state feeds grant streams, reports,
/// or repair order, all of which must be byte-identical across runs.
const ORDERED_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/sim/src/",
    "crates/qos/src/",
    "crates/harness/src/",
    "crates/traffic/src/",
    "crates/verify/src/",
];

/// Crates whose non-test source must be panic-free (the always-on
/// control plane).
const PANIC_FREE_SCOPE: &[&str] = &["crates/core/src/", "crates/sim/src/", "crates/qos/src/"];

/// Files allowed to read the wall clock: the span profiler owns the
/// epoch, and the bench crate measures wall time by design.
const WALL_CLOCK_ALLOWED: &[&str] = &["crates/obs/src/span.rs", "crates/bench/"];

/// The one crate allowed to create threads: the sweep engine, whose
/// merge discipline keeps results byte-identical at any worker count.
const THREADS_ALLOWED: &[&str] = &["crates/harness/src/"];

/// Crates whose non-test source must not create unbounded channels:
/// the admission control plane's load-shedding contract depends on
/// every queue having a capacity that can exert backpressure.
const BOUNDED_CHANNEL_SCOPE: &[&str] = &["crates/qos/src/", "crates/harness/src/"];

/// The full rule registry. `LINTS.md` is cross-checked against this
/// list by `cargo xtask check` (the `lints-doc` step).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "no-unordered-iter",
        severity: Severity::Error,
        scope: "non-test code of core, sim, qos, harness, traffic, verify",
        rationale: "HashMap/HashSet iteration order is hasher-dependent and can leak \
                    nondeterminism into grant streams, reports, and repair order; use \
                    BTreeMap/BTreeSet or sorted vectors",
    },
    RuleInfo {
        name: "no-wall-clock",
        severity: Severity::Error,
        scope: "non-test code everywhere except crates/obs/src/span.rs and crates/bench",
        rationale: "Instant::now/SystemTime outside the span profiler and the bench \
                    harness would break seeded replay and the byte-identical contract",
    },
    RuleInfo {
        name: "no-thread-spawn",
        severity: Severity::Error,
        scope: "non-test code everywhere except crates/harness",
        rationale: "all parallelism must go through the harness sweep engine, whose \
                    deterministic merge keeps output byte-identical at any IBA_THREADS",
    },
    RuleInfo {
        name: "no-unbounded-channel",
        severity: Severity::Error,
        scope: "non-test code of qos, harness",
        rationale: "`mpsc::channel()` has no capacity bound, so a slow consumer grows \
                    the queue instead of exerting backpressure; the admission \
                    control plane's load-shedding ladder only works over bounded \
                    `sync_channel` queues — justify any exception with a pragma",
    },
    RuleInfo {
        name: "no-panic",
        severity: Severity::Error,
        scope: "non-test code of core, sim, qos",
        rationale: "the always-on control plane must surface failures as Results or \
                    named-invariant assert!s, never anonymous unwrap/expect/panic!",
    },
    RuleInfo {
        name: "forbid-unsafe",
        severity: Severity::Error,
        scope: "every crate-root source file",
        rationale: "the workspace is 100% safe Rust; every crate root must carry \
                    #![forbid(unsafe_code)] as a compiler-enforced guarantee",
    },
    RuleInfo {
        name: "no-raw-occupancy-arith",
        severity: Severity::Error,
        scope: "non-test code outside crates/core",
        rationale: "the occupancy bitmask is iba-core's private representation; other \
                    crates must interpret it through core APIs, never raw bit operations",
    },
    RuleInfo {
        name: "no-env-read",
        severity: Severity::Error,
        scope: "non-test code everywhere",
        rationale: "environment access is limited to the documented IBA_* knobs so every \
                    experiment stays reproducible from its command line and seed",
    },
    RuleInfo {
        name: "todo-tracked",
        severity: Severity::Warning,
        scope: "comments everywhere (test code included)",
        rationale: "every to-do or fix-me marker must carry an issue reference \
                    (#<digits> or ISSUE) so deferred work cannot silently rot",
    },
    RuleInfo {
        name: "pragma-hygiene",
        severity: Severity::Error,
        scope: "lint pragmas everywhere",
        rationale: "a `lint: allow` pragma must name a registered rule and carry a \
                    `--` justification, so every suppression stays reviewable",
    },
];

/// Looks a rule up by name.
#[must_use]
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Result of linting one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Findings that survived pragma filtering, in (line, rule) order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by justified pragmas.
    pub suppressed: usize,
}

/// True for files whose *whole content* is test/bench/example code —
/// code-discipline rules skip them entirely.
#[must_use]
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// True for crate-root source files, which must carry
/// `#![forbid(unsafe_code)]`.
#[must_use]
pub fn is_crate_root(rel_path: &str) -> bool {
    if rel_path == "src/lib.rs" {
        return true; // the workspace-root package
    }
    let Some(rest) = rel_path.strip_prefix("crates/") else {
        return false;
    };
    let Some((_, tail)) = rest.split_once('/') else {
        return false;
    };
    tail == "src/lib.rs"
        || tail == "src/main.rs"
        || (tail.starts_with("src/bin/") && tail.ends_with(".rs"))
}

fn in_any(rel_path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p))
}

/// A parsed `// lint: allow(<rules>) -- <justification>` pragma.
struct Pragma {
    line: u32,
    rules: Vec<&'static str>,
}

/// Lints one file. `rel_path` must be repository-relative with `/`
/// separators; it selects which rules apply.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> FileReport {
    let tokens = lex(source);
    let test_file = is_test_path(rel_path);
    let regions = if test_file {
        Vec::new()
    } else {
        test_regions(&tokens)
    };
    let in_test = |tok: &Token<'_>| {
        test_file
            || regions
                .iter()
                .any(|&(s, e)| tok.start >= s && tok.start < e)
    };

    let mut findings: Vec<Finding> = Vec::new();
    let (pragmas, mut pragma_findings) = collect_pragmas(rel_path, &tokens);
    findings.append(&mut pragma_findings);

    // Comment rules see every comment, test code included.
    todo_tracked(rel_path, &tokens, &mut findings);

    // Code rules see non-trivia tokens outside test code.
    let code: Vec<Token<'_>> = tokens
        .iter()
        .filter(|t| !t.is_trivia() && !in_test(t))
        .copied()
        .collect();

    if in_any(rel_path, PANIC_FREE_SCOPE) && !test_file {
        no_panic(rel_path, &code, &mut findings);
    }
    if in_any(rel_path, ORDERED_SCOPE) && !test_file {
        no_unordered_iter(rel_path, &code, &mut findings);
    }
    if !in_any(rel_path, WALL_CLOCK_ALLOWED) && !test_file {
        no_wall_clock(rel_path, &code, &mut findings);
    }
    if !in_any(rel_path, THREADS_ALLOWED) && !test_file {
        no_thread_spawn(rel_path, &code, &mut findings);
    }
    if in_any(rel_path, BOUNDED_CHANNEL_SCOPE) && !test_file {
        no_unbounded_channel(rel_path, &code, &mut findings);
    }
    if !rel_path.starts_with("crates/core/") && !test_file {
        no_raw_occupancy_arith(rel_path, source, &code, &mut findings);
    }
    if !test_file {
        no_env_read(rel_path, &code, &mut findings);
    }
    if is_crate_root(rel_path) {
        forbid_unsafe(rel_path, &tokens, &mut findings);
    }

    // Dedup (one finding per rule per line), order, then apply pragmas.
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);

    let allowed = |f: &Finding| {
        pragmas
            .iter()
            .any(|p| (p.line == f.line || p.line + 1 == f.line) && p.rules.contains(&f.rule))
    };
    let total = findings.len();
    findings.retain(|f| f.rule == "pragma-hygiene" || !allowed(f));
    let suppressed = total - findings.len();
    FileReport {
        findings,
        suppressed,
    }
}

/// Byte ranges covered by `#[cfg(test)]`-gated items (and `#[test]`
/// functions). Braces inside strings or comments are separate token
/// kinds, so the depth tracking cannot be fooled by literal content.
fn test_regions(tokens: &[Token<'_>]) -> Vec<(usize, usize)> {
    let nt: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < nt.len() {
        if !(nt[i].kind == TokenKind::Punct && nt[i].text == "#") {
            i += 1;
            continue;
        }
        let Some((is_test_attr, after_attr)) = parse_attribute(&nt, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr {
            i = after_attr;
            continue;
        }
        let region_start = nt[i].start;
        // Skip any further attributes between the cfg(test) and the item.
        let mut j = after_attr;
        while j < nt.len() && nt[j].kind == TokenKind::Punct && nt[j].text == "#" {
            match parse_attribute(&nt, j) {
                Some((_, next)) => j = next,
                None => break,
            }
        }
        // The gated item runs to its matching close brace (or `;` for
        // bodyless items like `mod tests;`, which gate nothing here).
        let mut depth = 0i32;
        let mut end = None;
        while j < nt.len() {
            match (nt[j].kind, nt[j].text) {
                (TokenKind::Punct, "{") => depth += 1,
                (TokenKind::Punct, "}") => {
                    depth -= 1;
                    if depth <= 0 {
                        end = Some(nt[j].end());
                        break;
                    }
                }
                (TokenKind::Punct, ";") if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(end) = end {
            regions.push((region_start, end));
        }
        i = j + 1;
    }
    regions
}

/// Parses the attribute starting at `nt[i]` (which is `#`). Returns
/// `(gates_test_code, index_after_closing_bracket)`, or `None` when
/// the shape isn't an attribute.
fn parse_attribute(nt: &[&Token<'_>], i: usize) -> Option<(bool, usize)> {
    let mut j = i + 1;
    // Inner attributes (`#![…]`) never gate test code.
    let inner = nt.get(j).is_some_and(|t| t.text == "!");
    if inner {
        j += 1;
    }
    if nt.get(j).is_none_or(|t| t.text != "[") {
        return None;
    }
    let mut depth = 0i32;
    let mut saw_test = false;
    let mut saw_cfg = false;
    let mut first_ident: Option<&str> = None;
    while j < nt.len() {
        match (nt[j].kind, nt[j].text) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    let gates = !inner && ((saw_cfg && saw_test) || first_ident == Some("test"));
                    return Some((gates, j + 1));
                }
            }
            (TokenKind::Ident, text) => {
                if first_ident.is_none() {
                    first_ident = Some(text);
                }
                saw_test |= text == "test";
                saw_cfg |= text == "cfg";
            }
            _ => {}
        }
        j += 1;
    }
    None // unterminated attribute: scan on
}

/// Parses `lint: allow(...)` pragmas out of line comments. Returns the
/// valid pragmas and a `pragma-hygiene` finding per malformed one.
fn collect_pragmas(rel_path: &str, tokens: &[Token<'_>]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        // A pragma must start the comment (after the `//`/`///`/`//!`
        // leader), so prose that merely *mentions* pragma syntax is
        // never parsed as one.
        let content = tok.text.trim_start_matches('/');
        let content = content.strip_prefix('!').unwrap_or(content).trim_start();
        if !content.starts_with("lint:") {
            continue;
        }
        let mut bad = |why: &str| {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: tok.line,
                rule: "pragma-hygiene",
                severity: Severity::Error,
                detail: format!("malformed lint pragma: {why}"),
            });
        };
        let rest = content["lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad("expected `lint: allow(<rule>) -- <justification>`");
            continue;
        };
        let Some((list, rest)) = rest.split_once(')') else {
            bad("unclosed rule list");
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match rule_info(name) {
                Some(info) => rules.push(info.name),
                None => {
                    bad(&format!("unknown rule `{name}`"));
                    ok = false;
                }
            }
        }
        if !ok {
            continue;
        }
        if rules.is_empty() {
            bad("empty rule list");
            continue;
        }
        let rest = rest.trim_start();
        let justification = rest.strip_prefix("--").map(str::trim).unwrap_or("");
        if justification.is_empty() {
            bad("missing `-- <justification>`");
            continue;
        }
        pragmas.push(Pragma {
            line: tok.line,
            rules,
        });
    }
    (pragmas, findings)
}

fn push(
    findings: &mut Vec<Finding>,
    rel_path: &str,
    line: u32,
    rule: &'static str,
    detail: String,
) {
    let severity = rule_info(rule).map_or(Severity::Error, |r| r.severity);
    findings.push(Finding {
        file: rel_path.to_string(),
        line,
        rule,
        severity,
        detail,
    });
}

/// True when `nt[i]` and `nt[i+1]` form `::` and `nt[i+2]` is one of
/// `names`; the path-segment matcher for `Type::method` patterns.
fn path_seg<'a>(nt: &[Token<'a>], i: usize, names: &[&str]) -> Option<&'a str> {
    let colon1 = nt.get(i + 1)?;
    let colon2 = nt.get(i + 2)?;
    let target = nt.get(i + 3)?;
    if colon1.text == ":"
        && colon2.text == ":"
        && colon1.end() == colon2.start
        && target.kind == TokenKind::Ident
        && names.contains(&target.text)
    {
        Some(target.text)
    } else {
        None
    }
}

fn no_panic(rel_path: &str, nt: &[Token<'_>], findings: &mut Vec<Finding>) {
    for (i, tok) in nt.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text {
            "unwrap" | "expect" => {
                let after_dot = i > 0 && nt[i - 1].text == ".";
                let called = nt.get(i + 1).is_some_and(|t| t.text == "(");
                if after_dot && called {
                    push(
                        findings,
                        rel_path,
                        tok.line,
                        "no-panic",
                        format!("`.{}(` in non-test code of a panic-free crate", tok.text),
                    );
                }
            }
            "panic" if nt.get(i + 1).is_some_and(|t| t.text == "!") => {
                push(
                    findings,
                    rel_path,
                    tok.line,
                    "no-panic",
                    "`panic!(` in non-test code of a panic-free crate".to_string(),
                );
            }
            _ => {}
        }
    }
}

fn no_unordered_iter(rel_path: &str, nt: &[Token<'_>], findings: &mut Vec<Finding>) {
    for tok in nt {
        if tok.kind == TokenKind::Ident && (tok.text == "HashMap" || tok.text == "HashSet") {
            push(
                findings,
                rel_path,
                tok.line,
                "no-unordered-iter",
                format!(
                    "`{}` in determinism-critical code: iteration order is \
                     hasher-dependent; use BTreeMap/BTreeSet or a sorted vector",
                    tok.text
                ),
            );
        }
    }
}

fn no_wall_clock(rel_path: &str, nt: &[Token<'_>], findings: &mut Vec<Finding>) {
    for (i, tok) in nt.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if tok.text == "Instant" && path_seg(nt, i, &["now"]).is_some() {
            push(
                findings,
                rel_path,
                tok.line,
                "no-wall-clock",
                "`Instant::now()` outside the span profiler/bench harness \
                 breaks seeded replay"
                    .to_string(),
            );
        } else if tok.text == "SystemTime" {
            push(
                findings,
                rel_path,
                tok.line,
                "no-wall-clock",
                "`SystemTime` outside the span profiler/bench harness \
                 breaks seeded replay"
                    .to_string(),
            );
        }
    }
}

fn no_thread_spawn(rel_path: &str, nt: &[Token<'_>], findings: &mut Vec<Finding>) {
    for (i, tok) in nt.iter().enumerate() {
        if tok.kind == TokenKind::Ident && tok.text == "thread" {
            if let Some(what) = path_seg(nt, i, &["spawn", "scope", "Builder"]) {
                push(
                    findings,
                    rel_path,
                    tok.line,
                    "no-thread-spawn",
                    format!(
                        "`thread::{what}` outside iba-harness: all parallelism must \
                         go through the deterministic sweep engine"
                    ),
                );
            }
        }
    }
}

fn no_unbounded_channel(rel_path: &str, nt: &[Token<'_>], findings: &mut Vec<Finding>) {
    for (i, tok) in nt.iter().enumerate() {
        if tok.kind == TokenKind::Ident
            && tok.text == "mpsc"
            && path_seg(nt, i, &["channel"]).is_some()
        {
            push(
                findings,
                rel_path,
                tok.line,
                "no-unbounded-channel",
                "`mpsc::channel()` is unbounded and cannot exert backpressure; \
                 use `mpsc::sync_channel(cap)` or justify with a pragma"
                    .to_string(),
            );
        }
    }
}

/// Flags raw bit manipulation in files (outside core) that read
/// `.occupancy()`. Shifts and `^` must be space-delimited in the
/// source (rustfmt guarantees it) so `Vec<Vec<u8>>` never fires.
fn no_raw_occupancy_arith(
    rel_path: &str,
    source: &str,
    nt: &[Token<'_>],
    findings: &mut Vec<Finding>,
) {
    let reads_occupancy = nt.iter().enumerate().any(|(i, t)| {
        t.kind == TokenKind::Ident
            && t.text == "occupancy"
            && i > 0
            && nt[i - 1].text == "."
            && nt.get(i + 1).is_some_and(|n| n.text == "(")
    });
    if !reads_occupancy {
        return;
    }
    let bytes = source.as_bytes();
    let spaced = |start: usize, end: usize| {
        start > 0 && bytes[start - 1] == b' ' && bytes.get(end).copied() == Some(b' ')
    };
    let mut flag = |line: u32, what: &str| {
        push(
            findings,
            rel_path,
            line,
            "no-raw-occupancy-arith",
            format!(
                "`{what}` in a file that reads `.occupancy()`; interpret the mask \
                 through iba-core APIs"
            ),
        );
    };
    for (i, tok) in nt.iter().enumerate() {
        match (tok.kind, tok.text) {
            (TokenKind::Ident, "count_ones" | "trailing_zeros" | "leading_zeros") => {
                flag(tok.line, tok.text);
            }
            (TokenKind::Punct, "&" | "|")
                if nt
                    .get(i + 1)
                    .is_some_and(|n| n.text == "=" && n.start == tok.end()) =>
            {
                flag(tok.line, if tok.text == "&" { "&=" } else { "|=" });
            }
            (TokenKind::Punct, "<" | ">")
                if nt
                    .get(i + 1)
                    .is_some_and(|n| n.text == tok.text && n.start == tok.end())
                    && spaced(tok.start, tok.end() + 1) =>
            {
                flag(tok.line, if tok.text == "<" { "<<" } else { ">>" });
            }
            (TokenKind::Punct, "^") if spaced(tok.start, tok.end()) => {
                flag(tok.line, "^");
            }
            _ => {}
        }
    }
}

fn no_env_read(rel_path: &str, nt: &[Token<'_>], findings: &mut Vec<Finding>) {
    const READERS: &[&str] = &["var", "var_os", "set_var", "remove_var", "vars", "vars_os"];
    for (i, tok) in nt.iter().enumerate() {
        if !(tok.kind == TokenKind::Ident && tok.text == "env") {
            continue;
        }
        let Some(what) = path_seg(nt, i, READERS) else {
            continue;
        };
        if what == "vars" || what == "vars_os" {
            push(
                findings,
                rel_path,
                tok.line,
                "no-env-read",
                format!("`env::{what}()` enumerates the whole environment; only the documented IBA_* knobs may be read"),
            );
            continue;
        }
        // `env::var("IBA_…")` — first argument must be an IBA_ literal.
        let arg = nt.get(i + 5); // env :: what ( <arg>
        let is_iba_literal = nt.get(i + 4).is_some_and(|t| t.text == "(")
            && arg.is_some_and(|t| {
                t.kind == TokenKind::Str && t.text.trim_matches('"').starts_with("IBA_")
            });
        if !is_iba_literal {
            push(
                findings,
                rel_path,
                tok.line,
                "no-env-read",
                format!(
                    "`env::{what}` with a non-`\"IBA_*\"` argument: environment access \
                     is limited to the documented IBA_* knobs"
                ),
            );
        }
    }
}

/// Comment markers for deferred work must carry an issue reference.
fn todo_tracked(rel_path: &str, tokens: &[Token<'_>], findings: &mut Vec<Finding>) {
    for tok in tokens {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        for marker in ["TODO", "FIXME"] {
            let Some(pos) = tok.text.find(marker) else {
                continue;
            };
            let tracked = tok.text.contains("ISSUE")
                || tok
                    .text
                    .match_indices('#')
                    .any(|(i, _)| tok.text[i + 1..].starts_with(|c: char| c.is_ascii_digit()));
            if !tracked {
                let line = tok.line + tok.text[..pos].matches('\n').count() as u32;
                push(
                    findings,
                    rel_path,
                    line,
                    "todo-tracked",
                    format!("`{marker}` without an issue reference (add `#<number>` or `ISSUE…`)"),
                );
            }
        }
    }
}

/// Crate roots must carry a real (token-level) `#![forbid(unsafe_code)]`
/// — one inside a comment or string no longer counts.
fn forbid_unsafe(rel_path: &str, tokens: &[Token<'_>], findings: &mut Vec<Finding>) {
    let nt: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    let want = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let found = nt
        .windows(want.len())
        .any(|w| w.iter().zip(want.iter()).all(|(t, e)| t.text == *e));
    if !found {
        push(
            findings,
            rel_path,
            1,
            "forbid-unsafe",
            "crate root lacks #![forbid(unsafe_code)]".to_string(),
        );
    }
}

/// Rule-name → count summary of a finding set (reports, tests).
#[must_use]
pub fn count_by_rule(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut out = BTreeMap::new();
    for f in findings {
        *out.entry(f.rule).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE: &str = "crates/core/src/x.rs";
    const QOS: &str = "crates/qos/src/x.rs";
    const CLI: &str = "crates/cli/src/x.rs";

    fn rules_of(report: &FileReport) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_file_has_no_findings() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(lint_source(CORE, src).findings.is_empty());
    }

    #[test]
    fn unwrap_in_raw_string_never_fires_but_code_after_nested_comment_does() {
        // Regression pair ported from the old scanner's blind spots.
        let hidden = r###"pub fn f() -> &'static str { r#"x.unwrap()"# }"###;
        assert!(lint_source(CORE, hidden).findings.is_empty());

        let nested =
            "/* outer /* inner */ close */\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let report = lint_source(CORE, nested);
        assert_eq!(rules_of(&report), vec!["no-panic"]);
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn panic_and_expect_are_caught() {
        let src = "fn g() {\n    h().expect(\"boom\");\n    panic!(\"no\");\n}\n";
        let report = lint_source(QOS, src);
        assert_eq!(rules_of(&report), vec!["no-panic", "no-panic"]);
        assert_eq!(report.findings[0].line, 2);
        assert_eq!(report.findings[1].line, 3);
    }

    #[test]
    fn panics_out_of_scope_elsewhere() {
        let src = "fn f() { panic!(); }";
        assert!(lint_source(CLI, src).findings.is_empty());
        assert!(lint_source("crates/core/tests/x.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn cfg_test_module_is_skipped_code_after_is_not() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); assert!(\"graph {\".len() > 0); }\n}\n\npub fn f(y: Option<u8>) -> u8 { y.unwrap() }\n";
        let report = lint_source(CORE, src);
        assert_eq!(rules_of(&report), vec!["no-panic"]);
        assert_eq!(report.findings[0].line, 7);
    }

    #[test]
    fn cfg_test_fn_is_skipped() {
        let src = "#[cfg(test)]\nfn helper() { x.unwrap(); }\npub fn f() {}\n";
        assert!(lint_source(CORE, src).findings.is_empty());
    }

    #[test]
    fn unordered_iter_is_scoped() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let report = lint_source("crates/harness/src/x.rs", src);
        // One finding per line, deduped.
        assert_eq!(
            rules_of(&report),
            vec!["no-unordered-iter", "no-unordered-iter"]
        );
        assert!(lint_source("crates/cli/src/x.rs", src).findings.is_empty());
        assert!(lint_source("crates/qos/tests/x.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn wall_clock_and_threads_are_scoped() {
        let clock = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_of(&lint_source(QOS, clock)), vec!["no-wall-clock"]);
        assert!(lint_source("crates/obs/src/span.rs", clock)
            .findings
            .is_empty());
        assert!(lint_source("crates/bench/src/alloc.rs", clock)
            .findings
            .is_empty());

        let sys = "fn f() { let t = std::time::SystemTime::UNIX_EPOCH; }\n";
        assert_eq!(rules_of(&lint_source(CLI, sys)), vec!["no-wall-clock"]);

        let threads = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules_of(&lint_source(CLI, threads)),
            vec!["no-thread-spawn"]
        );
        assert!(lint_source("crates/harness/src/engine.rs", threads)
            .findings
            .is_empty());
        let scoped = "fn f() { std::thread::scope(|s| {}); }\n";
        assert_eq!(rules_of(&lint_source(QOS, scoped)), vec!["no-thread-spawn"]);
        // thread::current is not creation.
        let current = "fn f() { let _ = std::thread::current(); }\n";
        assert!(lint_source(QOS, current).findings.is_empty());
    }

    #[test]
    fn unbounded_channels_are_scoped() {
        let bad = "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }\n";
        assert_eq!(
            rules_of(&lint_source(QOS, bad)),
            vec!["no-unbounded-channel"]
        );
        assert_eq!(
            rules_of(&lint_source("crates/harness/src/x.rs", bad)),
            vec!["no-unbounded-channel"]
        );
        // Out of scope elsewhere, and in test files.
        assert!(lint_source(CLI, bad).findings.is_empty());
        assert!(lint_source("crates/qos/tests/x.rs", bad)
            .findings
            .is_empty());
        // Bounded channels are the sanctioned alternative.
        let ok = "fn f() { let (tx, rx) = std::sync::mpsc::sync_channel::<u8>(8); }\n";
        assert!(lint_source(QOS, ok).findings.is_empty());
        // A justified pragma on the line above suppresses the finding.
        let pragma = "// lint: allow(no-unbounded-channel) -- reply fan-in; senders never block\nfn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }\n";
        let r = lint_source(QOS, pragma);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn occupancy_arithmetic_is_caught_outside_core() {
        let bad = "fn f(t: &T) -> u32 { let o = t.occupancy(); o.count_ones() }\n";
        assert_eq!(
            rules_of(&lint_source(CLI, bad)),
            vec!["no-raw-occupancy-arith"]
        );
        assert!(lint_source("crates/core/src/table.rs", bad)
            .findings
            .is_empty());
        // Pass-through without bit ops is fine; generics never fire.
        let ok = "fn f(t: &T) -> bool { is_canonical(t.occupancy(), Vec::<Vec<u8>>::new()) }\n";
        assert!(lint_source(CLI, ok).findings.is_empty());
        let shift = "fn f(t: &T) -> u64 { t.occupancy() << 1 }\n";
        assert_eq!(
            rules_of(&lint_source(CLI, shift)),
            vec!["no-raw-occupancy-arith"]
        );
    }

    #[test]
    fn env_reads_must_be_iba_knobs() {
        let ok = "fn f() -> Option<String> { std::env::var(\"IBA_THREADS\").ok() }\n";
        assert!(lint_source(CLI, ok).findings.is_empty());
        let bad = "fn f() -> Option<String> { std::env::var(\"HOME\").ok() }\n";
        assert_eq!(rules_of(&lint_source(CLI, bad)), vec!["no-env-read"]);
        let dynamic = "fn f(n: &str) -> Option<String> { std::env::var(n).ok() }\n";
        assert_eq!(rules_of(&lint_source(CLI, dynamic)), vec!["no-env-read"]);
        let all = "fn f() { for (_k, _v) in std::env::vars() {} }\n";
        assert_eq!(rules_of(&lint_source(CLI, all)), vec!["no-env-read"]);
        // args() is argv, not the environment.
        let args = "fn f() -> Vec<String> { std::env::args().collect() }\n";
        assert!(lint_source(CLI, args).findings.is_empty());
    }

    #[test]
    fn todos_need_issue_refs() {
        let bad = "// TODO tighten this bound\nfn f() {}\n";
        let report = lint_source(CLI, bad);
        assert_eq!(rules_of(&report), vec!["todo-tracked"]);
        assert_eq!(report.findings[0].severity, Severity::Warning);
        let ok = "// TODO(#12): tighten this bound\nfn f() {}\n";
        assert!(lint_source(CLI, ok).findings.is_empty());
        let ok2 = "// FIXME: see ISSUE.md item 3\nfn f() {}\n";
        assert!(lint_source(CLI, ok2).findings.is_empty());
        // Fires in test files too.
        let in_test = "// FIXME later\nfn f() {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/tests/t.rs", in_test)),
            vec!["todo-tracked"]
        );
    }

    #[test]
    fn forbid_unsafe_is_token_level() {
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(lint_source("crates/a/src/lib.rs", ok).findings.is_empty());
        let missing = "pub fn f() {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/a/src/lib.rs", missing)),
            vec!["forbid-unsafe"]
        );
        // The old scanner accepted this; the lexer knows better.
        let commented = "// #![forbid(unsafe_code)]\npub fn f() {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/a/src/lib.rs", commented)),
            vec!["forbid-unsafe"]
        );
        // Non-root files are not checked.
        assert!(lint_source("crates/a/src/other.rs", missing)
            .findings
            .is_empty());
        // The workspace-root lib is a crate root too.
        assert_eq!(
            rules_of(&lint_source("src/lib.rs", missing)),
            vec!["forbid-unsafe"]
        );
    }

    #[test]
    fn justified_pragma_suppresses_same_and_next_line() {
        let same =
            "use std::collections::HashMap; // lint: allow(no-unordered-iter) -- membership only\n";
        let r = lint_source(QOS, same);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);

        let above = "// lint: allow(no-unordered-iter) -- membership only\nuse std::collections::HashMap;\n";
        let r = lint_source(QOS, above);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed, 1);

        // The pragma does not bleed past the next line.
        let far = "// lint: allow(no-unordered-iter) -- membership only\n\nuse std::collections::HashMap;\n";
        assert_eq!(rules_of(&lint_source(QOS, far)), vec!["no-unordered-iter"]);
    }

    #[test]
    fn pragma_hygiene_catches_malformed_pragmas() {
        let unjustified = "use std::collections::HashMap; // lint: allow(no-unordered-iter)\n";
        let r = lint_source(QOS, unjustified);
        assert_eq!(rules_of(&r), vec!["no-unordered-iter", "pragma-hygiene"]);

        let unknown = "fn f() {} // lint: allow(no-such-rule) -- because\n";
        assert_eq!(rules_of(&lint_source(QOS, unknown)), vec!["pragma-hygiene"]);

        let mangled = "fn f() {} // lint: deny(no-panic) -- because\n";
        assert_eq!(rules_of(&lint_source(QOS, mangled)), vec!["pragma-hygiene"]);
    }

    #[test]
    fn pragma_with_multiple_rules() {
        let src = "// lint: allow(no-unordered-iter, no-wall-clock) -- test harness epoch map\nuse std::collections::HashMap; use std::time::SystemTime;\n";
        let r = lint_source(QOS, src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 2);
    }

    #[test]
    fn registry_is_documented_and_unique() {
        let mut names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate rule names");
        for r in RULES {
            assert!(!r.scope.is_empty() && !r.rationale.is_empty(), "{}", r.name);
        }
    }
}
