//! A small, honest Rust lexer.
//!
//! The previous generation of scanners worked line-by-line with string
//! heuristics and was blind to raw strings (`r#"…"#`) and nested block
//! comments — a `.unwrap()` inside a raw string fired, one after a
//! nested `/* /* */ */` did not. This lexer tokenizes the constructs
//! that matter for lint soundness:
//!
//! * line comments (`//`, `///`, `//!`) — doc-test fences live inside
//!   these, so code in doc examples is comment text, never code;
//! * block comments with **nesting** (`/* /* */ */`);
//! * string literals with escapes, raw strings with any `#` count,
//!   byte strings (`b"…"`, `br#"…"#`) and C strings (`c"…"`, `cr#"…"#`);
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped and
//!   punctuation chars (`'\''`, `'('`);
//! * identifiers (raw identifiers `r#type` included), numbers, and
//!   single-character punctuation.
//!
//! The contract, enforced by a differential test over every `.rs` file
//! in the repository: lexing always terminates, and the token texts
//! concatenate back to the input byte-for-byte (offsets round-trip).

/// What a token is. Trivia (whitespace/comments) is kept in the stream
/// so byte offsets round-trip; rules skip it (or, for comment rules,
/// look only at it).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting tracked. Unterminated comments run to EOF.
    BlockComment,
    /// `"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, … with any number of hashes.
    RawStr,
    /// `b"…"` with escapes.
    ByteStr,
    /// `br"…"`, `br#"…"#`, ….
    RawByteStr,
    /// `c"…"` / `cr#"…"#` (C strings, Rust 2021+).
    CStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'a` in `<'a>` or `'label:`.
    Lifetime,
    /// Identifier or keyword, raw identifiers (`r#type`) included.
    Ident,
    /// Numeric literal (integer or float, suffixes included).
    Number,
    /// One punctuation character. Multi-character operators are left
    /// split; rules that care (`<<`, `&=`) test adjacency.
    Punct,
    /// Anything else (stray non-ASCII outside literals, …).
    Unknown,
}

/// One token: kind, the exact source slice, and where it starts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokenKind,
    /// Exact source text (concatenating every token's text rebuilds
    /// the input).
    pub text: &'a str,
    /// Byte offset of the first byte.
    pub start: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Token<'_> {
    /// Byte offset one past the last byte.
    #[must_use]
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }

    /// True for whitespace and comments.
    #[must_use]
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.rest().chars().nth(n)
    }

    /// Advances one char, tracking lines.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `source`. Always terminates; unterminated literals and
/// comments extend to end of input with their natural kind.
#[must_use]
pub fn lex(source: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor::new(source);
    let mut out = Vec::new();
    while cur.pos < source.len() {
        let start = cur.pos;
        let line = cur.line;
        let kind = next_kind(&mut cur);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            text: &source[start..cur.pos],
            start,
            line,
        });
    }
    out
}

fn next_kind(cur: &mut Cursor<'_>) -> TokenKind {
    let Some(c) = cur.peek() else {
        return TokenKind::Unknown;
    };
    match c {
        c if c.is_whitespace() => {
            cur.bump_while(char::is_whitespace);
            TokenKind::Whitespace
        }
        '/' => match cur.peek_at(1) {
            Some('/') => {
                cur.bump_while(|c| c != '\n');
                TokenKind::LineComment
            }
            Some('*') => {
                block_comment(cur);
                TokenKind::BlockComment
            }
            _ => {
                cur.bump();
                TokenKind::Punct
            }
        },
        '"' => {
            cur.bump();
            string_body(cur);
            TokenKind::Str
        }
        'r' => raw_or_ident(cur, TokenKind::RawStr),
        'b' => match (cur.peek_at(1), cur.peek_at(2)) {
            (Some('"'), _) => {
                cur.bump();
                cur.bump();
                string_body(cur);
                TokenKind::ByteStr
            }
            (Some('\''), _) => {
                cur.bump();
                char_body(cur);
                TokenKind::Char
            }
            (Some('r'), Some('"' | '#')) => {
                cur.bump();
                raw_or_ident(cur, TokenKind::RawByteStr)
            }
            _ => ident(cur),
        },
        'c' => match (cur.peek_at(1), cur.peek_at(2)) {
            (Some('"'), _) => {
                cur.bump();
                cur.bump();
                string_body(cur);
                TokenKind::CStr
            }
            (Some('r'), Some('"' | '#')) => {
                cur.bump();
                raw_or_ident(cur, TokenKind::CStr)
            }
            _ => ident(cur),
        },
        '\'' => char_or_lifetime(cur),
        c if is_ident_start(c) => ident(cur),
        c if c.is_ascii_digit() => number(cur),
        c if c.is_ascii() => {
            cur.bump();
            TokenKind::Punct
        }
        _ => {
            cur.bump();
            TokenKind::Unknown
        }
    }
}

/// Consumes `/* … */` with nesting; unterminated runs to EOF.
fn block_comment(cur: &mut Cursor<'_>) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

/// Consumes a `"…"` body (the opening quote is already consumed),
/// honoring `\\` and `\"` escapes. Unterminated runs to EOF.
fn string_body(cur: &mut Cursor<'_>) {
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump();
            }
            Some('"') | None => break,
            Some(_) => {}
        }
    }
}

/// At an `r`: either a raw (byte/C) string `r#*"…"#*` or an identifier
/// (raw identifiers `r#type` included). `kind` is what a raw string
/// here should be labeled as.
fn raw_or_ident(cur: &mut Cursor<'_>, kind: TokenKind) -> TokenKind {
    // Count hashes after the 'r'.
    let mut hashes = 0usize;
    while cur.peek_at(1 + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek_at(1 + hashes) {
        Some('"') => {
            cur.bump(); // 'r'
            for _ in 0..hashes {
                cur.bump();
            }
            cur.bump(); // opening quote
            raw_string_body(cur, hashes);
            kind
        }
        // `r#ident` — a raw identifier; more than one hash is invalid
        // Rust, lexed as ident + puncts by falling through.
        Some(c) if hashes == 1 && is_ident_start(c) => {
            cur.bump(); // 'r'
            cur.bump(); // '#'
            cur.bump_while(is_ident_continue);
            TokenKind::Ident
        }
        _ => ident(cur),
    }
}

/// Consumes a raw-string body until `"` followed by `hashes` `#`s.
fn raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    loop {
        match cur.bump() {
            Some('"') => {
                let mut n = 0usize;
                while n < hashes && cur.peek() == Some('#') {
                    cur.bump();
                    n += 1;
                }
                if n == hashes {
                    break;
                }
            }
            None => break,
            Some(_) => {}
        }
    }
}

/// At a `'`: a char literal or a lifetime.
fn char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    match (cur.peek_at(1), cur.peek_at(2)) {
        // '\…' — escaped char literal.
        (Some('\\'), _) => {
            cur.bump();
            char_body(cur);
            TokenKind::Char
        }
        // 'x' — any single char closed by a quote.
        (Some(_), Some('\'')) => {
            cur.bump();
            cur.bump();
            cur.bump();
            TokenKind::Char
        }
        // 'ident — a lifetime (or loop label).
        (Some(c), _) if is_ident_start(c) => {
            cur.bump();
            cur.bump_while(is_ident_continue);
            TokenKind::Lifetime
        }
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// Consumes a (possibly escaped) char-literal body; the opening quote
/// is already consumed. `'\u{1F600}'` and `b'\xFF'` land here too.
fn char_body(cur: &mut Cursor<'_>) {
    cur.bump(); // the quote
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump();
            }
            Some('\'') | Some('\n') | None => break,
            Some(_) => {}
        }
    }
}

fn ident(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump();
    cur.bump_while(is_ident_continue);
    TokenKind::Ident
}

/// Numeric literal: digits, `_`, radix/type-suffix letters, a decimal
/// point when followed by a digit (so `0..10` stays three tokens), and
/// a signed exponent after `e`/`E`.
fn number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut last = cur.bump().unwrap_or('0');
    loop {
        match cur.peek() {
            Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                last = c;
                cur.bump();
            }
            Some('.') if cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => {
                last = '.';
                cur.bump();
            }
            Some('+' | '-')
                if matches!(last, 'e' | 'E')
                    && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) =>
            {
                last = cur.bump().unwrap_or('+');
            }
            _ => break,
        }
    }
    TokenKind::Number
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn roundtrips(src: &str) {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src, "token texts must concatenate to the input");
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.start, pos, "offsets must be contiguous");
            pos = t.end();
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn empty_and_trivial() {
        assert!(lex("").is_empty());
        roundtrips("fn main() {}\n");
    }

    #[test]
    fn raw_string_hides_its_contents() {
        // The regression the old scanner failed: an unwrap inside a raw
        // string must lex as ONE RawStr token, not code.
        let src = r##"let s = r#"x.unwrap() /* not code "quote" */"#;"##;
        roundtrips(src);
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        // The other regression: after `/* /* */ */`, code is code again.
        let src = "/* outer /* inner */ still comment */ x.unwrap()";
        roundtrips(src);
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.ends_with("still comment */"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn unterminated_block_comment_terminates_lexing() {
        let src = "/* /* never closed ";
        roundtrips(src);
        assert_eq!(kinds(src), vec![(TokenKind::BlockComment, src)]);
    }

    #[test]
    fn string_escapes() {
        let src = r#"let s = "a\"b\\" ; "#;
        roundtrips(src);
        assert!(kinds(src)
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && *t == r#""a\"b\\""#));
    }

    #[test]
    fn byte_and_c_strings() {
        for (src, kind) in [
            (r#"b"bytes""#, TokenKind::ByteStr),
            (r###"br#"raw bytes"#"###, TokenKind::RawByteStr),
            (r#"c"cstr""#, TokenKind::CStr),
            (r###"cr#"raw c"#"###, TokenKind::CStr),
            ("b'x'", TokenKind::Char),
            (r"b'\xFF'", TokenKind::Char),
        ] {
            roundtrips(src);
            assert_eq!(kinds(src)[0], (kind, src), "{src}");
        }
    }

    #[test]
    fn raw_strings_with_more_hashes() {
        let src = r####"r##"contains "# inside"##"####;
        roundtrips(src);
        assert_eq!(kinds(src), vec![(TokenKind::RawStr, src)]);
    }

    #[test]
    fn raw_ident_is_ident() {
        let src = "r#type = r#fn";
        roundtrips(src);
        let toks = kinds(src);
        assert_eq!(toks[0], (TokenKind::Ident, "r#type"));
        assert_eq!(toks[4], (TokenKind::Ident, "r#fn"));
    }

    #[test]
    fn char_vs_lifetime() {
        roundtrips("'a'");
        assert_eq!(kinds("'a'"), vec![(TokenKind::Char, "'a'")]);
        let src = "fn f<'a>(x: &'a str) -> &'a str { 'outer: loop { break 'outer x; } }";
        roundtrips(src);
        let lifetimes: Vec<&str> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'a", "'outer", "'outer"]);
        // Escaped and punctuation chars are chars, not lifetimes.
        assert_eq!(kinds(r"'\''")[0].0, TokenKind::Char);
        assert_eq!(kinds("'('")[0].0, TokenKind::Char);
        assert_eq!(kinds(r"'\u{1F600}'")[0].0, TokenKind::Char);
        assert_eq!(kinds("' '")[0].0, TokenKind::Char);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..10 { let x = 1.5e-3f64 + 0xff_u8 as f64; }";
        roundtrips(src);
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Number, "0")));
        assert!(toks.contains(&(TokenKind::Number, "10")));
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3f64")));
        assert!(toks.contains(&(TokenKind::Number, "0xff_u8")));
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\npub fn f() {}\n";
        roundtrips(src);
        let idents: Vec<&str> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["pub", "fn", "f"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n\nc";
        let lines: Vec<(u32, &str)> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.line, t.text))
            .collect();
        assert_eq!(lines, vec![(1, "a"), (2, "b"), (4, "c")]);
    }

    #[test]
    fn multiline_raw_string_advances_lines() {
        let src = "let s = r#\"one\ntwo\"#;\nnext";
        roundtrips(src);
        let next = lex(src)
            .into_iter()
            .find(|t| t.text == "next")
            .expect("ident after raw string");
        assert_eq!(next.line, 3);
    }

    #[test]
    fn non_ascii_in_code_and_literals() {
        let src = "let α = \"héllo\"; // café\n";
        roundtrips(src);
        assert!(kinds(src).contains(&(TokenKind::Ident, "α")));
    }
}
